//! Buffer-management integration: the §V stack end to end.

use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::Server;
use mar_geom::Point2;
use mar_workload::{Scene, SceneConfig, Tour, TourKind, TourSample};

fn scene() -> Scene {
    let mut cfg = SceneConfig::paper(40, 19);
    cfg.levels = 3;
    cfg.target_bytes = 8_000_000.0;
    Scene::generate(cfg)
}

/// A perfectly straight eastbound tour — the motion predictor's best case.
fn line_tour(ticks: usize, speed: f64) -> Tour {
    let max_step = 21.0;
    let samples = (0..ticks)
        .map(|t| TourSample {
            tick: t,
            pos: Point2::new([30.0 + t as f64 * speed * max_step, 500.0]),
            speed,
        })
        .collect();
    Tour {
        kind: TourKind::Tram,
        samples,
        max_step,
    }
}

#[test]
fn motion_aware_dominates_naive_on_predictable_motion() {
    let sc = scene();
    let tour = line_tour(90, 0.5);
    let cfg = BufferSimConfig {
        buffer_bytes: 32.0 * 1024.0,
        ..Default::default()
    };
    let server = Server::new(&sc);
    let mut ma = MotionAwarePrefetcher::new(4);
    let m_ma = run_buffer_sim(&server, &sc, &tour, &mut ma, &cfg);
    let server2 = Server::new(&sc);
    let mut nv = NaivePrefetcher;
    let m_nv = run_buffer_sim(&server2, &sc, &tour, &mut nv, &cfg);
    assert!(
        m_ma.hit_rate() > m_nv.hit_rate(),
        "hit: ma {:.3} vs naive {:.3}",
        m_ma.hit_rate(),
        m_nv.hit_rate()
    );
    assert!(
        m_ma.utilization() > m_nv.utilization(),
        "util: ma {:.3} vs naive {:.3}",
        m_ma.utilization(),
        m_nv.utilization()
    );
}

#[test]
fn buffer_sim_accounting_is_consistent() {
    let sc = scene();
    let tour = line_tour(60, 0.4);
    let cfg = BufferSimConfig::default();
    let server = Server::new(&sc);
    let mut p = MotionAwarePrefetcher::new(4);
    let m = run_buffer_sim(&server, &sc, &tour, &mut p, &cfg);
    assert!(m.hits <= m.lookups);
    assert!(m.prefetched_used <= m.prefetched);
    assert!(m.demand_bytes >= 0.0 && m.prefetch_bytes >= 0.0);
    // Every tick looks up at least one block.
    assert!(m.lookups >= tour.samples.len() as u64);
}

#[test]
fn stationary_client_hits_after_warmup() {
    let sc = scene();
    let samples: Vec<TourSample> = (0..50)
        .map(|t| TourSample {
            tick: t,
            pos: Point2::new([500.0, 500.0]),
            speed: 0.0,
        })
        .collect();
    let tour = Tour {
        kind: TourKind::Pedestrian,
        samples,
        max_step: 21.0,
    };
    let server = Server::new(&sc);
    let mut p = MotionAwarePrefetcher::new(4);
    let m = run_buffer_sim(&server, &sc, &tour, &mut p, &BufferSimConfig::default());
    // Only the first tick misses; everything after is a hit.
    assert!(
        m.hit_rate() > 0.9,
        "stationary client must hit nearly always: {:.3}",
        m.hit_rate()
    );
}

#[test]
fn multires_buffering_outperforms_full_resolution_at_speed() {
    // The §V multiresolution claim: at high speed, buffering coarse blocks
    // (more of them) beats buffering few full-resolution blocks.
    let sc = scene();
    let tour = line_tour(120, 0.9);
    let mut hit = [0.0f64; 2];
    for (i, multires) in [(0, true), (1, false)] {
        let cfg = BufferSimConfig {
            buffer_bytes: 32.0 * 1024.0,
            multires,
            ..Default::default()
        };
        let server = Server::new(&sc);
        let mut p = MotionAwarePrefetcher::new(4);
        hit[i] = run_buffer_sim(&server, &sc, &tour, &mut p, &cfg).hit_rate();
    }
    assert!(
        hit[0] >= hit[1],
        "multires {:.3} must be at least as good as full-res {:.3}",
        hit[0],
        hit[1]
    );
}

#[test]
fn larger_buffers_do_not_hurt() {
    let sc = scene();
    let tour = line_tour(100, 0.5);
    let mut last = 0.0;
    for kb in [8.0, 32.0, 128.0] {
        let cfg = BufferSimConfig {
            buffer_bytes: kb * 1024.0,
            ..Default::default()
        };
        let server = Server::new(&sc);
        let mut p = MotionAwarePrefetcher::new(4);
        let hit = run_buffer_sim(&server, &sc, &tour, &mut p, &cfg).hit_rate();
        assert!(
            hit >= last - 0.03,
            "hit rate regressed from {last:.3} to {hit:.3} at {kb} KB"
        );
        last = hit;
    }
}
