//! Cross-crate integration tests.
