//! Cross-crate integration tests.

#![forbid(unsafe_code)]
