//! The wavelet support-region index must agree exactly with a brute-force
//! scan for every window and band, and must dominate the naive point index
//! on I/O — property-tested over random scenes and queries.

use mar_core::{NaivePointIndex, SceneIndexData, WaveletIndex};
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use mar_workload::{Scene, SceneConfig};
use proptest::prelude::*;

fn data(seed: u64, objects: usize) -> SceneIndexData {
    let mut cfg = SceneConfig::paper(objects, seed);
    cfg.levels = 2;
    cfg.target_bytes = 500_000.0;
    SceneIndexData::build(&Scene::generate(cfg))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn support_index_matches_bruteforce(
        seed in 0u64..50,
        qx in 0.0f64..800.0,
        qy in 0.0f64..800.0,
        qw in 10.0f64..250.0,
        wmin in 0.0f64..1.0,
    ) {
        let d = data(seed, 6);
        let idx = WaveletIndex::build(&d);
        idx.validate().expect("valid tree");
        let window = Rect2::new(Point2::new([qx, qy]), Point2::new([qx + qw, qy + qw]));
        let band = ResolutionBand::new(wmin, 1.0);
        let (mut got, io) = idx.query(&window, band);
        prop_assert!(io >= 1);
        got.sort_unstable();
        let mut expect: Vec<_> = d
            .records
            .iter()
            .filter(|r| r.support_xy.intersects(&window) && band.contains(r.w))
            .map(|r| r.id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn naive_index_never_loses_in_window_vertices(
        seed in 0u64..50,
        qx in 0.0f64..800.0,
        qy in 0.0f64..800.0,
        qw in 50.0f64..300.0,
    ) {
        let d = data(seed, 6);
        let idx = NaivePointIndex::build(&d);
        let window = Rect2::new(Point2::new([qx, qy]), Point2::new([qx + qw, qy + qw]));
        let (got, _) = idx.query(&window, ResolutionBand::FULL);
        for r in &d.records {
            if window.contains_point(&r.vertex_xy) {
                prop_assert!(got.contains(&r.id), "naive lost {:?}", r.id);
            }
        }
    }
}

#[test]
fn support_index_io_dominates_naive_on_average() {
    let d = data(7, 10);
    let good = WaveletIndex::build(&d);
    let naive = NaivePointIndex::build(&d);
    let mut io_g = 0u64;
    let mut io_n = 0u64;
    let mut windows = 0;
    for i in 0..40 {
        let x = (i * 97 % 800) as f64;
        let y = (i * 53 % 800) as f64;
        let w = Rect2::new(Point2::new([x, y]), Point2::new([x + 150.0, y + 150.0]));
        for band in [ResolutionBand::FULL, ResolutionBand::new(0.5, 1.0)] {
            io_g += good.query(&w, band).1;
            io_n += naive.query(&w, band).1;
            windows += 1;
        }
    }
    assert!(windows > 0);
    assert!(
        io_g < io_n,
        "support index {io_g} accesses must beat naive {io_n}"
    );
}

#[test]
fn band_io_decreases_as_band_narrows() {
    // §VII-D: fast clients (narrow bands) need ~an order of magnitude less
    // I/O than slow ones.
    let mut cfg = SceneConfig::paper(12, 3);
    cfg.levels = 3;
    cfg.target_bytes = 1_000_000.0;
    let d = SceneIndexData::build(&Scene::generate(cfg));
    let idx = WaveletIndex::build(&d);
    let w = Rect2::new(Point2::new([100.0, 100.0]), Point2::new([900.0, 900.0]));
    let io_full = idx.query(&w, ResolutionBand::FULL).1;
    let io_mid = idx.query(&w, ResolutionBand::new(0.5, 1.0)).1;
    let io_top = idx.query(&w, ResolutionBand::new(0.9, 1.0)).1;
    assert!(io_full > io_mid, "full {io_full} vs mid {io_mid}");
    assert!(io_mid >= io_top, "mid {io_mid} vs top {io_top}");
    assert!(
        io_full as f64 >= 3.0 * io_top as f64,
        "wide-to-narrow I/O ratio too small: {io_full} vs {io_top}"
    );
}

#[test]
fn minimality_every_returned_coefficient_contributes() {
    // §VI-B: each returned coefficient's support intersects the window, so
    // dropping it would lose detail inside the window.
    let d = data(5, 6);
    let idx = WaveletIndex::build(&d);
    let w = Rect2::new(Point2::new([200.0, 200.0]), Point2::new([600.0, 600.0]));
    let (hits, _) = idx.query(&w, ResolutionBand::FULL);
    for id in hits {
        let rec = d
            .records
            .iter()
            .find(|r| r.id == id)
            .expect("hit exists in records");
        assert!(rec.support_xy.intersects(&w));
    }
}
