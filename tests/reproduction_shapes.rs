//! Pins the reproduced result *shapes* of §VII at quick scale: who wins,
//! in which direction each curve moves, and rough magnitudes. These are
//! the claims EXPERIMENTS.md reports; if a refactor breaks one, this
//! fails before the full reproduction run would notice.

use mar_bench::figs;
use mar_bench::Scale;
use mar_workload::Placement;

fn quick() -> Scale {
    let mut s = Scale::quick();
    // Trim the sweep; keep the object density (a sparser scene makes the
    // swept object set frame-size-insensitive and the shapes noisy).
    s.ticks = 150;
    s.speeds = vec![0.001, 0.5, 1.0];
    s
}

#[test]
fn fig8_retrieval_decreases_with_speed() {
    let t = figs::fig8(&quick());
    for series in ["tram_kb_per_kdist", "walk_kb_per_kdist"] {
        let v = t.series(series).unwrap();
        assert!(
            v[0] > v[v.len() - 1] * 3.0,
            "{series}: slowest {} must be ≫ fastest {}",
            v[0],
            v[v.len() - 1]
        );
    }
}

#[test]
fn fig9a_larger_queries_retrieve_more() {
    let t = figs::fig9a(&quick());
    let q5 = t.series("q5%_kb").unwrap();
    let q20 = t.series("q20%_kb").unwrap();
    // Sum across the speed sweep: a single short tour can coincidentally
    // sweep the same objects with both frame heights, but not at every
    // speed (each speed uses a different tour geometry).
    let s5: f64 = q5.iter().sum();
    let s20: f64 = q20.iter().sum();
    assert!(
        s20 > s5,
        "20% frames ({s20}) must retrieve more than 5% frames ({s5}) overall"
    );
}

#[test]
fn fig12_index_io_shape() {
    let t = figs::fig12(&quick());
    let ma = t.series("motion_aware_io").unwrap();
    let nv = t.series("naive_io").unwrap();
    // Speed reduces I/O by a large factor (paper: 8–11×; accept ≥ 3×).
    assert!(
        ma[0] > 3.0 * ma[ma.len() - 1],
        "I/O at 0.001 ({}) vs 1.0 ({})",
        ma[0],
        ma[ma.len() - 1]
    );
    // The support-region index beats the naive index at every speed.
    for (i, (g, n)) in ma.iter().zip(&nv).enumerate() {
        assert!(g < n, "speed row {i}: support {g} vs naive {n}");
    }
}

#[test]
fn fig13a_io_grows_with_query_size_and_support_wins() {
    let t = figs::fig13a(&quick());
    let ma = t.series("motion_aware_io").unwrap();
    let nv = t.series("naive_io").unwrap();
    assert!(ma[ma.len() - 1] > ma[0], "I/O must grow with query size");
    for (g, n) in ma.iter().zip(&nv) {
        assert!(g < n);
    }
}

#[test]
fn fig14_motion_aware_wins_at_high_speed() {
    let t = figs::fig14_15(&quick(), Placement::Uniform);
    let ma = t.series("ma_tram_s").unwrap();
    let nv = t.series("naive_tram_s").unwrap();
    let last = ma.len() - 1;
    assert!(
        nv[last] > 2.0 * ma[last],
        "at speed 1.0 naive ({}) must be ≫ motion-aware ({})",
        nv[last],
        ma[last]
    );
    // The naive system degrades with speed.
    assert!(
        nv[last] > nv[1] * 0.8,
        "naive should not improve much with speed"
    );
}
