//! End-to-end integration: scene generation → server → moving client, with
//! full-pipeline determinism and conservation checks.

use mar_core::{IncrementalClient, LinearSpeedMap, Server};
use mar_workload::{frame_at, paper_space, tram_tour, Placement, Scene, SceneConfig, TourConfig};

fn scene(objects: usize, seed: u64) -> Scene {
    let mut cfg = SceneConfig::paper(objects, seed);
    cfg.levels = 3;
    cfg.target_bytes = objects as f64 * 100_000.0;
    Scene::generate(cfg)
}

/// Runs a tour and returns (total bytes, total coeffs, total io).
fn run_tour(scene: &Scene, speed: f64, tour_seed: u64) -> (f64, usize, u64) {
    let server = Server::new(scene);
    let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
    let tour = tram_tour(&TourConfig::new(paper_space(), 250, tour_seed, speed));
    for s in &tour.samples {
        let frame = frame_at(&paper_space(), &s.pos, 0.1);
        client.tick(&server, frame, s.speed);
    }
    let m = client.metrics();
    (m.bytes, m.coeffs, m.io)
}

#[test]
fn pipeline_is_deterministic() {
    let sc = scene(15, 3);
    let a = run_tour(&sc, 0.5, 7);
    let b = run_tour(&sc, 0.5, 7);
    assert_eq!(
        a, b,
        "same scene, tour and speed must give identical results"
    );
}

#[test]
fn total_retrieval_never_exceeds_dataset() {
    let sc = scene(15, 3);
    let total = sc.total_bytes();
    for speed in [0.01, 0.5, 1.0] {
        let (bytes, coeffs, _) = run_tour(&sc, speed, 11);
        assert!(
            bytes <= total + 1.0,
            "retrieved {bytes} exceeds dataset {total}"
        );
        assert!(coeffs <= sc.total_coeffs());
    }
}

#[test]
fn slow_sweep_retrieves_more_per_distance() {
    // Identical path, two speeds: the slow client needs the fine bands, so
    // it pulls more data over the same ground.
    let sc = scene(20, 9);
    let sweep = |speed: f64| -> f64 {
        let server = Server::new(&sc);
        let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
        for i in 0..25 {
            let pos = mar_geom::Point2::new([100.0 + 30.0 * i as f64, 500.0]);
            let frame = frame_at(&paper_space(), &pos, 0.1);
            client.tick(&server, frame, speed);
        }
        client.metrics().bytes
    };
    let slow = sweep(0.05);
    let fast = sweep(0.95);
    assert!(
        fast < slow,
        "fast sweep ({fast}) must retrieve less than slow ({slow}) on the same path"
    );
}

#[test]
fn full_space_query_retrieves_everything_once() {
    let sc = scene(10, 21);
    let server = Server::new(&sc);
    let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
    let whole = paper_space();
    let r1 = client.tick(&server, whole, 0.0);
    assert_eq!(
        r1.coeffs,
        sc.total_coeffs(),
        "speed 0 over the whole space = all data"
    );
    assert_eq!(r1.new_objects, 10);
    let r2 = client.tick(&server, whole, 0.0);
    assert_eq!(r2.coeffs, 0);
    assert_eq!(r2.bytes, 0.0);
}

#[test]
fn two_clients_get_independent_sessions() {
    let sc = scene(10, 5);
    let server = Server::new(&sc);
    let mut a = IncrementalClient::connect(&server, LinearSpeedMap);
    let mut b = IncrementalClient::connect(&server, LinearSpeedMap);
    let frame = frame_at(&paper_space(), &mar_geom::Point2::new([500.0, 500.0]), 0.2);
    let ra = a.tick(&server, frame, 0.2);
    let rb = b.tick(&server, frame, 0.2);
    assert_eq!(ra.coeffs, rb.coeffs, "fresh sessions see identical data");
    assert_eq!(ra.bytes, rb.bytes);
}

#[test]
fn zipf_and_uniform_scenes_hold_same_total_bytes() {
    let mut cfg_u = SceneConfig::paper(20, 13);
    cfg_u.levels = 3;
    cfg_u.target_bytes = 2_000_000.0;
    let mut cfg_z = cfg_u;
    cfg_z.placement = Placement::Zipf { theta: 0.8 };
    let u = Scene::generate(cfg_u);
    let z = Scene::generate(cfg_z);
    assert!((u.total_bytes() - z.total_bytes()).abs() / u.total_bytes() < 0.02);
}

#[test]
fn many_concurrent_clients_round_robin() {
    // The paper's server faces "a large number of queries posed as clients
    // change their positions". Eight clients with distinct tours interleave
    // tick by tick on one server; each must see exactly the data of its own
    // path, independent of the interleaving.
    let sc = scene(20, 41);
    let server = Server::new(&sc);
    let n = 8;
    let tours: Vec<_> = (0..n)
        .map(|i| {
            tram_tour(&TourConfig::new(
                paper_space(),
                120,
                100 + i as u64,
                0.2 + 0.1 * i as f64 % 0.8,
            ))
        })
        .collect();
    let mut clients: Vec<_> = (0..n)
        .map(|_| IncrementalClient::connect(&server, LinearSpeedMap))
        .collect();
    for t in 0..120 {
        for (c, tour) in clients.iter_mut().zip(&tours) {
            let s = &tour.samples[t];
            let frame = frame_at(&paper_space(), &s.pos, 0.1);
            c.tick(&server, frame, s.speed);
        }
    }
    let interleaved: Vec<f64> = clients.iter().map(|c| c.metrics().bytes).collect();

    // Re-run each client alone on a fresh server: identical results.
    for (i, tour) in tours.iter().enumerate() {
        let solo_server = Server::new(&sc);
        let mut solo = IncrementalClient::connect(&solo_server, LinearSpeedMap);
        for s in &tour.samples {
            let frame = frame_at(&paper_space(), &s.pos, 0.1);
            solo.tick(&solo_server, frame, s.speed);
        }
        assert_eq!(
            solo.metrics().bytes,
            interleaved[i],
            "client {i} must be unaffected by the other {} clients",
            n - 1
        );
    }
}

#[test]
fn disconnect_frees_session_state_under_churn() {
    // Clients connecting, touring, and disconnecting must not leak into
    // each other's sessions.
    let sc = scene(10, 43);
    let server = Server::new(&sc);
    let frame = frame_at(&paper_space(), &mar_geom::Point2::new([500.0, 500.0]), 0.2);
    let mut first_bytes = None;
    for _round in 0..5 {
        let mut c = IncrementalClient::connect(&server, LinearSpeedMap);
        let r = c.tick(&server, frame, 0.3);
        match first_bytes {
            None => first_bytes = Some(r.bytes),
            Some(b) => assert_eq!(r.bytes, b, "fresh sessions must start cold"),
        }
        let session = c.session();
        server
            .disconnect(session)
            .expect("session was connected above");
        assert_eq!(server.session_sent(session), 0);
    }
}
