//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the three external dev/test dependencies as minimal shims (see
//! `vendor/` and DESIGN.md §6). This crate provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator. It is
//!   **not** the upstream ChaCha-based `StdRng`; identical seeds produce a
//!   different stream than upstream `rand 0.8`. Every consumer in this
//!   workspace only requires determinism for a fixed seed, which this
//!   guarantees.
//! * [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//!   [`Rng::gen_bool`] over the primitive types the workspace samples.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.gen::<f64>(), b.gen::<f64>());
//! let x = a.gen_range(10..20u32);
//! assert!((10..20).contains(&x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value of a [`Standard`]-distributed type: `f64` in
    /// `[0, 1)`, `bool` with probability 1/2, or uniform integers.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire multiply-shift: maps 64 random bits onto the span
                // with bias below 2^-64 per draw — irrelevant here, where
                // only determinism and approximate uniformity matter.
                let off = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (see crate docs: this is a
    /// vendored stand-in, not upstream's ChaCha12 `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = r.gen_range(0..4u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..200 {
            let v = r.gen_range(-10..10i64);
            assert!((-10..10).contains(&v));
            let w = r.gen_range(40..120u32);
            assert!((40..120).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
