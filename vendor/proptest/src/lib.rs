//! Vendored, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses (see `vendor/rand` for why the workspace
//! vendors its external test dependencies).
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message instead of a minimised counterexample.
//! * **Fixed seeding.** Each property derives its RNG seed from the test's
//!   module path and name, so runs are fully deterministic; there is no
//!   `PROPTEST_*` environment handling and no regression-file persistence.
//! * **Rejections** (`prop_assume!`) skip the case rather than re-drawing
//!   it; with the low rejection rates in this workspace the effective case
//!   count stays close to the configured one.
//!
//! The supported surface is exactly what the workspace's property tests
//! exercise: `proptest! { #![proptest_config(...)] fn ... }`, strategies
//! built from primitive ranges, tuples, [`Just`], [`Strategy::prop_map`],
//! `prop_oneof!` (weighted and unweighted), `prop::collection::vec`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator handed to strategies. Deterministic per property.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property. Used by the
/// [`proptest!`] macro; public only for the macro expansion.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a generated case did not produce a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed; the property fails.
    Fail(String),
}

/// Result type the generated property bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The mini equivalent of proptest's `Strategy`:
/// generation only, no shrink tree.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy; used by `prop_oneof!` so every arm unifies to one
/// trait-object type without turbofish at the call site.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Weighted union of strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V> OneOf<V> {
    /// Builds the union. Panics when `arms` is empty or all weights are 0.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick below total weight")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Generates `Vec`s with a length drawn from `len` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares deterministic property tests. See the crate docs for the
/// differences from upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::core::panic!(
                            "property {} failed at case {}/{}: {}",
                            ::core::stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies, all
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$( ($weight as u32, $crate::boxed($strat)) ),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![$( (1u32, $crate::boxed($strat)) ),+])
    };
}

/// Asserts a condition inside a property; failure fails the case with the
/// stringified condition (plus an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(::core::stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..10.0, n in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&n), "n was {n}");
        }

        #[test]
        fn map_and_tuple_compose(p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }

        #[test]
        fn oneof_picks_every_weighted_arm(
            vals in prop::collection::vec(
                prop_oneof![2 => Just(1u8), 1 => (5u8..7).prop_map(|v| v)],
                64..65,
            ),
        ) {
            for v in vals {
                prop_assert!(v == 1 || v == 5 || v == 6);
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0.0f64..1.0, 0u32..1000);
        let a: Vec<_> = {
            let mut rng = crate::rng_for("x");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::rng_for("x");
            (0..20).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
