//! Vendored, dependency-free stand-in for the subset of the `criterion`
//! API this workspace's benches use (see `vendor/rand` for why the
//! workspace vendors its external dev dependencies).
//!
//! This is a micro-benchmark *runner*, not a statistics engine: each
//! `bench_function` warms up briefly, times batches of iterations for
//! roughly the configured measurement window, and prints the mean
//! per-iteration time with min/max batch means. There are no HTML
//! reports, no outlier analysis, and no baseline comparisons.
//!
//! Under `cargo test` the bench targets run too (they default to
//! `test = true`); to keep the suite fast the runner detects the
//! `--test` flavour via the `CRITERION_QUICK_TEST` heuristic below and
//! collapses to one warm-up plus one measured iteration per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (upstream deprecates its own
/// copy in favour of the std one).
pub use std::hint::black_box;

/// True when the binary was invoked by `cargo test` (cargo passes the
/// libtest harness flags even to `harness = false` targets) — run each
/// bench once as a smoke test instead of measuring.
fn smoke_test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        self.benchmark_group("ungrouped").bench_function(name, f);
    }
}

/// A group of benchmarks sharing sample/timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed batches.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        self.bench_function_measured(name, f);
    }

    /// Like [`BenchmarkGroup::bench_function`], but also returns the
    /// recorded [`Measurement`] so harnesses (e.g. `mar-bench micro`) can
    /// serialise results instead of only reading stderr. `None` when the
    /// target never called [`Bencher::iter`].
    pub fn bench_function_measured<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> Option<Measurement> {
        let name = name.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) => eprintln!(
                "  {}/{name}: mean {} (batch means {} .. {}, {} iters)",
                self.name,
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.iters,
            ),
            None => eprintln!("  {}/{name}: no iterations recorded", self.name),
        }
        b.report
    }

    /// Ends the group (printing is incremental; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// A completed measurement: per-iteration statistics over the timed
/// batches, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean per-iteration time across all batches.
    pub mean_ns: f64,
    /// Smallest batch mean.
    pub min_ns: f64,
    /// Largest batch mean.
    pub max_ns: f64,
    /// Total iterations timed.
    pub iters: u64,
}

type Report = Measurement;

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`, keeping its return value alive via
    /// [`black_box`] so the work is not optimised away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if smoke_test_mode() {
            black_box(routine());
            self.report = Some(Report {
                mean_ns: 0.0,
                min_ns: 0.0,
                max_ns: 0.0,
                iters: 1,
            });
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Split the measurement budget into `sample_size` batches.
        let budget = self.measurement_time.as_secs_f64();
        let batch_iters = ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).max(1);
        let mut means = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch_iters as f64;
            means.push(ns);
            total_iters += batch_iters;
        }
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let min = means.iter().copied().fold(f64::INFINITY, f64::min);
        let max = means.iter().copied().fold(0.0f64, f64::max);
        self.report = Some(Report {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            iters: total_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0, "routine must have run");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
