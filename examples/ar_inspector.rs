//! The electrician scenario from the paper's introduction: "an electrician
//! with augmented-reality glasses can see 3D layouts of wiring and pipes
//! inside a wall before a repair."
//!
//! The inspector walks along a wall, pausing at junction boxes. While
//! walking, coarse geometry is enough; each pause triggers a progressive
//! refinement — `Q(R, w_already_have, w_min_new)` — that fetches only the
//! missing detail band for the overlap region (§IV, Algorithm 1).
//!
//! Run: `cargo run -p mar-examples --release --example ar_inspector`

use mar_core::{IncrementalClient, LinearSpeedMap, Server, SmoothedSpeed};
use mar_geom::Point2;
use mar_workload::{frame_at, paper_space, Scene, SceneConfig};

fn main() {
    // A dense strip of "conduit" objects; the inspector walks the row that
    // actually holds the most objects (the wall).
    let mut cfg = SceneConfig::paper(30, 9);
    cfg.levels = 4;
    cfg.target_bytes = 6.0 * 1024.0 * 1024.0;
    let scene = Scene::generate(cfg);
    // The wall: the horizontal band with the most objects in it.
    let wall_y = {
        let mut best = (0usize, 500.0);
        for band in 0..10 {
            let y = 50.0 + band as f64 * 100.0;
            let n = scene
                .objects
                .iter()
                .filter(|o| (o.footprint().center()[1] - y).abs() < 60.0)
                .count();
            if n > best.0 {
                best = (n, y);
            }
        }
        best.1
    };
    let server = Server::new(&scene);
    let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
    let mut smooth = SmoothedSpeed::default();

    // Walk 40 ticks along the wall, pausing 12 ticks at two junction boxes.
    let mut x = 100.0;
    let mut phase_bytes = [0.0f64; 3]; // walking, first pause, second pause
    println!("tick   x     speed  smoothed  bytes");
    for tick in 0..64 {
        let (speed, phase) = match tick {
            0..=19 => (0.6, 0),
            20..=31 => (0.0, 1), // junction box 1
            32..=51 => (0.6, 0),
            _ => (0.0, 2), // junction box 2
        };
        x += speed * 12.0;
        let s = smooth.update(speed);
        let frame = frame_at(&paper_space(), &Point2::new([x, wall_y]), 0.08);
        let r = client.tick(&server, frame, s);
        phase_bytes[phase] += r.bytes;
        if tick % 8 == 0 || (20..=24).contains(&tick) || (52..=56).contains(&tick) {
            println!(
                "{tick:>4}  {x:>5.0}  {speed:>5.2}  {s:>8.3}  {:>7.0}",
                r.bytes
            );
        }
    }
    println!(
        "\nbytes while walking (coarse band): {:>10.0}",
        phase_bytes[0]
    );
    println!(
        "bytes at junction 1 (refinement)  : {:>10.0}",
        phase_bytes[1]
    );
    println!(
        "bytes at junction 2 (refinement)  : {:>10.0}",
        phase_bytes[2]
    );
    println!("\nthe pauses fetch only the fine-detail delta for the already-");
    println!("retrieved region — the coarse data is never re-transmitted.");
}
