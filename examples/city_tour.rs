//! The paper's headline scenario (§VII-E): an augmented-reality city tour
//! comparing the motion-aware system against the naive full-resolution
//! system at several speeds, on tram and on foot.
//!
//! Run: `cargo run -p mar-examples --release --example city_tour`

use mar_buffer::MotionAwarePrefetcher;
use mar_core::system::{run_motion_aware_system, run_naive_system, SystemConfig};
use mar_core::Server;
use mar_workload::{paper_space, pedestrian_tour, tram_tour, Scene, SceneConfig, TourConfig};

fn main() {
    let mut cfg = SceneConfig::paper(80, 3);
    cfg.levels = 3;
    cfg.target_bytes = 16.0 * 1024.0 * 1024.0;
    let scene = Scene::generate(cfg);
    let sys_cfg = SystemConfig {
        frame_frac: 0.05,
        ..Default::default()
    };
    println!(
        "city: {} objects, {:.0} MB; link {} Kbps / {} ms",
        scene.objects.len(),
        scene.total_bytes() / (1024.0 * 1024.0),
        sys_cfg.link.bandwidth_bps / 1000.0,
        sys_cfg.link.latency_s * 1000.0,
    );
    println!("\nmean query response time (seconds), 300-tick tours:\n");
    println!("speed   mode  motion-aware      naive   speedup");
    for &speed in &[0.1, 0.5, 1.0] {
        for (label, tour) in [
            (
                "tram",
                tram_tour(&TourConfig::new(paper_space(), 300, 11, speed)),
            ),
            (
                "walk",
                pedestrian_tour(&TourConfig::new(paper_space(), 300, 11, speed)),
            ),
        ] {
            let server = Server::new(&scene);
            let mut p = MotionAwarePrefetcher::new(4);
            let ma = run_motion_aware_system(&server, &scene, &tour, &mut p, &sys_cfg);
            let nv = run_naive_system(&server, &scene, &tour, &sys_cfg);
            let speedup = if ma.mean_response() > 0.0 {
                nv.mean_response() / ma.mean_response()
            } else {
                f64::INFINITY
            };
            println!(
                "{speed:>5.2}  {label:>5}  {:>12.3}  {:>9.3}  {speedup:>7.1}x",
                ma.mean_response(),
                nv.mean_response(),
            );
        }
    }
    println!("\nthe naive system degrades as speed grows (more full-resolution");
    println!("objects swept per second over a degrading link); the motion-aware");
    println!("system holds steady by retrieving coarser data and prefetching");
    println!("along the predicted path.");
}
