//! Quickstart: the library in ~60 lines.
//!
//! Builds one multiresolution object, inspects its wavelet decomposition,
//! stands up a server over a small scene, and runs a moving client's first
//! few query frames with Algorithm 1.
//!
//! Run: `cargo run -p mar-examples --release --example quickstart`

use mar_core::{IncrementalClient, LinearSpeedMap, Server};
use mar_geom::Point2;
use mar_mesh::generate::{generate, ObjectKind, ObjectParams};
use mar_mesh::ResolutionBand;
use mar_workload::{frame_at, paper_space, Scene, SceneConfig};

fn main() {
    // 1. One 3D object in wavelet multiresolution form.
    let obj = generate(&ObjectParams {
        kind: ObjectKind::Building,
        levels: 4,
        seed: 7,
        ..Default::default()
    });
    println!("one building:");
    println!(
        "  base mesh vertices : {}",
        obj.hierarchy.base.vertices.len()
    );
    println!("  wavelet coefficients: {}", obj.coeffs.len());
    for (wmin, label) in [
        (0.0, "full"),
        (0.25, "w>=0.25"),
        (0.5, "w>=0.5"),
        (1.0, "coarsest"),
    ] {
        let band = ResolutionBand::new(wmin, 1.0);
        let rec = obj.reconstruct(band);
        println!(
            "  band {label:>8}: {:5} coefficients, rms error {:.5}",
            obj.count_in_band(band),
            obj.rms_error(&rec)
        );
    }

    // 2. A small city scene and its server (support-region wavelet index).
    let mut cfg = SceneConfig::paper(40, 1);
    cfg.levels = 3;
    cfg.target_bytes = 8.0 * 1024.0 * 1024.0;
    let scene = Scene::generate(cfg);
    let server = Server::new(&scene);
    println!(
        "\nscene: {} objects, {:.1} MB, {} indexed coefficients",
        scene.objects.len(),
        scene.total_bytes() / (1024.0 * 1024.0),
        server.data().len()
    );

    // 3. A client driving straight through the first object, braking
    //    halfway (watch the resolution band widen).
    let target = scene.objects[0].footprint().center();
    let mut client = IncrementalClient::connect(&server, LinearSpeedMap);
    println!("\ntick  speed  frame_center      new_bytes  index_io");
    for tick in 0..8 {
        let speed = if tick < 4 { 0.8 } else { 0.05 }; // brakes at tick 4
        let pos = Point2::new([target[0] - 70.0 + 18.0 * tick as f64, target[1]]);
        let frame = frame_at(&paper_space(), &pos, 0.1);
        let r = client.tick(&server, frame, speed);
        println!(
            "{tick:>4}  {speed:>5.2}  ({:6.1},{:6.1})  {:>9.0}  {:>8}",
            pos[0], pos[1], r.bytes, r.io
        );
    }
    println!("\nnote the burst at tick 4: slowing down widens the resolution");
    println!("band, so Algorithm 1 fetches the missing fine detail for the");
    println!("overlap region — and nothing it already has.");
}
