//! Workspace examples; see the example targets.
