//! Workspace examples; see the example targets.

#![forbid(unsafe_code)]
