//! The rescue scenario from the paper's introduction: "a rescue officer
//! can see the structure of a building even if the building is on fire
//! and filled with smoke."
//!
//! A rescue officer sweeps a Zipf-clustered building complex at high speed
//! over a degraded wireless link. The motion-aware stack keeps response
//! times bounded by buffering coarse structure along the predicted path;
//! the run reports the buffer manager's hit rate and data utilization.
//!
//! Run: `cargo run -p mar-examples --release --example rescue_mission`

use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
use mar_core::bufsim::{run_buffer_sim, BufferSimConfig};
use mar_core::system::{run_motion_aware_system, SystemConfig};
use mar_core::Server;
use mar_link::LinkConfig;
use mar_workload::{paper_space, pedestrian_tour, Placement, Scene, SceneConfig, TourConfig};

fn main() {
    // Dense, clustered structures (one building complex dominates).
    let mut cfg = SceneConfig::paper(60, 13);
    cfg.levels = 3;
    cfg.target_bytes = 12.0 * 1024.0 * 1024.0;
    cfg.placement = Placement::Zipf { theta: 1.0 };
    let scene = Scene::generate(cfg);
    // Smoke-degraded link: half the paper's bandwidth, harsher motion loss.
    let link = LinkConfig {
        bandwidth_bps: 128_000.0,
        motion_degradation: 0.7,
        ..LinkConfig::paper()
    };
    let tour = pedestrian_tour(&TourConfig::new(paper_space(), 400, 99, 0.9));

    println!(
        "rescue sweep: {} objects (Zipf-clustered), 128 Kbps smoky link\n",
        scene.objects.len()
    );

    let sys_cfg = SystemConfig {
        frame_frac: 0.08,
        link,
        ..Default::default()
    };
    let server = Server::new(&scene);
    let mut p = MotionAwarePrefetcher::new(4);
    let m = run_motion_aware_system(&server, &scene, &tour, &mut p, &sys_cfg);
    println!("motion-aware system over the sweep:");
    println!("  mean response : {:>8.3} s", m.mean_response());
    println!("  p95 response  : {:>8.3} s", m.percentile_response(95.0));
    println!("  worst frame   : {:>8.3} s", m.max_response());
    println!("  data shipped  : {:>8.1} KB", m.bytes / 1024.0);

    // Buffer-manager view: motion-aware vs naive prefetching.
    let buf_cfg = BufferSimConfig {
        buffer_bytes: 32.0 * 1024.0,
        frame_frac: 0.08,
        ..Default::default()
    };
    println!("\nprefetching comparison (32 KB buffer):");
    for motion_aware in [true, false] {
        let server = Server::new(&scene);
        let m = if motion_aware {
            let mut p = MotionAwarePrefetcher::new(4);
            run_buffer_sim(&server, &scene, &tour, &mut p, &buf_cfg)
        } else {
            let mut p = NaivePrefetcher;
            run_buffer_sim(&server, &scene, &tour, &mut p, &buf_cfg)
        };
        println!(
            "  {:>12}: hit rate {:>5.1}%, utilization {:>5.1}%",
            if motion_aware {
                "motion-aware"
            } else {
                "naive"
            },
            m.hit_rate() * 100.0,
            m.utilization() * 100.0,
        );
    }
}
