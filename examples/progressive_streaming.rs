//! Progressive streaming into a client-side decoder.
//!
//! Shows the full §III–§IV loop the way a renderer would drive it: the
//! client looks at a building through a directional view frustum, the
//! server streams coefficient bands as the client slows down, and a
//! [`mar_mesh::ProgressiveDecoder`] integrates every batch incrementally —
//! the mesh on screen sharpens with each round trip, and the error curve
//! quantifies it.
//!
//! Run: `cargo run -p mar-examples --release --example progressive_streaming`

use mar_geom::{Frustum, Point2};
use mar_link::LinkConfig;
use mar_mesh::{ProgressiveDecoder, ResolutionBand};
use mar_workload::{Scene, SceneConfig};

fn main() {
    // One landmark building in the scene.
    let mut cfg = SceneConfig::paper(8, 77);
    cfg.levels = 4;
    cfg.target_bytes = 2.0 * 1024.0 * 1024.0;
    let scene = Scene::generate(cfg);
    let obj = &scene.objects[0].mesh;
    let footprint = scene.objects[0].footprint();
    println!(
        "landmark at ({:.0},{:.0}): {} coefficients, {:.0} KB at full resolution\n",
        footprint.center()[0],
        footprint.center()[1],
        obj.coeffs.len(),
        scene.size_model.object_bytes(obj) / 1024.0,
    );

    // The client stands south of it, looking north.
    let apex = Point2::new([footprint.center()[0], footprint.lo[1] - 50.0]);
    let view = Frustum::new(apex, std::f64::consts::FRAC_PI_2, 1.2, 200.0);
    assert!(view.intersects_rect(&footprint), "the landmark is in view");

    // Stream bands coarse→fine, as the speed-to-resolution map would emit
    // while the client decelerates; decode incrementally.
    let link = LinkConfig::paper();
    let mut decoder = ProgressiveDecoder::new(obj.hierarchy.clone());
    let mut elapsed = 0.0;
    println!("band            coeffs   batch_KB   cum_time_s   rms_error");
    let bands = [
        ("w in [0.50,1.00]", ResolutionBand::new(0.5, 1.0)),
        ("w in [0.25,0.50)", ResolutionBand::new(0.25, 0.4999999)),
        ("w in [0.10,0.25)", ResolutionBand::new(0.1, 0.2499999)),
        ("w in [0.00,0.10)", ResolutionBand::new(0.0, 0.0999999)),
    ];
    for (label, band) in bands {
        let batch: Vec<_> = obj.coeffs.iter().filter(|c| band.contains(c.w)).collect();
        let bytes = scene.size_model.coeff_count_bytes(batch.len());
        elapsed += link.request_time(bytes, 0.0);
        decoder.apply_batch(batch.iter().copied());
        println!(
            "{label}   {:>6}   {:>8.1}   {:>10.2}   {:>9.5}",
            decoder.received_count(),
            bytes / 1024.0,
            elapsed,
            decoder.rms_error_against(obj),
        );
    }
    println!("\nthe first band carries the structure (error drops fastest per");
    println!(
        "byte); the last carries {}% of the coefficients but only the",
        (100.0 * obj.count_in_band(ResolutionBand::new(0.0, 0.0999999)) as f64
            / obj.coeffs.len() as f64) as u32
    );
    println!("final polish — exactly the §III argument for magnitude-ordered");
    println!("selective transmission.");
}
