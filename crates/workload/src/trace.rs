//! Tour trace import/export.
//!
//! The paper ran on recorded head-movement traces of real tourists. This
//! module lets a deployment do the same: a [`Tour`] round-trips through a
//! plain-text trace format (`tick,x,y,speed` CSV with a `#`-comment
//! header), so captured GPS/IMU logs can be replayed through every
//! experiment in place of the synthetic generators.
//!
//! The format is deliberately serde-free: four columns, one sample per
//! line, everything else is a parse error with a line number.

use crate::tour::{Tour, TourKind, TourSample};
use mar_geom::Point2;

/// Errors from [`parse_trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line did not have exactly four comma-separated fields.
    BadArity {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field index (0 = tick).
        field: usize,
    },
    /// Ticks were not consecutive from zero.
    BadTick {
        /// 1-based line number.
        line: usize,
        /// The tick found.
        found: usize,
        /// The tick expected.
        expected: usize,
    },
    /// A speed was outside `[0, 1]` or not finite.
    BadSpeed {
        /// 1-based line number.
        line: usize,
    },
    /// The trace held no samples.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadArity { line } => write!(f, "line {line}: expected 4 fields"),
            TraceError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            TraceError::BadTick {
                line,
                found,
                expected,
            } => write!(f, "line {line}: tick {found}, expected {expected}"),
            TraceError::BadSpeed { line } => {
                write!(f, "line {line}: speed outside [0, 1]")
            }
            TraceError::Empty => write!(f, "trace holds no samples"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serialises a tour to the trace format.
pub fn format_trace(tour: &Tour) -> String {
    let mut out = String::with_capacity(tour.len() * 32 + 64);
    out.push_str(&format!(
        "# mar tour trace; kind={:?}; max_step={}\n",
        tour.kind, tour.max_step
    ));
    out.push_str("# tick,x,y,speed\n");
    for s in &tour.samples {
        out.push_str(&format!(
            "{},{},{},{}\n",
            s.tick, s.pos[0], s.pos[1], s.speed
        ));
    }
    out
}

/// Parses a trace. `kind` and `max_step` describe the capture (they are
/// not stored per-sample); comment lines start with `#`.
pub fn parse_trace(text: &str, kind: TourKind, max_step: f64) -> Result<Tour, TraceError> {
    assert!(max_step > 0.0, "max_step must be positive");
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 {
            return Err(TraceError::BadArity { line });
        }
        let tick: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| TraceError::BadNumber { line, field: 0 })?;
        let mut nums = [0.0f64; 3];
        for (i, f) in fields[1..].iter().enumerate() {
            nums[i] = f
                .trim()
                .parse()
                .map_err(|_| TraceError::BadNumber { line, field: i + 1 })?;
        }
        let expected = samples.len();
        if tick != expected {
            return Err(TraceError::BadTick {
                line,
                found: tick,
                expected,
            });
        }
        let speed = nums[2];
        if !(0.0..=1.0).contains(&speed) || !speed.is_finite() {
            return Err(TraceError::BadSpeed { line });
        }
        samples.push(TourSample {
            tick,
            pos: Point2::new([nums[0], nums[1]]),
            speed,
        });
    }
    if samples.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(Tour {
        kind,
        samples,
        max_step,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_space;
    use crate::tour::{tram_tour, TourConfig};

    #[test]
    fn round_trip_preserves_tour() {
        let tour = tram_tour(&TourConfig::new(paper_space(), 120, 9, 0.6));
        let text = format_trace(&tour);
        let back = parse_trace(&text, tour.kind, tour.max_step).unwrap();
        assert_eq!(back, tour);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0,1.0,2.0,0.5\n# mid comment\n1,2.0,3.0,0.6\n";
        let t = parse_trace(text, TourKind::Pedestrian, 10.0).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.samples[1].pos, Point2::new([2.0, 3.0]));
    }

    #[test]
    fn arity_error_reports_line() {
        let text = "0,1.0,2.0,0.5\n1,2.0,3.0\n";
        assert_eq!(
            parse_trace(text, TourKind::Tram, 10.0),
            Err(TraceError::BadArity { line: 2 })
        );
    }

    #[test]
    fn number_error_reports_field() {
        let text = "0,1.0,zzz,0.5\n";
        assert_eq!(
            parse_trace(text, TourKind::Tram, 10.0),
            Err(TraceError::BadNumber { line: 1, field: 2 })
        );
    }

    #[test]
    fn nonconsecutive_ticks_rejected() {
        let text = "0,1.0,2.0,0.5\n5,2.0,3.0,0.5\n";
        assert_eq!(
            parse_trace(text, TourKind::Tram, 10.0),
            Err(TraceError::BadTick {
                line: 2,
                found: 5,
                expected: 1
            })
        );
    }

    #[test]
    fn out_of_range_speed_rejected() {
        let text = "0,1.0,2.0,1.5\n";
        assert_eq!(
            parse_trace(text, TourKind::Tram, 10.0),
            Err(TraceError::BadSpeed { line: 1 })
        );
    }

    #[test]
    fn empty_trace_rejected() {
        assert_eq!(
            parse_trace("# only comments\n", TourKind::Tram, 10.0),
            Err(TraceError::Empty)
        );
    }

    #[test]
    fn parsed_trace_drives_experiments() {
        // A hand-written trace is a first-class Tour.
        let text = "0,100,500,0.0\n1,110,500,0.47\n2,121,500,0.52\n3,133,500,0.57\n";
        let t = parse_trace(text, TourKind::Pedestrian, 21.2).unwrap();
        assert_eq!(t.len(), 4);
        assert!(t.mean_speed() > 0.3);
        assert!(t.distance() > 30.0);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = TraceError::BadTick {
            line: 7,
            found: 9,
            expected: 6,
        };
        let msg = e.to_string();
        assert!(msg.contains("line 7") && msg.contains('9') && msg.contains('6'));
    }
}
