//! Query-frame streams: the client's view window, one per tick.

use crate::tour::Tour;
use mar_geom::{Point2, Rect2};

/// The query frame for a client at `pos`: a window whose width/height are
/// `frac` of the data space's width/height (the paper's 5–20 %), clamped so
/// the whole frame stays inside the space (the view cannot see beyond the
/// city).
pub fn frame_at(space: &Rect2, pos: &Point2, frac: f64) -> Rect2 {
    assert!(frac > 0.0 && frac <= 1.0, "frame fraction out of range");
    let w = space.extent(0) * frac;
    let h = space.extent(1) * frac;
    let cx = pos[0].clamp(space.lo[0] + w / 2.0, space.hi[0] - w / 2.0);
    let cy = pos[1].clamp(space.lo[1] + h / 2.0, space.hi[1] - h / 2.0);
    Rect2::centered(Point2::new([cx, cy]), [w / 2.0, h / 2.0])
}

/// A tour plus frame size: yields `(tick, frame, speed)` triples.
#[derive(Debug, Clone)]
pub struct FrameStream<'a> {
    tour: &'a Tour,
    space: Rect2,
    frac: f64,
}

impl<'a> FrameStream<'a> {
    /// Creates the stream.
    pub fn new(tour: &'a Tour, space: Rect2, frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0);
        Self { tour, space, frac }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.tour.len()
    }

    /// True when the underlying tour is empty.
    pub fn is_empty(&self) -> bool {
        self.tour.is_empty()
    }

    /// Iterates `(tick, frame, normalised speed, position)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Rect2, f64, Point2)> + '_ {
        self.tour.samples.iter().map(move |s| {
            (
                s.tick,
                frame_at(&self.space, &s.pos, self.frac),
                s.speed,
                s.pos,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_space;
    use crate::tour::{tram_tour, TourConfig};

    #[test]
    fn frame_size_is_fraction_of_space() {
        let space = paper_space();
        let f = frame_at(&space, &Point2::new([500.0, 500.0]), 0.1);
        assert!((f.extent(0) - 100.0).abs() < 1e-9);
        assert!((f.extent(1) - 100.0).abs() < 1e-9);
        assert_eq!(f.center(), Point2::new([500.0, 500.0]));
    }

    #[test]
    fn frames_clamp_at_the_edge() {
        let space = paper_space();
        let f = frame_at(&space, &Point2::new([5.0, 995.0]), 0.2);
        assert!(space.contains_rect(&f));
        assert!((f.extent(0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn stream_covers_whole_tour_inside_space() {
        let space = paper_space();
        let tour = tram_tour(&TourConfig::new(space, 200, 3, 0.7));
        let stream = FrameStream::new(&tour, space, 0.15);
        assert_eq!(stream.len(), 200);
        for (tick, frame, speed, pos) in stream.iter() {
            assert!(tick < 200);
            assert!(space.contains_rect(&frame));
            assert!((0.0..=1.0).contains(&speed));
            assert!(frame.contains_point(&pos) || !space.contains_point(&pos));
        }
    }

    #[test]
    fn bigger_fraction_bigger_frames() {
        let space = paper_space();
        let p = Point2::new([500.0, 500.0]);
        assert!(frame_at(&space, &p, 0.2).volume() > frame_at(&space, &p, 0.05).volume());
    }
}
