//! Scene (dataset) generation: N multiresolution objects placed over the
//! data space, uniformly or Zipfian, sized to a target number of megabytes.

use crate::paper_space;
use mar_geom::{Point2, Point3, Rect2, Rect3};
use mar_mesh::generate::{generate, ObjectKind, ObjectParams};
use mar_mesh::{SizeModel, WaveletMesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How object centres are distributed over the space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Uniformly at random (the default of §VII-A).
    Uniform,
    /// Zipfian: objects cluster around hotspots whose popularity follows a
    /// Zipf distribution with the given skew `theta` (Figs. 15).
    Zipf {
        /// Skew parameter (≈ 0.8 is the classic choice).
        theta: f64,
    },
}

/// Scene parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneConfig {
    /// The (2-D) city data space.
    pub space: Rect2,
    /// Number of objects (paper: 100–400).
    pub object_count: usize,
    /// Subdivision levels per object.
    pub levels: usize,
    /// Target total dataset size in bytes (paper: 20–80 MB). The size
    /// model's bytes-per-coefficient is fitted so the full-resolution scene
    /// hits this exactly.
    pub target_bytes: f64,
    /// Placement distribution.
    pub placement: Placement,
    /// Seed for placement and object geometry.
    pub seed: u64,
    /// World-space half-extent of each object.
    pub object_radius: f64,
}

impl SceneConfig {
    /// The paper's configuration for a given object count: 0.2 MB/object
    /// (100 → 20 MB … 400 → 80 MB), uniform placement, level-4 objects
    /// (1020 coefficients each) over the 1000×1000 space.
    pub fn paper(object_count: usize, seed: u64) -> Self {
        Self {
            space: paper_space(),
            object_count,
            levels: 4,
            target_bytes: object_count as f64 * 0.2 * 1024.0 * 1024.0,
            placement: Placement::Uniform,
            seed,
            object_radius: 14.0,
        }
    }
}

/// One placed object.
#[derive(Debug, Clone)]
pub struct SceneObject {
    /// Scene-unique id.
    pub id: u32,
    /// The object's multiresolution mesh, already placed in world space.
    pub mesh: WaveletMesh,
}

impl SceneObject {
    /// Ground-plane footprint of the object.
    pub fn footprint(&self) -> Rect2 {
        let bb: Rect3 = self.mesh.bounding_box();
        Rect2::from_corners(
            Point2::new([bb.lo[0], bb.lo[1]]),
            Point2::new([bb.hi[0], bb.hi[1]]),
        )
    }
}

/// A complete dataset.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The generating configuration.
    pub config: SceneConfig,
    /// All objects.
    pub objects: Vec<SceneObject>,
    /// Wire-size model fitted to `config.target_bytes`.
    pub size_model: SizeModel,
}

impl Scene {
    /// Generates the scene deterministically from its config.
    pub fn generate(config: SceneConfig) -> Self {
        assert!(config.object_count > 0);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_0003);
        let centers = place_centers(&config, &mut rng);
        let mut objects = Vec::with_capacity(config.object_count);
        for (i, c) in centers.into_iter().enumerate() {
            let kind = match rng.gen_range(0..10u8) {
                0..=5 => ObjectKind::Building,
                6..=8 => ObjectKind::BumpySphere,
                _ => ObjectKind::Terrain,
            };
            let params = ObjectParams {
                kind,
                levels: config.levels,
                seed: config.seed.wrapping_mul(31).wrapping_add(i as u64),
                center: Point3::new([c[0], c[1], config.object_radius]),
                radius: config.object_radius,
                detail: 0.15,
            };
            objects.push(SceneObject {
                id: i as u32,
                mesh: generate(&params),
            });
        }
        let total_coeffs: usize = objects.iter().map(|o| o.mesh.coeffs.len()).sum();
        let total_base: usize = objects
            .iter()
            .map(|o| o.mesh.hierarchy.base.vertices.len())
            .sum();
        let size_model = SizeModel::fitted(config.target_bytes, total_coeffs, total_base);
        Self {
            config,
            objects,
            size_model,
        }
    }

    /// Total full-resolution size of the scene in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.objects
            .iter()
            .map(|o| self.size_model.object_bytes(&o.mesh))
            .sum()
    }

    /// Total number of wavelet coefficients across all objects.
    pub fn total_coeffs(&self) -> usize {
        self.objects.iter().map(|o| o.mesh.coeffs.len()).sum()
    }
}

/// Draws object centres per the configured placement, inset so whole
/// objects stay inside the space.
fn place_centers(config: &SceneConfig, rng: &mut StdRng) -> Vec<Point2> {
    // Buildings stretch up to ~1.7x the nominal radius vertically and carry
    // facade noise, so inset by a conservative multiple to keep every
    // footprint fully inside the space.
    let r = config.object_radius * 2.2;
    let lo = [config.space.lo[0] + r, config.space.lo[1] + r];
    let hi = [config.space.hi[0] - r, config.space.hi[1] - r];
    match config.placement {
        Placement::Uniform => (0..config.object_count)
            .map(|_| Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]))
            .collect(),
        Placement::Zipf { theta } => {
            // Hotspot model: H cluster centres; object i joins cluster k
            // with probability ∝ 1/(k+1)^theta, offset by a gaussian-ish
            // spread around the hotspot.
            let hotspots = 8usize;
            let centers: Vec<Point2> = (0..hotspots)
                .map(|_| Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]))
                .collect();
            let weights: Vec<f64> = (0..hotspots)
                .map(|k| 1.0 / ((k + 1) as f64).powf(theta))
                .collect();
            let total: f64 = weights.iter().sum();
            let spread = (hi[0] - lo[0]).min(hi[1] - lo[1]) * 0.08;
            (0..config.object_count)
                .map(|_| {
                    let mut pick = rng.gen::<f64>() * total;
                    let mut k = 0;
                    for (i, w) in weights.iter().enumerate() {
                        if pick < *w {
                            k = i;
                            break;
                        }
                        pick -= w;
                        k = i;
                    }
                    let g = |rng: &mut StdRng| {
                        (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * spread
                    };
                    let c = centers[k];
                    Point2::new([
                        (c[0] + g(rng)).clamp(lo[0], hi[0]),
                        (c[1] + g(rng)).clamp(lo[1], hi[1]),
                    ])
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(placement: Placement) -> SceneConfig {
        SceneConfig {
            object_count: 20,
            levels: 3,
            target_bytes: 4.0 * 1024.0 * 1024.0,
            placement,
            seed: 7,
            ..SceneConfig::paper(20, 7)
        }
    }

    #[test]
    fn scene_is_deterministic() {
        let a = Scene::generate(small(Placement::Uniform));
        let b = Scene::generate(small(Placement::Uniform));
        assert_eq!(a.objects.len(), b.objects.len());
        for (x, y) in a.objects.iter().zip(&b.objects) {
            assert_eq!(x.mesh.final_positions, y.mesh.final_positions);
        }
    }

    #[test]
    fn scene_hits_target_bytes() {
        let s = Scene::generate(small(Placement::Uniform));
        let got = s.total_bytes();
        let want = s.config.target_bytes;
        assert!(
            (got - want).abs() / want < 0.01,
            "scene bytes {got} vs target {want}"
        );
    }

    #[test]
    fn objects_inside_space() {
        for placement in [Placement::Uniform, Placement::Zipf { theta: 0.8 }] {
            let s = Scene::generate(small(placement));
            for o in &s.objects {
                let fp = o.footprint();
                assert!(
                    s.config.space.contains_rect(&fp),
                    "object {} footprint {fp:?} escapes space",
                    o.id
                );
            }
        }
    }

    #[test]
    fn zipf_is_more_clustered_than_uniform() {
        // Mean nearest-neighbour distance shrinks under clustering.
        let nn = |s: &Scene| {
            let centers: Vec<Point2> = s.objects.iter().map(|o| o.footprint().center()).collect();
            let mut total = 0.0;
            for (i, a) in centers.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, b) in centers.iter().enumerate() {
                    if i != j {
                        best = best.min(a.distance(b));
                    }
                }
                total += best;
            }
            total / centers.len() as f64
        };
        let mut uni = 0.0;
        let mut zipf = 0.0;
        for seed in 0..3 {
            let mut cu = small(Placement::Uniform);
            cu.seed = seed;
            let mut cz = small(Placement::Zipf { theta: 0.8 });
            cz.seed = seed;
            uni += nn(&Scene::generate(cu));
            zipf += nn(&Scene::generate(cz));
        }
        assert!(zipf < uni, "zipf nn {zipf} must beat uniform nn {uni}");
    }

    #[test]
    fn paper_config_scales() {
        let c100 = SceneConfig::paper(100, 1);
        let c400 = SceneConfig::paper(400, 1);
        assert!((c100.target_bytes - 20.0 * 1024.0 * 1024.0).abs() < 1.0);
        assert!((c400.target_bytes - 80.0 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn ids_are_sequential() {
        let s = Scene::generate(small(Placement::Uniform));
        for (i, o) in s.objects.iter().enumerate() {
            assert_eq!(o.id as usize, i);
        }
    }
}
