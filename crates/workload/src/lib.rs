//! # mar-workload — tours, scenes, and query-frame streams (§VII-A)
//!
//! The paper's experimental setup is "a realistic augmented-reality city
//! tour": 100–400 objects (20–80 MB) distributed over the data space,
//! uniformly or Zipfian; head-movement traces of tourists on **trams** and
//! **on foot**; query frames sized 5–20 % of the data space; and normalised
//! client speeds in 0.001–1.0.
//!
//! We cannot ship the authors' recorded tourist traces, so this crate
//! generates the synthetic equivalent (DESIGN.md §4): tram tours follow a
//! rail-like network of long straight segments with station dwells (highly
//! predictable — the property the paper repeatedly leans on), while
//! pedestrian tours are random-waypoint walks with per-step heading noise
//! (harder to predict). Both expose the same [`Tour`] interface and are
//! fully deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frames;
pub mod scene;
pub mod tour;
pub mod trace;

pub use frames::{frame_at, FrameStream};
pub use scene::{Placement, Scene, SceneConfig, SceneObject};
pub use tour::{pedestrian_tour, tram_tour, Tour, TourConfig, TourKind, TourSample};
pub use trace::{format_trace, parse_trace, TraceError};

use mar_geom::{Point2, Rect2};

/// The canonical data space used throughout the experiments: a
/// 1000 × 1000 unit "city".
pub fn paper_space() -> Rect2 {
    Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]))
}
