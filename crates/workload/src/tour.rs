//! Tour generators: tram and pedestrian movement traces.

use mar_geom::{Point2, Rect2, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which kind of tour a trace came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TourKind {
    /// Rail-bound, long straight segments, station dwells — predictable.
    Tram,
    /// Random-waypoint walking with heading noise — less predictable.
    Pedestrian,
}

/// One timestamped sample of a tour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourSample {
    /// Tick index (one query frame is issued per tick).
    pub tick: usize,
    /// Client position.
    pub pos: Point2,
    /// Normalised speed in `[0, 1]` over the last step.
    pub speed: f64,
}

/// A complete movement trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Tour {
    /// The trace kind.
    pub kind: TourKind,
    /// Per-tick samples, `samples[t].tick == t`.
    pub samples: Vec<TourSample>,
    /// Space units one tick covers at normalised speed 1.0.
    pub max_step: f64,
}

impl Tour {
    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True for an empty trace.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total distance covered.
    pub fn distance(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| w[0].pos.distance(&w[1].pos))
            .sum()
    }

    /// Mean normalised speed.
    pub fn mean_speed(&self) -> f64 {
        if self.samples.len() <= 1 {
            return 0.0;
        }
        self.samples[1..].iter().map(|s| s.speed).sum::<f64>() / (self.samples.len() - 1) as f64
    }
}

/// Tour generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourConfig {
    /// The data space the tour stays inside.
    pub space: Rect2,
    /// Number of ticks to generate.
    pub ticks: usize,
    /// Seed (tours with equal configs are identical).
    pub seed: u64,
    /// Target normalised speed in `[0, 1]` (the x-axis of Figs. 8–15).
    pub speed: f64,
    /// Space units per tick at normalised speed 1.0.
    pub max_step: f64,
    /// Relative speed jitter (the paper: "the speed of the clients may
    /// also slightly vary at different parts of a tour").
    pub speed_jitter: f64,
}

impl TourConfig {
    /// A sensible default over the given space: 1.5 % of the space diagonal
    /// per tick at full speed, 10 % speed jitter.
    pub fn new(space: Rect2, ticks: usize, seed: u64, speed: f64) -> Self {
        let diag = (space.extent(0).powi(2) + space.extent(1).powi(2)).sqrt();
        Self {
            space,
            ticks,
            seed,
            speed: speed.clamp(0.0, 1.0),
            max_step: diag * 0.015,
            speed_jitter: 0.1,
        }
    }
}

/// Generates a tram tour: the client rides a rail network made of long
/// straight horizontal/vertical segments (Manhattan-style), slowing briefly
/// at periodic "stations". Long straight runs make the trace very
/// predictable for the state estimator.
pub fn tram_tour(cfg: &TourConfig) -> Tour {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0001);
    let mut samples = Vec::with_capacity(cfg.ticks);
    let inset = cfg.max_step;
    let lo = [cfg.space.lo[0] + inset, cfg.space.lo[1] + inset];
    let hi = [cfg.space.hi[0] - inset, cfg.space.hi[1] - inset];
    let mut pos = Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]);
    // Axis-aligned heading: 0 = +x, 1 = +y, 2 = −x, 3 = −y.
    let mut heading = rng.gen_range(0..4u8);
    let mut segment_left = rng.gen_range(40..120u32); // ticks until next turn
    let mut station_in = rng.gen_range(25..60u32);
    let mut dwell = 0u32;

    samples.push(TourSample {
        tick: 0,
        pos,
        speed: 0.0,
    });
    for tick in 1..cfg.ticks {
        let jitter = 1.0 + cfg.speed_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        let mut speed = (cfg.speed * jitter).clamp(0.0, 1.0);
        if dwell > 0 {
            // Stopped at a station.
            dwell -= 1;
            speed = 0.0;
        } else {
            station_in = station_in.saturating_sub(1);
            if station_in == 0 {
                dwell = rng.gen_range(2..5);
                station_in = rng.gen_range(25..60);
            }
        }
        let step = speed * cfg.max_step;
        let dir = match heading {
            0 => Vec2::new([1.0, 0.0]),
            1 => Vec2::new([0.0, 1.0]),
            2 => Vec2::new([-1.0, 0.0]),
            _ => Vec2::new([0.0, -1.0]),
        };
        let mut next = pos + dir * step;
        // Turn at segment end or when hitting the edge of the rail area.
        segment_left = segment_left.saturating_sub(1);
        let out = next[0] < lo[0] || next[0] > hi[0] || next[1] < lo[1] || next[1] > hi[1];
        if out || segment_left == 0 {
            // Turn left or right (never reverse — trams do not U-turn
            // mid-line), preferring a direction that stays inside.
            let turn: i8 = if rng.gen::<bool>() { 1 } else { 3 };
            heading = ((heading as i8 + turn).rem_euclid(4)) as u8;
            segment_left = rng.gen_range(40..120);
            // Recompute the step along the new heading; clamp inside.
            let dir = match heading {
                0 => Vec2::new([1.0, 0.0]),
                1 => Vec2::new([0.0, 1.0]),
                2 => Vec2::new([-1.0, 0.0]),
                _ => Vec2::new([0.0, -1.0]),
            };
            next = pos + dir * step;
            next = Point2::new([next[0].clamp(lo[0], hi[0]), next[1].clamp(lo[1], hi[1])]);
        }
        let actual_speed = pos.distance(&next) / cfg.max_step;
        pos = next;
        samples.push(TourSample {
            tick,
            pos,
            speed: actual_speed.clamp(0.0, 1.0),
        });
    }
    Tour {
        kind: TourKind::Tram,
        samples,
        max_step: cfg.max_step,
    }
}

/// Generates a pedestrian tour: random-waypoint movement with per-tick
/// heading noise and speed jitter. Turns are frequent and smooth-ish but
/// not axis-aligned, making the trace measurably harder to predict than a
/// tram's.
pub fn pedestrian_tour(cfg: &TourConfig) -> Tour {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0002);
    let mut samples = Vec::with_capacity(cfg.ticks);
    let inset = cfg.max_step;
    let lo = [cfg.space.lo[0] + inset, cfg.space.lo[1] + inset];
    let hi = [cfg.space.hi[0] - inset, cfg.space.hi[1] - inset];
    let mut pos = Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]);
    let mut target = Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]);
    samples.push(TourSample {
        tick: 0,
        pos,
        speed: 0.0,
    });
    for tick in 1..cfg.ticks {
        // Re-target on arrival or spontaneously (window shopping).
        if pos.distance(&target) < cfg.max_step || rng.gen::<f64>() < 0.01 {
            target = Point2::new([rng.gen_range(lo[0]..hi[0]), rng.gen_range(lo[1]..hi[1])]);
        }
        let jitter = 1.0 + cfg.speed_jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        let speed = (cfg.speed * jitter).clamp(0.0, 1.0);
        let step = speed * cfg.max_step;
        let to_target = (target - pos).normalized().unwrap_or(Vec2::new([1.0, 0.0]));
        // Heading noise: rotate the direction by a gaussian-ish angle.
        let noise = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * 0.5;
        let (s, c) = noise.sin_cos();
        let dir = Vec2::new([
            to_target[0] * c - to_target[1] * s,
            to_target[0] * s + to_target[1] * c,
        ]);
        let mut next = pos + dir * step;
        next = Point2::new([next[0].clamp(lo[0], hi[0]), next[1].clamp(lo[1], hi[1])]);
        let actual_speed = pos.distance(&next) / cfg.max_step;
        pos = next;
        samples.push(TourSample {
            tick,
            pos,
            speed: actual_speed.clamp(0.0, 1.0),
        });
    }
    Tour {
        kind: TourKind::Pedestrian,
        samples,
        max_step: cfg.max_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_space;

    fn cfg(speed: f64, seed: u64) -> TourConfig {
        TourConfig::new(paper_space(), 500, seed, speed)
    }

    #[test]
    fn tours_are_deterministic() {
        for gen in [tram_tour, pedestrian_tour] {
            let a = gen(&cfg(0.5, 9));
            let b = gen(&cfg(0.5, 9));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tours_stay_inside_the_space() {
        let space = paper_space();
        for gen in [tram_tour, pedestrian_tour] {
            for seed in 0..5 {
                let t = gen(&cfg(1.0, seed));
                for s in &t.samples {
                    assert!(
                        space.contains_point(&s.pos),
                        "{:?} escaped at {:?}",
                        t.kind,
                        s
                    );
                }
            }
        }
    }

    #[test]
    fn tour_length_and_ticks() {
        let t = tram_tour(&cfg(0.5, 1));
        assert_eq!(t.len(), 500);
        for (i, s) in t.samples.iter().enumerate() {
            assert_eq!(s.tick, i);
        }
    }

    #[test]
    fn mean_speed_tracks_target() {
        for gen in [tram_tour, pedestrian_tour] {
            for target in [0.2, 0.5, 0.9] {
                let t = gen(&cfg(target, 3));
                let m = t.mean_speed();
                assert!(
                    (m - target).abs() < 0.15,
                    "{:?} target {target} got {m}",
                    t.kind
                );
            }
        }
    }

    #[test]
    fn faster_tours_cover_more_distance() {
        let slow = tram_tour(&cfg(0.1, 4));
        let fast = tram_tour(&cfg(0.9, 4));
        assert!(fast.distance() > 3.0 * slow.distance());
    }

    #[test]
    fn step_sizes_respect_max_step() {
        for gen in [tram_tour, pedestrian_tour] {
            let t = gen(&cfg(1.0, 5));
            for w in t.samples.windows(2) {
                let d = w[0].pos.distance(&w[1].pos);
                assert!(d <= t.max_step * 1.0001, "step {d} > max {}", t.max_step);
            }
        }
    }

    #[test]
    fn tram_straighter_than_pedestrian() {
        // Heading-change rate: fraction of ticks where the direction turns
        // by more than ~15 degrees. Trams turn rarely; pedestrians often.
        let turn_rate = |t: &Tour| {
            let mut turns = 0;
            let mut moves = 0;
            for w in t.samples.windows(3) {
                let v1 = (w[1].pos - w[0].pos).normalized();
                let v2 = (w[2].pos - w[1].pos).normalized();
                if let (Some(a), Some(b)) = (v1, v2) {
                    moves += 1;
                    if a.dot(&b) < 0.966 {
                        turns += 1;
                    }
                }
            }
            turns as f64 / moves.max(1) as f64
        };
        let mut tram_avg = 0.0;
        let mut ped_avg = 0.0;
        for seed in 0..4 {
            tram_avg += turn_rate(&tram_tour(&cfg(0.5, seed)));
            ped_avg += turn_rate(&pedestrian_tour(&cfg(0.5, seed)));
        }
        assert!(
            ped_avg > 2.0 * tram_avg,
            "pedestrians must turn much more: tram {tram_avg} vs ped {ped_avg}"
        );
    }
}
