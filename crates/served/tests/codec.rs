//! Codec contract (DESIGN.md §12.1): every frame round-trips bit-exactly,
//! and every malformed input — truncated, oversized, unknown opcode,
//! mid-frame disconnect — maps to a typed error. Nothing here may panic.

use mar_core::QueryRegion;
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use mar_served::{
    decode, encode, read_frame, DecodeError, Frame, WireError, MAX_PAYLOAD, PROTOCOL_VERSION,
};
use proptest::prelude::*;

fn rect(lx: f64, ly: f64, hx: f64, hy: f64) -> Rect2 {
    Rect2 {
        lo: Point2::new([lx, ly]),
        hi: Point2::new([hx, hy]),
    }
}

fn sample_frames() -> Vec<Frame> {
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
        },
        Frame::Welcome {
            session: 7,
            token: 0xdead_beef_cafe_f00d,
        },
        Frame::Query { regions: vec![] },
        Frame::Query {
            regions: vec![
                QueryRegion {
                    region: rect(0.0, 0.0, 100.0, 50.0),
                    band: ResolutionBand {
                        w_min: 0.25,
                        w_max: 1.0,
                    },
                },
                QueryRegion {
                    region: rect(-5.5, 3.25, 7.125, 9.75),
                    band: ResolutionBand {
                        w_min: 0.0,
                        w_max: 0.5,
                    },
                },
            ],
        },
        Frame::Block {
            region: rect(1.0, 2.0, 3.0, 4.0),
            band: ResolutionBand::FULL,
        },
        Frame::Result {
            coeffs: 123,
            new_objects: 4,
            bytes: 98765.4321,
            io: 17,
        },
        Frame::Resume {
            token: u64::MAX - 1,
        },
        Frame::Resumed {
            session: 3,
            retained_coeffs: 1000,
            retained_objects: 12,
        },
        Frame::Ack { bytes: 4096.5 },
        Frame::Overload {
            outstanding: 70000.0,
            cap: 65536.0,
        },
        Frame::Error {
            code: 2,
            detail: 42,
        },
        Frame::Bye,
    ]
}

#[test]
fn every_frame_round_trips_exactly() {
    for frame in sample_frames() {
        let buf = encode(&frame).expect("sample frames are small");
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        assert_eq!(len, buf.len() - 4, "length prefix covers the payload");
        assert_eq!(decode(&buf[4..]), Ok(frame.clone()), "{}", frame.name());
        // And through the stream reader.
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF after");
    }
}

#[test]
fn f64_payloads_cross_bit_exactly() {
    // The transcript-equality guarantee rests on exact f64 transport:
    // NaN payloads, negative zero and subnormals must survive.
    for bits in [
        f64::NAN.to_bits(),
        (-0.0f64).to_bits(),
        f64::MIN_POSITIVE.to_bits() >> 1, // subnormal
        f64::INFINITY.to_bits(),
        0x0123_4567_89ab_cdef,
    ] {
        let frame = Frame::Ack {
            bytes: f64::from_bits(bits),
        };
        let buf = encode(&frame).expect("tiny");
        match decode(&buf[4..]) {
            Ok(Frame::Ack { bytes }) => assert_eq!(bytes.to_bits(), bits),
            other => panic!("ACK round-trip failed: {other:?}"),
        }
    }
}

#[test]
fn truncated_bodies_are_typed_errors() {
    // Chopping any amount off a valid body must yield BadLength (or
    // EmptyPayload when nothing but the length survives), never a panic.
    for frame in sample_frames() {
        let buf = encode(&frame).expect("tiny");
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            match decode(&payload[..cut]) {
                Err(DecodeError::EmptyPayload) => assert_eq!(cut, 0),
                Err(DecodeError::BadLength { opcode, .. }) => {
                    assert_eq!(opcode, frame.opcode(), "cut at {cut}")
                }
                Ok(f) => {
                    // Only legal if the truncation still forms a complete
                    // frame — impossible for fixed layouts, so reaching
                    // here is a bug unless cut == payload.len().
                    panic!("decode accepted a {}-byte prefix as {:?}", cut, f);
                }
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    for frame in sample_frames() {
        let mut buf = encode(&frame).expect("tiny")[4..].to_vec();
        buf.push(0xAA);
        assert!(
            matches!(decode(&buf), Err(DecodeError::BadLength { .. })),
            "{} must reject trailing bytes",
            frame.name()
        );
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // A hostile 4 GiB length prefix must be refused from the 4 prefix
    // bytes alone — read_frame never sees (or allocates) the body.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut cursor = &wire[..];
    match read_frame(&mut cursor) {
        Err(WireError::Decode(DecodeError::Oversized { len, max })) => {
            assert_eq!(len, u32::MAX);
            assert_eq!(max, MAX_PAYLOAD);
        }
        other => panic!("wanted Oversized, got {other:?}"),
    }

    let just_over = MAX_PAYLOAD + 1;
    let mut wire = Vec::new();
    wire.extend_from_slice(&just_over.to_le_bytes());
    let mut cursor = &wire[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Decode(DecodeError::Oversized { .. }))
    ));
}

#[test]
fn zero_length_frame_is_a_typed_error() {
    let wire = 0u32.to_le_bytes();
    let mut cursor = &wire[..];
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Decode(DecodeError::EmptyPayload))
    ));
}

#[test]
fn unknown_opcodes_are_typed_errors() {
    for op in [0u8, 12, 42, 255] {
        assert_eq!(decode(&[op]), Err(DecodeError::UnknownOpcode(op)));
        // With a body attached the opcode is still what fails.
        assert_eq!(
            decode(&[op, 1, 2, 3, 4]),
            Err(DecodeError::UnknownOpcode(op))
        );
    }
}

#[test]
fn query_count_must_match_the_body_exactly() {
    // count = 2 but only one region's bytes present: a hostile count
    // cannot command an allocation beyond the actual body.
    let mut payload = vec![3u8]; // QUERY
    payload.extend_from_slice(&2u32.to_le_bytes());
    payload.extend_from_slice(&[0u8; 48]); // one region, not two
    assert!(matches!(
        decode(&payload),
        Err(DecodeError::BadLength { opcode: 3, .. })
    ));

    // count that claims more than MAX_PAYLOAD worth of regions.
    let mut payload = vec![3u8];
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode(&payload),
        Err(DecodeError::BadLength { opcode: 3, .. })
    ));
}

#[test]
fn mid_frame_disconnect_is_distinguished_from_clean_close() {
    let frame = Frame::Welcome {
        session: 1,
        token: 2,
    };
    let buf = encode(&frame).expect("tiny");
    // Clean close: zero bytes.
    let mut empty: &[u8] = &[];
    assert!(matches!(read_frame(&mut empty), Ok(None)));
    // Death during the length prefix.
    for cut in 1..4 {
        let mut cursor = &buf[..cut];
        match read_frame(&mut cursor) {
            Err(WireError::Disconnected { context }) => assert_eq!(context, "length prefix"),
            other => panic!("cut {cut}: wanted Disconnected, got {other:?}"),
        }
    }
    // Death during the payload.
    for cut in 4..buf.len() {
        let mut cursor = &buf[..cut];
        match read_frame(&mut cursor) {
            Err(WireError::Disconnected { context }) => assert_eq!(context, "frame payload"),
            other => panic!("cut {cut}: wanted Disconnected, got {other:?}"),
        }
    }
}

#[test]
fn errors_render_for_operators() {
    let e = DecodeError::Oversized {
        len: 2 << 20,
        max: MAX_PAYLOAD,
    };
    assert!(e.to_string().contains("exceeds"));
    assert!(WireError::from(e).to_string().contains("decode"));
    assert!(WireError::Disconnected {
        context: "length prefix"
    }
    .to_string()
    .contains("length prefix"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics the decoder — it either parses
    /// or yields a typed error.
    #[test]
    fn decode_is_total_on_random_bytes(
        payload in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..256),
    ) {
        let _ = decode(&payload);
    }

    /// Arbitrary byte soup never panics the stream reader either, and a
    /// decoded frame re-encodes to the bytes that produced it.
    #[test]
    fn read_frame_is_total_and_reencodable(
        body in prop::collection::vec((0u16..256).prop_map(|b| b as u8), 0..128),
    ) {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(body.len() as u32).to_le_bytes());
        wire.extend_from_slice(&body);
        let mut cursor = &wire[..];
        if let Ok(Some(frame)) = read_frame(&mut cursor) {
            let re = encode(&frame).expect("decoded frames re-encode");
            prop_assert_eq!(&re[..], &wire[..], "decode/encode must be inverse");
        }
    }

    /// Random well-formed QUERY frames round-trip with bit-exact geometry.
    #[test]
    fn random_queries_round_trip(
        coords in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..8)
    ) {
        let regions: Vec<QueryRegion> = coords
            .iter()
            .map(|&(a, b, c, d, e, f)| QueryRegion {
                region: Rect2 {
                    lo: Point2::new([f64::from_bits(a), f64::from_bits(b)]),
                    hi: Point2::new([f64::from_bits(c), f64::from_bits(d)]),
                },
                band: ResolutionBand {
                    w_min: f64::from_bits(e),
                    w_max: f64::from_bits(f),
                },
            })
            .collect();
        let frame = Frame::Query { regions: regions.clone() };
        let buf = encode(&frame).expect("small");
        let back = decode(&buf[4..]).expect("round trip");
        let Frame::Query { regions: got } = back else {
            return Err(TestCaseError::Fail("not a QUERY".into()));
        };
        prop_assert_eq!(got.len(), regions.len());
        for (g, w) in got.iter().zip(&regions) {
            for dim in 0..2 {
                prop_assert_eq!(g.region.lo[dim].to_bits(), w.region.lo[dim].to_bits());
                prop_assert_eq!(g.region.hi[dim].to_bits(), w.region.hi[dim].to_bits());
            }
            prop_assert_eq!(g.band.w_min.to_bits(), w.band.w_min.to_bits());
            prop_assert_eq!(g.band.w_max.to_bits(), w.band.w_max.to_bits());
        }
    }
}
