//! Daemon-restart contract (ISSUE 10 satellite): **transport death ≠
//! session death**, end to end. A `mar-served` daemon dies mid-tour; a
//! second daemon boots over the *same page-file store* with the *same
//! token seed* (the `--store` / `--token-seed` deployment of
//! `src/bin/served.rs`); the client proves that
//!
//! 1. the restarted daemon refuses the old token with `UNKNOWN_TOKEN`
//!    (session state died with the process — tokens are capabilities
//!    into a live session table, not persistent cookies),
//! 2. a fresh connect on the restarted daemon deterministically re-mints
//!    the *same* token (seeded SipHash key + same connect order), so a
//!    client config pinned to a token keeps working across restarts,
//! 3. after the client's refetch-from-scratch, its resident set is
//!    byte-identical to an uninterrupted session's, and
//! 4. on the restarted daemon a *transport* drop (socket death, no BYE)
//!    still resumes into the retained filter — the distinction the wire
//!    protocol exists to preserve.

use mar_bench::serve::{serve_scene, ServeConfig};
use mar_core::{CachePolicy, QueryRegion, SceneIndexData, Server, ServerCore, WaveletIndex};
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use mar_served::{
    spawn_daemon, ClientError, DaemonConfig, DaemonHandle, ErrCode, QueryReply, WireClient,
};
use std::net::TcpListener;
use std::sync::Arc;

const TOKEN_SEED: u64 = 0xfee1_dead_0000_0077;

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        sessions: 1,
        ticks: 12,
        objects: 8,
        levels: 2,
        frame_frac: 0.15,
        jobs: 1,
        tour_seed: 901,
    }
}

/// A short deterministic "tour": sliding windows over the scene space.
fn tour_windows(space: &Rect2, n: usize) -> Vec<Vec<QueryRegion>> {
    let w = space.extent(0);
    let h = space.extent(1);
    (0..n)
        .map(|i| {
            let fx = 0.06 * i as f64;
            let fy = 0.05 * i as f64;
            vec![QueryRegion {
                region: Rect2::new(
                    Point2::new([space.lo[0] + fx * w, space.lo[1] + fy * h]),
                    Point2::new([space.lo[0] + (fx + 0.55) * w, space.lo[1] + (fy + 0.55) * h]),
                ),
                band: ResolutionBand::FULL,
            }]
        })
        .collect()
}

fn served_query(client: &mut WireClient, regions: &[QueryRegion]) -> mar_served::WireResult {
    match client.query(regions).expect("wire query") {
        QueryReply::Served(r) => r,
        other => panic!("query refused: {other:?}"),
    }
}

/// Resumes `token`, retrying briefly while the daemon still considers the
/// session attached (the connection thread detaches on observing EOF).
fn resume_when_free(
    addr: std::net::SocketAddr,
    token: u64,
) -> Result<(WireClient, u64, u64), ClientError> {
    for _ in 0..200 {
        match WireClient::resume(addr, token) {
            Err(ClientError::Server {
                code: Some(ErrCode::SessionBusy),
                ..
            }) => std::thread::sleep(std::time::Duration::from_millis(5)),
            other => return other,
        }
    }
    WireClient::resume(addr, token)
}

#[test]
fn daemon_restart_over_the_same_store_and_token_seed() {
    let cfg = tiny_cfg();
    let scene = serve_scene(&cfg);
    let space = scene.config.space;
    let data = Arc::new(SceneIndexData::build(&scene));

    // The persistent half of the deployment: one page-file store, written
    // once, served by every daemon incarnation (`mar-served --store`).
    let store =
        std::env::temp_dir().join(format!("mar-served-restart-{}.pages", std::process::id()));
    mar_core::write_store(&store, &data).expect("write shared store");
    let open_core = || {
        let index = WaveletIndex::open_paged(&store, 256 * 1024, CachePolicy::MotionAware)
            .expect("open shared store");
        ServerCore::from_parts(Arc::clone(&data), Arc::new(index))
    };
    let boot = |max_conns: Option<usize>| -> (DaemonHandle, Arc<Server>) {
        let server = Arc::new(Server::from_core_seeded(open_core(), TOKEN_SEED));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port");
        let handle = spawn_daemon(
            Arc::clone(&server),
            listener,
            DaemonConfig {
                max_conns,
                ..DaemonConfig::default()
            },
        )
        .expect("spawn daemon");
        (handle, server)
    };
    let windows = tour_windows(&space, 8);

    // ---- Incarnation 1: dies mid-tour. ----
    // max_conns = 1: the daemon exits once its only connection ends, which
    // is exactly the "kill mar-served mid-tour" schedule.
    let (handle1, server1) = boot(Some(1));
    let mut client = WireClient::connect(handle1.addr).expect("connect to daemon 1");
    let session = client.session();
    let token = client.token();
    let mut first_run_bytes = 0.0;
    for regions in &windows[..4] {
        first_run_bytes += served_query(&mut client, regions).bytes;
    }
    assert!(first_run_bytes > 0.0, "the half-tour moved real data");
    drop(client); // transport death mid-tour — no BYE
    let stats1 = handle1.join(); // EOF observed → max_conns reached → daemon exits
    assert_eq!(stats1.connections, 1);
    assert_eq!(
        server1.session_count(),
        1,
        "transport death alone never kills the session"
    );
    drop(server1); // ...but the process dying does: all session state gone

    // ---- Incarnation 2: same store, same token seed, new port. ----
    let (handle2, server2) = boot(None);
    let addr2 = handle2.addr;

    // (1) The old token names a session of a dead process: refused, and
    // the refusal echoes only the token itself (no session-id oracle).
    match WireClient::resume(addr2, token) {
        Err(ClientError::Server {
            code: Some(ErrCode::UnknownToken),
            detail,
            ..
        }) => assert_eq!(detail, token, "the error echoes the dead token only"),
        other => panic!("restarted daemon must refuse the old token, got {other:?}"),
    }

    // (2) Reconnect: the seeded token PRF and the identical connect order
    // re-mint the same (session, token) pair across the restart.
    let mut client = WireClient::connect(addr2).expect("connect to daemon 2");
    assert_eq!(
        client.session(),
        session,
        "seeded connect order restarts at 0"
    );
    assert_eq!(
        client.token(),
        token,
        "same --token-seed must re-mint the same token across the restart"
    );

    // (3) The restarted filter is empty — the client refetches from
    // scratch (planner reset): the full tour this time.
    let mut refetch_bytes = 0.0;
    for regions in &windows {
        refetch_bytes += served_query(&mut client, regions).bytes;
    }
    assert!(
        refetch_bytes >= first_run_bytes,
        "a fresh session refetches at least everything the dead one held"
    );

    // (4) On the *running* daemon, transport death is still survivable:
    // drop the socket, resume by token, and the filter is retained.
    drop(client);
    let (mut resumed, retained_coeffs, _) =
        resume_when_free(addr2, token).expect("resume on the live daemon");
    assert_eq!(resumed.session(), session);
    assert!(
        retained_coeffs > 0,
        "the filter survived the transport drop"
    );
    for regions in &windows {
        let again = served_query(&mut resumed, regions);
        assert_eq!(again.bytes, 0.0, "everything already held: nothing re-sent");
    }

    // The surviving resident set equals an uninterrupted in-process
    // session's, byte for byte — the end of the end-to-end invariant.
    let reference = Server::from_core_seeded(open_core(), TOKEN_SEED);
    let ref_session = reference.connect();
    for regions in &windows {
        reference
            .query(ref_session, regions)
            .expect("reference query");
    }
    assert_eq!(
        server2.session_sent_set(session).expect("live session"),
        reference
            .session_sent_set(ref_session)
            .expect("live reference"),
        "post-restart resident set must equal the uninterrupted run's"
    );

    resumed.bye().expect("bye");
    assert_eq!(server2.session_count(), 0, "BYE released the session");
    assert_eq!(server2.resident_filter_entries(), 0);
    drop(handle2);
    let _ = std::fs::remove_file(&store);
}
