//! End-to-end loopback contract (DESIGN.md §12.4): a real `mar-served`
//! daemon on 127.0.0.1 must be **unobservable** relative to the
//! in-process harness — same transcript bytes, same fingerprint — and
//! must enforce the protocol's security and backpressure semantics.

use mar_bench::serve::{fnv1a64, run_serve, serve_scene, ServeConfig};
use mar_core::{QueryRegion, SceneIndexData, Server, ServerCore, WaveletIndex};
use mar_mesh::ResolutionBand;
use mar_served::{
    run_wire_replay, run_wire_replay_pipelined, spawn_daemon, ClientError, DaemonConfig,
    DaemonHandle, ErrCode, Frame, QueryReply, WireClient,
};
use std::net::TcpListener;
use std::sync::Arc;

fn tiny_cfg() -> ServeConfig {
    ServeConfig {
        sessions: 3,
        ticks: 12,
        objects: 8,
        levels: 2,
        frame_frac: 0.15,
        jobs: 1,
        tour_seed: 901,
    }
}

/// Boots a daemon serving the scene for `cfg` on an ephemeral loopback
/// port; the daemon exits after `max_conns` connections.
fn boot(cfg: &ServeConfig, daemon_cfg: DaemonConfig) -> (DaemonHandle, Arc<Server>) {
    let scene = serve_scene(cfg);
    let data = SceneIndexData::build(&scene);
    let index = WaveletIndex::build_jobs(&data, 1);
    let server = Arc::new(Server::from_core(ServerCore::from_parts(
        Arc::new(data),
        Arc::new(index),
    )));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral loopback port");
    let handle = spawn_daemon(Arc::clone(&server), listener, daemon_cfg).expect("spawn daemon");
    (handle, server)
}

fn whole_space_full(cfg: &ServeConfig) -> Vec<QueryRegion> {
    vec![QueryRegion {
        region: serve_scene(cfg).config.space,
        band: ResolutionBand::FULL,
    }]
}

/// Resumes `token`, retrying briefly while the daemon still considers
/// the session attached: after a transport drop the connection thread
/// detaches only once it observes EOF, so an immediate RESUME can race
/// it and be refused with `SessionBusy`.
fn resume_when_free(
    addr: std::net::SocketAddr,
    token: u64,
) -> Result<(WireClient, u64, u64), ClientError> {
    for _ in 0..200 {
        match WireClient::resume(addr, token) {
            Err(ClientError::Server {
                code: Some(ErrCode::SessionBusy),
                ..
            }) => std::thread::sleep(std::time::Duration::from_millis(5)),
            other => return other,
        }
    }
    WireClient::resume(addr, token)
}

#[test]
fn wire_transcript_is_byte_identical_to_in_process() {
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: Some(cfg.sessions),
            ..DaemonConfig::default()
        },
    );
    let wire = run_wire_replay(handle.addr, &cfg).expect("wire replay");
    let stats = handle.join();

    let reference = run_serve(&cfg);
    assert_eq!(
        wire.transcript, reference.transcript,
        "the wire layer must be unobservable in the transcript"
    );
    assert_eq!(fnv1a64(&wire.transcript), fnv1a64(&reference.transcript));
    assert_eq!(wire.bytes, reference.bytes, "payload accounting bit-exact");
    assert_eq!(wire.coeffs, reference.coeffs);
    assert_eq!(wire.io, reference.io);
    assert!(wire.bytes > 0.0, "the comparison is not vacuous");
    assert!(
        wire.wire_bytes > 0,
        "frames actually crossed the loopback socket"
    );
    assert_eq!(stats.connections as usize, cfg.sessions);
    assert_eq!(stats.overloads, 0, "an acking replay is never refused");
    assert_eq!(stats.errors, 0);
    // BYE released every session.
    assert_eq!(server.session_count(), 0);
    assert_eq!(server.resident_filter_entries(), 0);
}

#[test]
fn pipelined_replay_transcript_is_depth_invariant() {
    // The FIFO pipeline drains replies in issue order, so every depth —
    // including depths beyond the session count, which clamp — must
    // produce the synchronous replay's exact transcript bytes, and the
    // daemon must never refuse admission (in-flight queries are always
    // on distinct sessions, each with at most one unacked RESULT).
    let cfg = tiny_cfg();
    let reference = run_serve(&cfg);
    for depth in [2, 64] {
        let (handle, server) = boot(
            &cfg,
            DaemonConfig {
                max_conns: Some(cfg.sessions),
                ..DaemonConfig::default()
            },
        );
        let wire = run_wire_replay_pipelined(handle.addr, &cfg, depth).expect("pipelined replay");
        let stats = handle.join();
        assert_eq!(
            wire.transcript, reference.transcript,
            "pipeline depth {depth} must be unobservable in the transcript"
        );
        assert_eq!(wire.pipeline, depth.min(cfg.sessions));
        assert_eq!(stats.overloads, 0, "pipelined replay must never be refused");
        assert_eq!(stats.errors, 0);
        assert_eq!(server.session_count(), 0);
    }
}

#[test]
fn resume_over_the_wire_requires_the_token_not_the_session_id() {
    let cfg = tiny_cfg();
    // Serve-forever: the SessionBusy retry below consumes a variable
    // number of connections, so no exact max_conns fits.
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: None,
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr;

    // Session 0 retrieves something, then its transport drops (no BYE).
    let mut client = WireClient::connect(addr).expect("connect");
    let session = client.session();
    let token = client.token();
    assert_ne!(token, session, "the token must not echo the session id");
    let reply = client.query(&whole_space_full(&cfg)).expect("query");
    let QueryReply::Served(first) = reply else {
        panic!("fresh session refused: {reply:?}");
    };
    assert!(first.bytes > 0.0);
    drop(client); // transport drop, not BYE: the session stays live
    assert_eq!(server.session_count(), 1);

    // ISSUE 6 regression: the raw sequential session id must NOT work as
    // a resume token on the wire.
    match WireClient::resume(addr, session) {
        Err(ClientError::Server {
            code: Some(ErrCode::UnknownToken),
            detail,
            ..
        }) => assert_eq!(detail, session, "the error echoes the bad token only"),
        other => panic!("session-id resume must be refused, got {other:?}"),
    }

    // The real token re-attaches to the *same* filter state: a repeat of
    // the identical query now transfers nothing.
    let (mut resumed, retained_coeffs, _) = resume_when_free(addr, token).expect("token resume");
    assert_eq!(resumed.session(), session);
    assert_eq!(retained_coeffs, first.coeffs, "filter state was retained");
    match resumed.query(&whole_space_full(&cfg)).expect("requery") {
        QueryReply::Served(again) => {
            assert_eq!(again.bytes, 0.0, "resume kept the dedup filter");
            assert_eq!(again.coeffs, 0);
        }
        other => panic!("requery refused: {other:?}"),
    }
    resumed.bye().expect("bye");
    assert_eq!(server.session_count(), 0, "BYE released the session");

    // A token for a never-minted session is refused too.
    match WireClient::resume(addr, 0x1234_5678_9abc_def0) {
        Err(ClientError::Server {
            code: Some(ErrCode::UnknownToken),
            ..
        }) => {}
        other => panic!("forged token must be refused, got {other:?}"),
    }
    // Serve-forever daemon: drop the handle instead of joining.
    drop(handle);
}

#[test]
fn overload_ledger_survives_transport_drop_and_resume() {
    // REVIEW regression: the OVERLOAD credit ledger follows the session,
    // not the connection. Dropping the socket and resuming must NOT zero
    // the unacked debt (that would let any client bypass backpressure by
    // reconnecting).
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            outbox_cap: 1024.0,
            max_conns: None,
        },
    );
    let addr = handle.addr;
    let whole = whole_space_full(&cfg);

    let mut client = WireClient::connect(addr).expect("connect");
    let token = client.token();
    // Raw send/recv (not `query`, which acks): the payload stays unacked.
    client
        .send(&Frame::Query {
            regions: whole.clone(),
        })
        .expect("send");
    let first = match client.recv().expect("recv") {
        Frame::Result { bytes, .. } => bytes,
        other => panic!("wanted RESULT, got {}", other.name()),
    };
    assert!(first > 1024.0, "scene payload must exceed the cap");

    // Drop the transport with the whole payload unacked, then resume.
    drop(client);
    let (mut resumed, _, _) = resume_when_free(addr, token).expect("token resume");

    // The debt survived the reconnect: still refused.
    match resumed.query(&whole).expect("post-resume query") {
        QueryReply::Overloaded { outstanding, cap } => {
            assert_eq!(
                outstanding, first,
                "the reconnect must not reset the ledger"
            );
            assert_eq!(cap, 1024.0);
        }
        QueryReply::Served(r) => panic!("reconnect zeroed the credit ledger: {r:?}"),
    }
    // Acking on the new connection clears the same ledger.
    resumed.send(&Frame::Ack { bytes: first }).expect("ack");
    match resumed.query(&whole).expect("recovered query") {
        QueryReply::Served(r) => assert_eq!(r.bytes, 0.0, "filter survived throughout"),
        other => panic!("still refused after full ack: {other:?}"),
    }
    resumed.bye().expect("bye");
    assert_eq!(server.session_count(), 0);
    drop(handle);
}

#[test]
fn resume_is_refused_while_the_session_is_attached() {
    // REVIEW regression: attachment is exclusive. A valid token must not
    // let a second connection drive a session that a live connection
    // already holds.
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: None,
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr;

    let mut client = WireClient::connect(addr).expect("connect");
    let session = client.session();
    let token = client.token();

    // The first connection is provably attached (WELCOME was received),
    // so this refusal is deterministic, not a race.
    match WireClient::resume(addr, token) {
        Err(ClientError::Server {
            code: Some(ErrCode::SessionBusy),
            detail,
            ..
        }) => assert_eq!(detail, session, "the error names the busy session"),
        other => panic!("attached resume must be refused, got {other:?}"),
    }

    // The refused hijack changed nothing for the holder.
    match client.query(&whole_space_full(&cfg)).expect("query") {
        QueryReply::Served(r) => assert!(r.bytes > 0.0),
        other => panic!("holder refused: {other:?}"),
    }
    client.bye().expect("bye");

    // After BYE the session is gone for good: the token is dead, not busy.
    match WireClient::resume(addr, token) {
        Err(ClientError::Server {
            code: Some(ErrCode::UnknownToken),
            ..
        }) => {}
        other => panic!("BYE must kill the token, got {other:?}"),
    }
    assert_eq!(server.session_count(), 0);
    drop(handle);
}

#[test]
fn saturated_outbox_returns_typed_overload_and_recovers_on_ack() {
    let cfg = tiny_cfg();
    // Cap far below one whole-space full-resolution payload.
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            outbox_cap: 1024.0,
            max_conns: Some(1),
        },
    );
    let mut client = WireClient::connect(handle.addr).expect("connect");
    let whole = whole_space_full(&cfg);

    // First query: ledger is 0 < cap, admitted (overshoot-by-one), but
    // we withhold the ACK.
    client
        .send(&Frame::Query {
            regions: whole.clone(),
        })
        .expect("send");
    let first = match client.recv().expect("recv") {
        Frame::Result { bytes, .. } => bytes,
        other => panic!("wanted RESULT, got {}", other.name()),
    };
    assert!(first > 1024.0, "scene payload must exceed the cap");

    // Second query: refused with a typed OVERLOAD, not queued, not
    // executed, not a disconnect.
    match client.query(&whole).expect("overloaded query") {
        QueryReply::Overloaded { outstanding, cap } => {
            assert_eq!(outstanding, first, "ledger holds the unacked payload");
            assert_eq!(cap, 1024.0);
        }
        QueryReply::Served(r) => panic!("daemon served past the cap: {r:?}"),
    }
    // Refusal did not touch the filter: after acking, the same query
    // executes and (because the filter already has everything from the
    // first transfer) returns zero new bytes.
    client.send(&Frame::Ack { bytes: first }).expect("ack");
    match client.query(&whole).expect("recovered query") {
        QueryReply::Served(r) => assert_eq!(r.bytes, 0.0, "filter survived the refusal"),
        other => panic!("still refused after full ack: {other:?}"),
    }
    client.bye().expect("bye");

    let stats = handle.join();
    assert_eq!(stats.overloads, 1);
    assert_eq!(server.session_count(), 0);
}

#[test]
fn malformed_frames_get_typed_errors_and_the_daemon_survives() {
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: Some(5),
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr;

    // 1. Unknown opcode: typed ERROR, connection stays usable.
    {
        let mut client = WireClient::connect(addr).expect("connect");
        use std::io::Write;
        let raw = std::net::TcpStream::connect(addr).expect("raw connect");
        let mut writer = raw.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(raw);
        writer
            .write_all(&[1u8, 0, 0, 0, 99])
            .expect("unknown opcode");
        match mar_served::read_frame(&mut reader).expect("ERROR frame back") {
            Some(Frame::Error { code, detail }) => {
                assert_eq!(code, ErrCode::UnknownOpcode as u8);
                assert_eq!(detail, 99);
            }
            other => panic!("wanted ERROR(UnknownOpcode), got {other:?}"),
        }
        // The first client's session is untouched by the raw prodding.
        match client.query(&whole_space_full(&cfg)).expect("query") {
            QueryReply::Served(r) => assert!(r.bytes > 0.0),
            other => panic!("refused: {other:?}"),
        }
        client.bye().expect("bye");
    }

    // 2. Oversized length prefix: typed ERROR (Malformed), then close.
    {
        use std::io::Write;
        let raw = std::net::TcpStream::connect(addr).expect("raw connect");
        let mut writer = raw.try_clone().expect("clone");
        let mut reader = std::io::BufReader::new(raw);
        writer
            .write_all(&u32::MAX.to_le_bytes())
            .expect("evil prefix");
        match mar_served::read_frame(&mut reader).expect("ERROR frame back") {
            Some(Frame::Error { code, detail }) => {
                assert_eq!(code, ErrCode::Malformed as u8);
                assert_eq!(detail, u64::from(u32::MAX), "detail carries the bad length");
            }
            other => panic!("wanted ERROR(Malformed), got {other:?}"),
        }
        assert!(
            mar_served::read_frame(&mut reader)
                .expect("clean close")
                .is_none(),
            "the daemon closes a desynchronised stream"
        );
    }

    // 3. Mid-frame disconnect: no reply owed; the daemon just moves on
    // and keeps serving new connections.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&[40, 0, 0]).expect("partial prefix");
        drop(raw);
    }
    let mut client = WireClient::connect(addr).expect("daemon still serving");
    match client.query(&whole_space_full(&cfg)).expect("query") {
        QueryReply::Served(r) => assert!(r.bytes > 0.0),
        other => panic!("refused: {other:?}"),
    }
    client.bye().expect("bye");

    handle.join();
    assert_eq!(server.session_count(), 0, "no session leaked");
}

#[test]
fn concurrent_connect_resume_bye_interleavings_do_not_wedge() {
    // PR 7 regression backstop for the lock-order hot path D006 guards:
    // two clients hammer connect → query → transport-drop → RESUME →
    // query → BYE concurrently. Each driver crosses every daemon lock
    // scope (token map, session stripes, wire-session ledger) in every
    // interleaving the scheduler cares to produce; a lock-order inversion
    // between those scopes wedges both threads and trips the watchdog.
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: None,
            ..DaemonConfig::default()
        },
    );
    let addr = handle.addr;
    let whole = whole_space_full(&cfg);

    const DRIVERS: usize = 2;
    const ROUNDS: usize = 12;
    let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
    let mut drivers = Vec::new();
    for d in 0..DRIVERS {
        let whole = whole.clone();
        let done = done_tx.clone();
        drivers.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                let mut client = WireClient::connect(addr).expect("connect");
                let session = client.session();
                let token = client.token();
                match client.query(&whole).expect("fresh query") {
                    QueryReply::Served(r) => assert!(r.bytes > 0.0, "d{d} r{round}"),
                    other => panic!("d{d} r{round} refused: {other:?}"),
                }
                // Odd rounds drop the transport and RESUME; even rounds
                // just BYE. Both paths interleave against the other driver.
                if round % 2 == 1 {
                    drop(client);
                    let (mut resumed, _, _) = resume_when_free(addr, token).expect("token resume");
                    assert_eq!(resumed.session(), session, "d{d} r{round}");
                    match resumed.query(&whole).expect("post-resume query") {
                        QueryReply::Served(r) => {
                            assert_eq!(r.bytes, 0.0, "d{d} r{round}: filter retained")
                        }
                        other => panic!("d{d} r{round} resume refused: {other:?}"),
                    }
                    resumed.bye().expect("bye after resume");
                } else {
                    client.bye().expect("bye");
                }
            }
            done.send(d).expect("report completion");
        }));
    }
    drop(done_tx);

    // Watchdog: every driver must finish well inside the deadline; a
    // deadlock anywhere in the connect/RESUME/BYE path hangs the recv.
    let deadline = std::time::Duration::from_secs(60);
    for _ in 0..DRIVERS {
        done_rx
            .recv_timeout(deadline)
            .expect("a driver wedged: lock-order deadlock on the serving path");
    }
    for t in drivers {
        t.join().expect("driver panicked");
    }
    assert_eq!(server.session_count(), 0, "every session was released");
    assert_eq!(server.resident_filter_entries(), 0);
    drop(handle);
}

#[test]
fn query_before_hello_is_refused_not_minted() {
    let cfg = tiny_cfg();
    let (handle, server) = boot(
        &cfg,
        DaemonConfig {
            max_conns: Some(1),
            ..DaemonConfig::default()
        },
    );
    use std::io::Write;
    let mut raw = std::net::TcpStream::connect(handle.addr).expect("raw connect");
    // A QUERY with zero regions, sent before any HELLO/RESUME.
    raw.write_all(&[5u8, 0, 0, 0, 3, 0, 0, 0, 0]).expect("send");
    let mut reader = std::io::BufReader::new(raw.try_clone().expect("clone"));
    match mar_served::read_frame(&mut reader).expect("reply") {
        Some(Frame::Error { code, .. }) => {
            assert_eq!(code, ErrCode::NotConnected as u8);
        }
        other => panic!("wanted ERROR(NotConnected), got {other:?}"),
    }
    drop(raw);
    drop(reader);
    handle.join();
    assert_eq!(
        server.session_count(),
        0,
        "error paths must not mint sessions"
    );
}
