//! `mar-served` — the TCP retrieval daemon.
//!
//! Builds the deterministic serve scene, bulk-loads the wavelet index,
//! and serves it over the DESIGN.md §12 wire protocol:
//!
//! ```text
//! cargo run -p mar-served --release --bin mar-served -- --smoke --port 0 \
//!     --port-file target/mar-served.port --max-conns 5
//! ```
//!
//! `--port 0` binds an ephemeral port; `--port-file` publishes the bound
//! port so a separate `mar-load` process can find it. `--max-conns N`
//! makes the daemon exit after serving N connections — how CI bounds the
//! loopback smoke job. The scene parameters must match the load
//! generator's (`--smoke` on both sides) or the transcripts will not
//! fingerprint-equal.
//!
//! `--store PATH` switches the daemon out-of-core: the index is written
//! to a page file at `PATH` and every descent reads through the
//! motion-aware buffer pool, capped at `--cache-mb N` MiB (default 64).
//! Responses are byte-identical to the in-RAM build (DESIGN.md §15), so
//! `mar-load --check` passes against either backend.

use mar_bench::serve::{serve_scene, ServeConfig};
use mar_core::{CachePolicy, SceneIndexData, Server, ServerCore, WaveletIndex};
use mar_served::{spawn_daemon, DaemonConfig, DEFAULT_OUTBOX_CAP};
use std::net::TcpListener;
use std::path::Path;
use std::sync::Arc;

struct Options {
    smoke: bool,
    jobs: usize,
    port: u16,
    port_file: Option<String>,
    outbox_cap: f64,
    max_conns: Option<usize>,
    /// `None` (the default) mints session tokens from per-process
    /// entropy; `Some` pins the keyed PRF for reproducible debugging.
    token_seed: Option<u64>,
    /// `Some(path)` serves out-of-core from a page file at `path`.
    store: Option<String>,
    /// Buffer-pool budget in MiB (only meaningful with `--store`).
    cache_mb: usize,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        jobs: default_jobs(),
        port: 4818,
        port_file: None,
        outbox_cap: DEFAULT_OUTBOX_CAP,
        max_conns: None,
        token_seed: None,
        store: None,
        cache_mb: 64,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.smoke = false,
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a number: {v}"))?;
            }
            "--port" => {
                let v = value("--port")?;
                opts.port = v.parse().map_err(|_| format!("--port: not a port: {v}"))?;
            }
            "--port-file" => opts.port_file = Some(value("--port-file")?),
            "--outbox-cap" => {
                let v = value("--outbox-cap")?;
                opts.outbox_cap = v
                    .parse()
                    .map_err(|_| format!("--outbox-cap: not a number: {v}"))?;
            }
            "--max-conns" => {
                let v = value("--max-conns")?;
                opts.max_conns = Some(
                    v.parse()
                        .map_err(|_| format!("--max-conns: not a number: {v}"))?,
                );
            }
            "--token-seed" => {
                let v = value("--token-seed")?;
                opts.token_seed = Some(
                    v.parse()
                        .map_err(|_| format!("--token-seed: not a u64: {v}"))?,
                );
            }
            "--store" => opts.store = Some(value("--store")?),
            "--cache-mb" => {
                let v = value("--cache-mb")?;
                let mb: usize = v
                    .parse()
                    .map_err(|_| format!("--cache-mb: not a number: {v}"))?;
                if mb == 0 {
                    return Err("--cache-mb: must be at least 1".to_string());
                }
                opts.cache_mb = mb;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: mar-served [--smoke|--full] [--jobs N] \
                     [--port P] [--port-file PATH] [--outbox-cap BYTES] [--max-conns N] \
                     [--token-seed N] [--store PATH] [--cache-mb N]"
                ))
            }
        }
    }
    if opts.store.is_none() && opts.cache_mb != 64 {
        return Err("--cache-mb only makes sense with --store".to_string());
    }
    Ok(opts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = if opts.smoke {
        ServeConfig::smoke(opts.jobs)
    } else {
        ServeConfig::full(opts.jobs)
    };

    eprintln!(
        "mar-served: building scene ({} objects, {} levels) and index (jobs={})",
        cfg.objects, cfg.levels, cfg.jobs
    );
    let scene = serve_scene(&cfg);
    let core = match &opts.store {
        None => {
            let data = SceneIndexData::build(&scene);
            let index = WaveletIndex::build_jobs(&data, cfg.jobs);
            ServerCore::from_parts(Arc::new(data), Arc::new(index))
        }
        Some(path) => {
            let budget = opts.cache_mb << 20;
            match ServerCore::new_paged(&scene, Path::new(path), budget, CachePolicy::MotionAware) {
                Ok(core) => {
                    eprintln!(
                        "mar-served: out-of-core — store {path}, pool {} MiB, motion-aware eviction",
                        opts.cache_mb
                    );
                    core
                }
                Err(e) => {
                    eprintln!("mar-served: cannot build page store at {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let server = Arc::new(match opts.token_seed {
        // Entropy-keyed tokens by default: there is no public key an
        // attacker could use to mint another session's token.
        None => Server::from_core(core),
        Some(seed) => Server::from_core_seeded(core, seed),
    });

    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mar-served: cannot bind 127.0.0.1:{}: {e}", opts.port);
            std::process::exit(1);
        }
    };
    let handle = match spawn_daemon(
        server,
        listener,
        DaemonConfig {
            outbox_cap: opts.outbox_cap,
            max_conns: opts.max_conns,
        },
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("mar-served: cannot spawn acceptor: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &opts.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", handle.addr.port())) {
            eprintln!("mar-served: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!(
        "mar-served: listening on {} (outbox cap {} B{})",
        handle.addr,
        opts.outbox_cap,
        match opts.max_conns {
            Some(m) => format!(", exits after {m} conns"),
            None => String::new(),
        }
    );

    let stats = handle.join();
    eprintln!(
        "mar-served: done — {} conns, {} frames in, {} frames out, {} overloads, {} errors",
        stats.connections, stats.frames_in, stats.frames_out, stats.overloads, stats.errors
    );
}
