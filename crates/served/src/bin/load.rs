//! `mar-load` — the wire workload generator.
//!
//! Replays the `mar-bench serve` tours against a live `mar-served`
//! daemon and writes `BENCH_wire.json` (see EXPERIMENTS.md):
//!
//! ```text
//! cargo run -p mar-served --release --bin mar-load -- --smoke \
//!     --port-file target/mar-served.port --check --saturate
//! ```
//!
//! `--check` also runs the in-process `mar-bench serve` harness for the
//! same config and fails (exit 1) unless the two transcripts are
//! byte-identical — the wire layer must be unobservable. `--saturate`
//! opens one extra connection that withholds `ACK`s to drive the
//! session's outbox over the cap and asserts the daemon answers with a
//! typed `OVERLOAD` (and recovers after credit returns).

use mar_bench::serve::{fnv1a64, run_serve, ServeConfig};
use mar_core::QueryRegion;
use mar_geom::Rect2;
use mar_mesh::ResolutionBand;
use mar_served::{run_wire_replay_pipelined, QueryReply, ReplayReport, WireClient};
use std::net::SocketAddr;

struct Options {
    smoke: bool,
    addr: Option<String>,
    port_file: Option<String>,
    check: bool,
    saturate: bool,
    out_dir: String,
    pipeline: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        addr: None,
        port_file: None,
        check: false,
        saturate: false,
        out_dir: ".".to_string(),
        pipeline: 1,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--full" => opts.smoke = false,
            "--check" => opts.check = true,
            "--saturate" => opts.saturate = true,
            "--addr" => opts.addr = Some(value("--addr")?),
            "--port-file" => opts.port_file = Some(value("--port-file")?),
            "--out-dir" => opts.out_dir = value("--out-dir")?,
            "--pipeline" => {
                let v = value("--pipeline")?;
                opts.pipeline = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--pipeline needs a positive integer, got {v}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument: {other}\nusage: mar-load (--addr HOST:PORT | \
                     --port-file PATH) [--smoke|--full] [--check] [--saturate] \
                     [--pipeline N] [--out-dir DIR]"
                ))
            }
        }
    }
    Ok(opts)
}

fn resolve_addr(opts: &Options) -> Result<SocketAddr, String> {
    let text = match (&opts.addr, &opts.port_file) {
        (Some(a), _) => a.clone(),
        (None, Some(path)) => {
            let port = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read --port-file {path}: {e}"))?;
            format!("127.0.0.1:{}", port.trim())
        }
        (None, None) => return Err("need --addr or --port-file".to_string()),
    };
    text.parse()
        .map_err(|e| format!("bad daemon address {text}: {e}"))
}

/// Saturates one extra session's outbox: a whole-space full-resolution
/// query is admitted (the ledger starts at 0) but not acked, so the next
/// query must be refused with `OVERLOAD`; acking the credit back must
/// let queries through again.
fn prove_overload(addr: SocketAddr, space: Rect2) -> Result<(f64, f64), String> {
    let mut client =
        WireClient::connect(addr).map_err(|e| format!("saturate connect failed: {e}"))?;
    let whole = [QueryRegion {
        region: space,
        band: ResolutionBand::FULL,
    }];
    client
        .send(&mar_served::Frame::Query {
            regions: whole.to_vec(),
        })
        .map_err(|e| format!("saturate query failed: {e}"))?;
    let first = match client.recv().map_err(|e| format!("saturate recv: {e}"))? {
        mar_served::Frame::Result { bytes, .. } => bytes,
        other => return Err(format!("saturate: wanted RESULT, got {}", other.name())),
    };
    // Second query with the first's payload still unacked.
    let (outstanding, cap) = match client
        .query(&whole)
        .map_err(|e| format!("saturate second query: {e}"))?
    {
        QueryReply::Overloaded { outstanding, cap } => (outstanding, cap),
        QueryReply::Served(_) => {
            return Err(format!(
                "daemon served a query with {first} unacked bytes outstanding — \
                 expected OVERLOAD (is --outbox-cap larger than the scene?)"
            ))
        }
    };
    // Return the credit; the session must be admitted again.
    client
        .send(&mar_served::Frame::Ack { bytes: first })
        .map_err(|e| format!("saturate ack: {e}"))?;
    match client
        .query(&whole)
        .map_err(|e| format!("saturate recovery query: {e}"))?
    {
        QueryReply::Served(_) => {}
        QueryReply::Overloaded { outstanding, cap } => {
            return Err(format!(
                "daemon still overloaded after full ack ({outstanding} of {cap} B)"
            ))
        }
    }
    client.bye().map_err(|e| format!("saturate bye: {e}"))?;
    Ok((outstanding, cap))
}

#[allow(clippy::too_many_arguments)]
fn write_wire_json(
    path: &str,
    mode: &str,
    addr: SocketAddr,
    r: &ReplayReport,
    overload: Option<(f64, f64)>,
    check: &str,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mar-load-wire/2\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"addr\": \"{addr}\",\n"));
    out.push_str(&format!("  \"sessions\": {},\n", r.sessions));
    out.push_str(&format!("  \"ticks\": {},\n", r.ticks));
    out.push_str(&format!("  \"queries\": {},\n", r.queries));
    out.push_str(&format!("  \"pipeline\": {},\n", r.pipeline));
    out.push_str(&format!("  \"bytes_served\": {:.1},\n", r.bytes));
    out.push_str(&format!("  \"coeffs_served\": {},\n", r.coeffs));
    out.push_str(&format!("  \"index_io\": {},\n", r.io));
    out.push_str(&format!("  \"wire_bytes\": {},\n", r.wire_bytes));
    out.push_str(&format!("  \"elapsed_s\": {:.6},\n", r.elapsed_s));
    out.push_str(&format!(
        "  \"queries_per_sec\": {:.1},\n",
        r.queries_per_sec()
    ));
    out.push_str(&format!(
        "  \"frame_latency_ns\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}},\n",
        r.frame_latency_ns(0.50),
        r.frame_latency_ns(0.99),
        r.frame_latency_ns(1.0)
    ));
    match overload {
        Some((outstanding, cap)) => out.push_str(&format!(
            "  \"overload\": {{\"seen\": true, \"outstanding\": {outstanding:.1}, \
             \"cap\": {cap:.1}}},\n"
        )),
        None => out.push_str("  \"overload\": {\"seen\": false},\n"),
    }
    out.push_str(&format!("  \"check\": \"{check}\",\n"));
    out.push_str(&format!(
        "  \"transcript_fnv64\": \"{:016x}\"\n",
        fnv1a64(&r.transcript)
    ));
    out.push_str("}\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let addr = match resolve_addr(&opts) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mar-load: {e}");
            std::process::exit(2);
        }
    };
    let mode = if opts.smoke { "smoke" } else { "full" };
    // jobs=1: the wire replay is serial by design (session order is the
    // transcript order); the field only shapes the in-process reference.
    let cfg = if opts.smoke {
        ServeConfig::smoke(1)
    } else {
        ServeConfig::full(1)
    };
    eprintln!(
        "mar-load: {mode} replay against {addr} ({} sessions x {} ticks, pipeline {})",
        cfg.sessions, cfg.ticks, opts.pipeline
    );

    let report = match run_wire_replay_pipelined(addr, &cfg, opts.pipeline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mar-load: replay failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "mar-load: {} queries in {:.3} s ({:.1} q/s), {:.1} KiB payload, {:.1} KiB on wire, \
         frame p50 {:.1} us / p99 {:.1} us",
        report.queries,
        report.elapsed_s,
        report.queries_per_sec(),
        report.bytes / 1024.0,
        report.wire_bytes as f64 / 1024.0,
        report.frame_latency_ns(0.50) as f64 / 1e3,
        report.frame_latency_ns(0.99) as f64 / 1e3,
    );

    let check = if opts.check {
        eprintln!("mar-load: --check: replaying the same config in-process");
        let reference = run_serve(&cfg);
        if reference.transcript == report.transcript {
            eprintln!(
                "mar-load: transcripts byte-identical (fnv64 {:016x})",
                fnv1a64(&report.transcript)
            );
            "pass"
        } else {
            eprintln!(
                "mar-load: TRANSCRIPT MISMATCH — wire fnv64 {:016x}, in-process fnv64 {:016x}",
                fnv1a64(&report.transcript),
                fnv1a64(&reference.transcript)
            );
            std::process::exit(1);
        }
    } else {
        "skipped"
    };

    let overload = if opts.saturate {
        let space = mar_bench::serve::serve_scene(&cfg).config.space;
        match prove_overload(addr, space) {
            Ok((outstanding, cap)) => {
                eprintln!(
                    "mar-load: OVERLOAD confirmed at {outstanding:.1} B outstanding (cap {cap:.1} B), \
                     recovered after ack"
                );
                Some((outstanding, cap))
            }
            Err(e) => {
                eprintln!("mar-load: saturation probe failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let path = format!("{}/BENCH_wire.json", opts.out_dir);
    if let Err(e) = write_wire_json(&path, mode, addr, &report, overload, check) {
        eprintln!("mar-load: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "mar-load: wrote {path} (transcript fnv64 {:016x})",
        fnv1a64(&report.transcript)
    );
}
