//! `mar-load` — the wire client and workload replayer (DESIGN.md §12.3).
//!
//! [`WireClient`] is the protocol-level client: connect/resume handshake,
//! query with automatic credit `ACK`, and raw frame access for protocol
//! tests. [`run_wire_replay`] drives the exact `mar-bench serve` workload
//! (same scene, same tours, same Algorithm 1 planning) against a live
//! daemon and builds the same transcript, so wire-layer correctness is a
//! byte-for-byte fingerprint comparison against the in-process harness.

use crate::codec::{read_frame, write_frame, ErrCode, Frame, WireError, PROTOCOL_VERSION};
use mar_bench::serve::{serve_scene, session_tour, transcript_row, ServeConfig, TRANSCRIPT_HEADER};
use mar_core::{FramePlanner, LinearSpeedMap, QueryRegion, SmoothedSpeed, SpeedResolutionMap};
use mar_link::LinkConfig;
use mar_workload::{frame_at, Tour};
use std::fmt;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

/// A client-side protocol failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / frame-layer failure.
    Wire(WireError),
    /// The server answered with a typed `ERROR` frame.
    Server {
        /// The decoded error code (`None` if the byte is not a known code).
        code: Option<ErrCode>,
        /// The raw code byte.
        raw_code: u8,
        /// Code-specific detail word.
        detail: u64,
    },
    /// The server sent a frame the protocol does not allow here.
    Unexpected {
        /// What the client was waiting for.
        wanted: &'static str,
        /// The frame that arrived instead.
        got: &'static str,
    },
    /// The server closed the connection while a reply was expected.
    ServerClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Server {
                code,
                raw_code,
                detail,
            } => match code {
                Some(c) => write!(f, "server error: {c} (detail {detail:#x})"),
                None => write!(
                    f,
                    "server error: unknown code {raw_code} (detail {detail:#x})"
                ),
            },
            Self::Unexpected { wanted, got } => {
                write!(f, "protocol violation: wanted {wanted}, got {got}")
            }
            Self::ServerClosed => write!(f, "server closed the connection mid-exchange"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Wire(WireError::Io(e))
    }
}

/// The accounting fields of a `RESULT` frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireResult {
    /// Coefficients served.
    pub coeffs: u64,
    /// Objects whose base mesh was served for the first time.
    pub new_objects: u64,
    /// Payload bytes served (bit-exact `f64`).
    pub bytes: f64,
    /// Index node accesses.
    pub io: u64,
}

/// What a `QUERY` round-trip produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryReply {
    /// The query executed; the result was acked automatically.
    Served(WireResult),
    /// Admission refused: the outbox credit is exhausted. The query was
    /// not executed and can be retried after acking.
    Overloaded {
        /// Unacked payload bytes the server holds against this session.
        outstanding: f64,
        /// The server's outbox capacity.
        cap: f64,
    },
}

/// A protocol-level connection to a `mar-served` daemon.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session: u64,
    token: u64,
    wire_bytes: u64,
}

impl WireClient {
    fn open(addr: SocketAddr) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok((BufReader::new(stream), writer))
    }

    /// Connects and runs the `HELLO`/`WELCOME` handshake.
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let (reader, writer) = Self::open(addr)?;
        let mut client = Self {
            reader,
            writer,
            session: 0,
            token: 0,
            wire_bytes: 0,
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Frame::Welcome { session, token } => {
                client.session = session;
                client.token = token;
                Ok(client)
            }
            other => Err(unexpected("WELCOME", &other)),
        }
    }

    /// Opens a fresh connection and re-attaches to a live session via
    /// `RESUME`. Returns the client plus the server's retained counts.
    pub fn resume(addr: SocketAddr, token: u64) -> Result<(Self, u64, u64), ClientError> {
        let (reader, writer) = Self::open(addr)?;
        let mut client = Self {
            reader,
            writer,
            session: 0,
            token,
            wire_bytes: 0,
        };
        client.send(&Frame::Resume { token })?;
        match client.recv()? {
            Frame::Resumed {
                session,
                retained_coeffs,
                retained_objects,
            } => {
                client.session = session;
                Ok((client, retained_coeffs, retained_objects))
            }
            other => Err(unexpected("RESUMED", &other)),
        }
    }

    /// The server-side session id (the transcript ordinal).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The resume capability for this session.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Total bytes this client has put on / taken off the wire
    /// (length prefixes included).
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Sends one raw frame (protocol tests drive refusal paths with this).
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        self.wire_bytes += write_frame(&mut self.writer, frame)?;
        Ok(())
    }

    /// Receives one raw frame; a close here is [`ClientError::ServerClosed`]
    /// and a server `ERROR` frame surfaces as [`ClientError::Server`].
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(frame) => {
                // Frame length on the wire: 4-byte prefix + payload. The
                // cheap way to recover it is to re-encode — frames are
                // tiny and the codec is deterministic.
                if let Ok(buf) = crate::codec::encode(&frame) {
                    self.wire_bytes += buf.len() as u64;
                }
                if let Frame::Error { code, detail } = frame {
                    return Err(ClientError::Server {
                        code: ErrCode::from_u8(code),
                        raw_code: code,
                        detail,
                    });
                }
                Ok(frame)
            }
            None => Err(ClientError::ServerClosed),
        }
    }

    /// One `QUERY` round-trip. A `RESULT` is acked immediately (full
    /// credit return), so a client using only this method is never
    /// refused; an `OVERLOAD` is surfaced as a typed reply, not an error.
    pub fn query(&mut self, regions: &[QueryRegion]) -> Result<QueryReply, ClientError> {
        self.send_query(regions)?;
        self.recv_result()
    }

    /// Sends a `QUERY` without waiting for the reply — the issue half of
    /// a pipelined exchange. Pair with [`WireClient::recv_result`].
    pub fn send_query(&mut self, regions: &[QueryRegion]) -> Result<(), ClientError> {
        self.send(&Frame::Query {
            regions: regions.to_vec(),
        })
    }

    /// Receives the reply to an in-flight `QUERY` issued with
    /// [`WireClient::send_query`]; a `RESULT` is acked immediately (full
    /// credit return), exactly as [`WireClient::query`] does.
    pub fn recv_result(&mut self) -> Result<QueryReply, ClientError> {
        match self.recv()? {
            Frame::Result {
                coeffs,
                new_objects,
                bytes,
                io,
            } => {
                if bytes > 0.0 {
                    self.send(&Frame::Ack { bytes })?;
                }
                Ok(QueryReply::Served(WireResult {
                    coeffs,
                    new_objects,
                    bytes,
                    io,
                }))
            }
            Frame::Overload { outstanding, cap } => Ok(QueryReply::Overloaded { outstanding, cap }),
            other => Err(unexpected("RESULT|OVERLOAD", &other)),
        }
    }

    /// Releases the session (`BYE`), waits for the server's echo, and
    /// returns the connection's lifetime wire-byte total.
    pub fn bye(mut self) -> Result<u64, ClientError> {
        self.send(&Frame::Bye)?;
        match self.recv()? {
            Frame::Bye => Ok(self.wire_bytes),
            other => Err(unexpected("BYE", &other)),
        }
    }
}

fn unexpected(wanted: &'static str, got: &Frame) -> ClientError {
    ClientError::Unexpected {
        wanted,
        got: got.name(),
    }
}

// ---------------------------------------------------------------------------
// Workload replay
// ---------------------------------------------------------------------------

/// What one wire replay produced — the wire-side mirror of
/// `mar_bench::serve::ServeReport`.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Sessions replayed.
    pub sessions: usize,
    /// Ticks per session.
    pub ticks: usize,
    /// `QUERY` round-trips executed.
    pub queries: u64,
    /// Payload bytes served across all sessions.
    pub bytes: f64,
    /// Coefficients served across all sessions.
    pub coeffs: u64,
    /// Index node accesses across all sessions.
    pub io: u64,
    /// The deterministic transcript — byte-identical to the in-process
    /// harness's for the same [`ServeConfig`].
    pub transcript: String,
    /// Wall-clock round-trip latency of each `QUERY`, in nanoseconds.
    /// Under pipelining this includes queue wait: the clock starts at
    /// issue and stops when the reply is drained.
    pub frame_ns: Vec<u64>,
    /// Total wall-clock time of the replay loop, in seconds.
    pub elapsed_s: f64,
    /// Bytes on the wire, both directions, length prefixes included.
    pub wire_bytes: u64,
    /// Effective pipeline depth the replay ran with (1 = synchronous
    /// round-trips).
    pub pipeline: usize,
}

impl ReplayReport {
    /// Queries per second of wall-clock replay time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.queries as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// The `q`-quantile (0..=1) of per-query round-trip latency, in
    /// nanoseconds.
    pub fn frame_latency_ns(&self, q: f64) -> u64 {
        if self.frame_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.frame_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

struct ReplaySession {
    client: WireClient,
    planner: FramePlanner,
    smooth: SmoothedSpeed,
    tour: Tour,
}

/// One issued-but-undrained `QUERY` in the pipelined replay.
struct InFlight {
    /// Session index (transcript column `session`).
    k: usize,
    /// Tick the query belongs to.
    tick: usize,
    /// The planned viewport frame, needed for `FramePlanner::commit`
    /// once the reply arrives.
    frame: mar_geom::Rect2,
    /// The band the frame was planned at.
    band: mar_mesh::ResolutionBand,
    /// Smoothed speed at issue time (drives the link-time column).
    speed: f64,
    /// Issue timestamp for the latency report.
    sent: std::time::Instant,
}

/// Replays the `mar-bench serve` workload for `cfg` against the daemon at
/// `addr` with synchronous round-trips. Equivalent to
/// [`run_wire_replay_pipelined`] at depth 1.
pub fn run_wire_replay(addr: SocketAddr, cfg: &ServeConfig) -> Result<ReplayReport, ClientError> {
    run_wire_replay_pipelined(addr, cfg, 1)
}

/// Replays the `mar-bench serve` workload keeping up to `depth` `QUERY`
/// frames in flight across the session connections.
///
/// Issue order is exactly the synchronous replay's: tick-major, sessions
/// in id order within a tick. Replies are drained in issue order (the
/// pipeline is a FIFO), each drain acking its payload and appending its
/// transcript row — so the transcript is byte-identical to the
/// synchronous replay's and to the in-process harness's, at every depth.
///
/// Two invariants make pipelining unobservable to the daemon's admission
/// control and to the workload semantics:
///
/// - In-flight queries always belong to *distinct sessions* (the FIFO is
///   drained before a session issues again), so each session still has
///   at most one unacked `RESULT` outstanding — admission can never
///   refuse the replay, same as the synchronous loop.
/// - A session's tick `t+1` plan depends on its tick `t` commit, so the
///   effective depth is capped at the session count; `depth` beyond that
///   only measures deeper cross-session windows, which do not exist in
///   tick-major order.
pub fn run_wire_replay_pipelined(
    addr: SocketAddr,
    cfg: &ServeConfig,
    depth: usize,
) -> Result<ReplayReport, ClientError> {
    let depth = depth.clamp(1, cfg.sessions.max(1));
    let scene = serve_scene(cfg);
    let space = scene.config.space;
    let link = LinkConfig::paper();
    let map = LinearSpeedMap;

    let mut sessions: Vec<ReplaySession> = Vec::with_capacity(cfg.sessions);
    for k in 0..cfg.sessions {
        sessions.push(ReplaySession {
            client: WireClient::connect(addr)?,
            planner: FramePlanner::new(),
            smooth: SmoothedSpeed::default(),
            tour: session_tour(cfg, space, k),
        });
    }

    let mut transcript = String::from(TRANSCRIPT_HEADER);
    let mut frame_ns = Vec::with_capacity(cfg.sessions * cfg.ticks);
    let mut bytes = 0.0;
    let mut coeffs = 0u64;
    let mut io = 0u64;
    let mut pending: std::collections::VecDeque<InFlight> =
        std::collections::VecDeque::with_capacity(depth);

    // Drains the oldest in-flight query: receive, ack (inside
    // `recv_result`), commit the session's planner, append the
    // transcript row.
    let drain_one = |sessions: &mut [ReplaySession],
                     pending: &mut std::collections::VecDeque<InFlight>,
                     transcript: &mut String,
                     frame_ns: &mut Vec<u64>,
                     bytes: &mut f64,
                     coeffs: &mut u64,
                     io: &mut u64|
     -> Result<(), ClientError> {
        let Some(q) = pending.pop_front() else {
            return Ok(());
        };
        let s = &mut sessions[q.k];
        let r = match s.client.recv_result()? {
            QueryReply::Served(r) => r,
            // Every result is acked on drain and in-flight queries are on
            // distinct sessions, so admission can never refuse the replay
            // (the overshoot-by-one rule); an OVERLOAD here is a daemon bug.
            QueryReply::Overloaded { .. } => {
                return Err(ClientError::Unexpected {
                    wanted: "RESULT",
                    got: "OVERLOAD",
                })
            }
        };
        frame_ns.push(q.sent.elapsed().as_nanos() as u64);
        s.planner.commit(q.frame, q.band);
        let response_s = if r.bytes > 0.0 {
            link.request_time(r.bytes, q.speed)
        } else {
            0.0
        };
        transcript.push_str(&transcript_row(
            q.tick,
            q.k,
            r.coeffs,
            r.new_objects,
            r.bytes,
            r.io,
            response_s,
        ));
        *bytes += r.bytes;
        *coeffs += r.coeffs;
        *io += r.io;
        Ok(())
    };

    // mar-lint: allow(D003) — wall-clock throughput/latency measurement is the load generator's job; timings never enter the transcript
    let t0 = std::time::Instant::now();
    for tick in 0..cfg.ticks {
        for k in 0..sessions.len() {
            if pending.len() == depth {
                drain_one(
                    &mut sessions,
                    &mut pending,
                    &mut transcript,
                    &mut frame_ns,
                    &mut bytes,
                    &mut coeffs,
                    &mut io,
                )?;
            }
            let s = &mut sessions[k];
            let sample = s.tour.samples[tick];
            let frame = frame_at(&space, &sample.pos, cfg.frame_frac);
            let speed = s.smooth.update(sample.speed);
            let band = map.band_for(speed);
            let regions = s.planner.plan(&frame, band);
            // mar-lint: allow(D003) — per-query latency for the report only
            let sent = std::time::Instant::now();
            s.client.send_query(&regions)?;
            pending.push_back(InFlight {
                k,
                tick,
                frame,
                band,
                speed,
                sent,
            });
        }
    }
    while !pending.is_empty() {
        drain_one(
            &mut sessions,
            &mut pending,
            &mut transcript,
            &mut frame_ns,
            &mut bytes,
            &mut coeffs,
            &mut io,
        )?;
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut wire_bytes = 0u64;
    for s in sessions {
        wire_bytes += s.client.bye()?;
    }

    Ok(ReplayReport {
        sessions: cfg.sessions,
        ticks: cfg.ticks,
        queries: (cfg.sessions * cfg.ticks) as u64,
        bytes,
        coeffs,
        io,
        transcript,
        frame_ns,
        elapsed_s,
        wire_bytes,
        pipeline: depth,
    })
}
