//! # mar-served — the retrieval server on a real wire
//!
//! Everything below `crates/core` treats the client/server boundary as a
//! function call. This crate puts the paper's §III serving setting on an
//! actual TCP socket (DESIGN.md §12):
//!
//! * [`codec`] — the compact little-endian, length-prefixed binary frame
//!   grammar (HELLO/QUERY/RESULT/RESUME/ACK/OVERLOAD/…) and a decoder
//!   that maps every malformed input to a typed error, never a panic.
//! * [`daemon`] — `mar-served`: a std-only thread-per-connection TCP
//!   daemon over the lock-free shared [`mar_core::Server`], with
//!   credit-based per-session backpressure (a saturated outbox returns a
//!   typed `OVERLOAD` frame instead of queueing unboundedly) and session
//!   resumption via the unguessable resume tokens of
//!   [`mar_core::Server::session_token`].
//! * [`client`] — `mar-load`: a wire client replaying the exact
//!   `mar-bench serve` workload tours against a live daemon. Its loopback
//!   transcript is byte-identical to the in-process harness for the same
//!   seed, so wire-layer correctness reduces to a fingerprint comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod daemon;

pub use client::{
    run_wire_replay, run_wire_replay_pipelined, ClientError, QueryReply, ReplayReport, WireClient,
    WireResult,
};
pub use codec::{
    decode, encode, read_frame, write_frame, DecodeError, ErrCode, Frame, WireError, MAX_PAYLOAD,
    PROTOCOL_VERSION,
};
pub use daemon::{spawn_daemon, DaemonConfig, DaemonHandle, DaemonStats, DEFAULT_OUTBOX_CAP};
