//! `mar-served` — the thread-per-connection TCP daemon (DESIGN.md §12.2).
//!
//! Every accepted connection gets its own thread over one shared
//! [`Server`] — the core is lock-free for queries and 16-way striped for
//! session state, so connection threads never serialize on each other.
//!
//! **Backpressure is explicit and deterministic.** Each *session* (not
//! each connection) carries a ledger of payload bytes served but not yet
//! `ACK`ed (credit-based flow control, independent of OS socket
//! buffering). The ledger lives in daemon-shared state keyed by session
//! id, so it **survives transport drops**: a client cannot zero its debt
//! by dropping the socket and `RESUME`ing on a fresh connection. A
//! `QUERY`/`BLOCK` that arrives while `outstanding >= cap` is refused
//! with a typed `OVERLOAD` frame *before* touching the session filter, so
//! a refused query is exactly-once safe to retry. Because admission is
//! checked before execution, one query may overshoot the cap — which
//! also means a client that acks every `RESULT` can never be refused.
//!
//! **Transport drops are not session drops.** A connection that
//! disappears without `BYE` leaves its session (and server-side filter)
//! live; the client re-attaches on a fresh connection with `RESUME` and
//! the unguessable token from `WELCOME`. Only `BYE` releases the session.
//! Attachment is exclusive: while one connection drives a session, a
//! `RESUME` for it — even with the valid token — is refused with
//! `ERROR(SessionBusy)`, so two connections can never interleave frames
//! against one filter/ledger.

use crate::codec::{read_frame, write_frame, DecodeError, ErrCode, Frame, WireError};
use mar_core::{Server, SessionError};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Default per-session outbox capacity: unacked payload bytes a session
/// may have in flight before `QUERY`/`BLOCK` admission returns `OVERLOAD`.
pub const DEFAULT_OUTBOX_CAP: f64 = 64.0 * 1024.0;

/// Daemon tunables.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Per-session outbox capacity in payload bytes.
    pub outbox_cap: f64,
    /// Stop accepting after this many connections and drain; `None`
    /// serves forever (the CLI default).
    pub max_conns: Option<usize>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            outbox_cap: DEFAULT_OUTBOX_CAP,
            max_conns: None,
        }
    }
}

/// What the daemon did over its lifetime (returned by
/// [`DaemonHandle::join`] when `max_conns` bounds the run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames read from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// `OVERLOAD` refusals issued.
    pub overloads: u64,
    /// `ERROR` frames issued.
    pub errors: u64,
}

impl DaemonStats {
    fn absorb(&mut self, conn: &DaemonStats) {
        self.frames_in += conn.frames_in;
        self.frames_out += conn.frames_out;
        self.overloads += conn.overloads;
        self.errors += conn.errors;
    }
}

/// A running daemon: the bound address plus the acceptor's join handle.
#[derive(Debug)]
pub struct DaemonHandle {
    /// The address the daemon is listening on (resolves `--port 0`).
    pub addr: SocketAddr,
    thread: JoinHandle<DaemonStats>,
}

impl DaemonHandle {
    /// Waits for the acceptor to finish (it only does when
    /// [`DaemonConfig::max_conns`] bounds the run) and returns its stats.
    pub fn join(self) -> DaemonStats {
        self.thread.join().unwrap_or_default()
    }
}

/// Spawns the accept loop on `listener`, serving `server`. Returns
/// immediately; the daemon runs until `max_conns` connections have been
/// served (or forever).
pub fn spawn_daemon(
    server: Arc<Server>,
    listener: TcpListener,
    cfg: DaemonConfig,
) -> std::io::Result<DaemonHandle> {
    let addr = listener.local_addr()?;
    let thread = std::thread::Builder::new()
        .name("mar-served-accept".to_string())
        .spawn(move || accept_loop(&server, &listener, cfg))?;
    Ok(DaemonHandle { addr, thread })
}

/// Per-session wire state shared across connections. Unlike `Conn` it
/// survives a transport drop: the unacked-credit ledger follows the
/// *session*, and `attached` makes attachment exclusive. Created by
/// `HELLO`, released by `BYE`.
#[derive(Debug, Clone, Copy, Default)]
struct WireSession {
    /// Served-but-unacked payload bytes (the `OVERLOAD` credit ledger).
    outstanding: f64,
    /// Whether a live connection currently drives this session.
    attached: bool,
}

/// Session id → wire state. A `BTreeMap` for the workspace determinism
/// discipline (D001); it is keyed-access only, never iterated.
type Ledgers = Mutex<BTreeMap<u64, WireSession>>;

fn accept_loop(server: &Arc<Server>, listener: &TcpListener, cfg: DaemonConfig) -> DaemonStats {
    let mut stats = DaemonStats::default();
    let mut workers: Vec<JoinHandle<DaemonStats>> = Vec::new();
    let ledgers: Arc<Ledgers> = Arc::new(Mutex::new(BTreeMap::new()));
    for conn in listener.incoming() {
        let Ok(stream) = conn else {
            // Transient accept failure (peer vanished between SYN and
            // accept); keep serving.
            continue;
        };
        // Reap finished connection threads as we go: in serve-forever
        // mode (`max_conns: None`) the accept loop never exits, so
        // deferring every join to the end would grow one dead JoinHandle
        // per connection ever served.
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                if let Ok(done) = workers.swap_remove(i).join() {
                    stats.absorb(&done);
                }
            } else {
                i += 1;
            }
        }
        stats.connections += 1;
        let server = Arc::clone(server);
        let ledgers_for_conn = Arc::clone(&ledgers);
        let cap = cfg.outbox_cap;
        let spawned = std::thread::Builder::new()
            .name(format!("mar-served-conn-{}", stats.connections))
            .spawn(move || serve_conn(&server, &ledgers_for_conn, stream, cap));
        if let Ok(h) = spawned {
            workers.push(h);
        }
        if cfg.max_conns.is_some_and(|m| stats.connections >= m as u64) {
            break;
        }
    }
    for h in workers {
        if let Ok(conn) = h.join() {
            stats.absorb(&conn);
        }
    }
    stats
}

/// Per-connection protocol state machine. Returns this connection's
/// share of the daemon stats; every exit path leaves the shared server
/// consistent (a dropped connection keeps its session resumable, and
/// detaches it so a later `RESUME` can bind).
fn serve_conn(server: &Server, ledgers: &Ledgers, stream: TcpStream, cap: f64) -> DaemonStats {
    let mut stats = DaemonStats::default();
    // Request/response protocol: without NODELAY every reply would sit
    // out a delayed-ack window.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return stats;
    };
    let mut reader = BufReader::new(stream);
    let mut conn = Conn {
        writer: write_half,
        session: None,
        ledgers,
        cap,
        stats: &mut stats,
    };
    loop {
        match read_frame(&mut reader) {
            // Clean close at a frame boundary: the session (if any)
            // stays live for RESUME on a later connection.
            Ok(None) => break,
            Ok(Some(frame)) => {
                conn.stats.frames_in += 1;
                if !conn.handle(server, frame) {
                    break;
                }
            }
            // The framing is still intact after an unknown opcode (the
            // length prefix was honoured), so report and keep serving.
            Err(WireError::Decode(DecodeError::UnknownOpcode(op))) => {
                conn.error(ErrCode::UnknownOpcode, u64::from(op));
            }
            // Any other decode failure means the stream can no longer be
            // re-synchronised: report best-effort and close.
            Err(WireError::Decode(e)) => {
                conn.error(ErrCode::Malformed, decode_detail(&e));
                break;
            }
            // Transport failure or mid-frame disconnect: nothing to send.
            Err(WireError::Io(_) | WireError::Disconnected { .. }) => break,
        }
    }
    // Transport drop without BYE: detach so a later RESUME can bind, but
    // keep the ledger entry — the unacked credit must survive the
    // reconnect (dropping the socket is not a way to zero one's debt).
    if let Some(session) = conn.session {
        // mar-lint: allow(D004) — poisoning implies another connection thread panicked; propagate
        let mut map = ledgers.lock().expect("wire-session ledger poisoned");
        if let Some(ws) = map.get_mut(&session) {
            ws.attached = false;
        }
    }
    stats
}

/// Folds a decode error into the `ERROR` frame's `detail` word.
fn decode_detail(e: &DecodeError) -> u64 {
    match e {
        DecodeError::EmptyPayload => 0,
        DecodeError::Oversized { len, .. } => u64::from(*len),
        DecodeError::UnknownOpcode(op) => u64::from(*op),
        DecodeError::BadLength { opcode, .. } => u64::from(*opcode),
    }
}

struct Conn<'a> {
    writer: TcpStream,
    session: Option<u64>,
    ledgers: &'a Ledgers,
    cap: f64,
    stats: &'a mut DaemonStats,
}

impl Conn<'_> {
    /// Sends `frame`; a send failure is treated like a disconnect (the
    /// read loop will observe it next iteration at the latest).
    fn send(&mut self, frame: &Frame) {
        if write_frame(&mut self.writer, frame).is_ok() {
            self.stats.frames_out += 1;
        }
    }

    fn error(&mut self, code: ErrCode, detail: u64) {
        self.stats.errors += 1;
        self.send(&Frame::Error {
            code: code as u8,
            detail,
        });
    }

    /// Runs `f` on the session's shared wire state (no-op when the
    /// session has no ledger entry, which only a daemon bug could cause).
    fn with_ledger<T>(&self, session: u64, f: impl FnOnce(&mut WireSession) -> T) -> Option<T> {
        // mar-lint: allow(D004) — poisoning implies another connection thread panicked; propagate
        let mut map = self.ledgers.lock().expect("wire-session ledger poisoned");
        map.get_mut(&session).map(f)
    }

    /// Handles one frame; `false` ends the connection.
    fn handle(&mut self, server: &Server, frame: Frame) -> bool {
        match frame {
            Frame::Hello { version } => {
                if version != crate::codec::PROTOCOL_VERSION {
                    self.error(ErrCode::BadVersion, u64::from(version));
                    return false;
                }
                if self.session.is_some() {
                    self.error(ErrCode::AlreadyConnected, 0);
                    return true;
                }
                let (session, token) = server.connect_with_token();
                {
                    // mar-lint: allow(D004) — poisoning implies another connection thread panicked; propagate
                    let mut map = self.ledgers.lock().expect("wire-session ledger poisoned");
                    map.insert(
                        session,
                        WireSession {
                            outstanding: 0.0,
                            attached: true,
                        },
                    );
                }
                self.session = Some(session);
                self.send(&Frame::Welcome { session, token });
                true
            }
            Frame::Resume { token } => {
                if self.session.is_some() {
                    self.error(ErrCode::AlreadyConnected, 0);
                    return true;
                }
                match server.resume(token) {
                    Ok(info) => {
                        // Attachment is exclusive and the ledger survives
                        // the reconnect: RESUME binds this connection to
                        // the session's *existing* wire state (unacked
                        // credit intact), and is refused while another
                        // live connection holds it.
                        let attached = {
                            let mut map = self
                                .ledgers
                                .lock()
                                // mar-lint: allow(D004) — poisoning implies another connection thread panicked; propagate
                                .expect("wire-session ledger poisoned");
                            let ws = map.entry(info.session).or_default();
                            if ws.attached {
                                false
                            } else {
                                ws.attached = true;
                                true
                            }
                        };
                        if !attached {
                            self.error(ErrCode::SessionBusy, info.session);
                            return true;
                        }
                        self.session = Some(info.session);
                        self.send(&Frame::Resumed {
                            session: info.session,
                            retained_coeffs: info.retained_coeffs as u64,
                            retained_objects: info.retained_objects as u64,
                        });
                    }
                    Err(SessionError::UnknownToken(t)) => self.error(ErrCode::UnknownToken, t),
                    Err(SessionError::UnknownSession(s)) => self.error(ErrCode::UnknownSession, s),
                }
                true
            }
            Frame::Query { regions } => {
                let Some(session) = self.session else {
                    self.error(ErrCode::NotConnected, 0);
                    return true;
                };
                if !self.admit(session) {
                    return true;
                }
                match server.query(session, &regions) {
                    Ok(r) => {
                        self.with_ledger(session, |ws| ws.outstanding += r.bytes);
                        self.send(&Frame::Result {
                            coeffs: r.coeffs as u64,
                            new_objects: r.new_objects as u64,
                            bytes: r.bytes,
                            io: r.io,
                        });
                    }
                    Err(SessionError::UnknownSession(s)) => self.error(ErrCode::UnknownSession, s),
                    Err(SessionError::UnknownToken(t)) => self.error(ErrCode::UnknownToken, t),
                }
                true
            }
            Frame::Block { region, band } => {
                let Some(session) = self.session else {
                    self.error(ErrCode::NotConnected, 0);
                    return true;
                };
                if !self.admit(session) {
                    return true;
                }
                match server.fetch_block(session, &region, band) {
                    Ok(r) => {
                        self.with_ledger(session, |ws| ws.outstanding += r.bytes);
                        self.send(&Frame::Result {
                            coeffs: r.coeffs as u64,
                            new_objects: r.new_objects as u64,
                            bytes: r.bytes,
                            io: r.io,
                        });
                    }
                    Err(SessionError::UnknownSession(s)) => self.error(ErrCode::UnknownSession, s),
                    Err(SessionError::UnknownToken(t)) => self.error(ErrCode::UnknownToken, t),
                }
                true
            }
            Frame::Ack { bytes } => {
                let Some(session) = self.session else {
                    self.error(ErrCode::NotConnected, 0);
                    return true;
                };
                // Hostile acks (NaN, negative, over-credit) cannot drive
                // the ledger negative.
                if bytes.is_finite() && bytes > 0.0 {
                    self.with_ledger(session, |ws| {
                        ws.outstanding = (ws.outstanding - bytes).max(0.0);
                    });
                }
                true
            }
            Frame::Bye => {
                if let Some(session) = self.session.take() {
                    // The session may already be gone if the peer BYEs
                    // twice in a pipelined burst; releasing is idempotent
                    // from the connection's point of view.
                    let _ = server.disconnect(session);
                    // BYE (unlike a transport drop) ends the session for
                    // good, so its wire state goes with it.
                    // mar-lint: allow(D004) — poisoning implies another connection thread panicked; propagate
                    let mut map = self.ledgers.lock().expect("wire-session ledger poisoned");
                    map.remove(&session);
                }
                self.send(&Frame::Bye);
                false
            }
            // Server-role frames arriving at the server are out of role.
            f @ (Frame::Welcome { .. }
            | Frame::Result { .. }
            | Frame::Resumed { .. }
            | Frame::Overload { .. }
            | Frame::Error { .. }) => {
                self.error(ErrCode::Malformed, u64::from(f.opcode()));
                true
            }
        }
    }

    /// Admission check: refuses with `OVERLOAD` when the session's
    /// unacked payload ledger has reached the cap. Checked *before*
    /// executing the query, so a refusal leaves the session filter
    /// untouched. The ledger lives with the session, not the connection:
    /// dropping the socket and resuming does not reset it.
    fn admit(&mut self, session: u64) -> bool {
        let outstanding = self
            .with_ledger(session, |ws| ws.outstanding)
            .unwrap_or(0.0);
        if outstanding >= self.cap {
            self.stats.overloads += 1;
            self.send(&Frame::Overload {
                outstanding,
                cap: self.cap,
            });
            return false;
        }
        true
    }
}
