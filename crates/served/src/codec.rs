//! The wire frame grammar (DESIGN.md §12.1).
//!
//! Every frame is `len: u32 LE` followed by `len` payload bytes; the
//! payload is `opcode: u8` followed by the opcode's fixed-layout body.
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern (`f64::to_bits`), so served byte counts cross the wire
//! bit-exactly and the loopback transcript can be byte-identical to the
//! in-process harness.
//!
//! Decoding is total: any input — truncated, oversized, unknown opcode,
//! wrong body length — maps to a typed [`DecodeError`] / [`WireError`],
//! never a panic. Geometry is reconstructed by struct literal (the fields
//! are public), deliberately bypassing the validating constructors:
//! an adversarial NaN or inverted rectangle must travel as-is and fall
//! out of the index as an empty result, not trip a debug assertion in
//! the server.

use mar_core::QueryRegion;
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use std::fmt;
use std::io::{Read, Write};

/// Protocol version carried by `HELLO`. A daemon rejects other versions
/// with `ERROR(BadVersion)`.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame payload (opcode + body). A length prefix above
/// this is rejected before any allocation — a 4-byte prefix must not let
/// a peer command a 4 GiB buffer.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Bytes of one encoded query region: 4 × `f64` rectangle corners plus
/// the 2 × `f64` resolution band.
const REGION_BYTES: usize = 6 * 8;

/// One protocol frame. The `→` direction is informative; the decoder
/// accepts any opcode anywhere and the endpoint rejects out-of-role
/// frames with a typed `ERROR`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// client → server: open a new session. Body: protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// server → client: session opened. Body: session id + resume token.
    Welcome {
        /// Sequential server-side session id (transcript ordinal).
        session: u64,
        /// The unguessable resume capability for this session.
        token: u64,
    },
    /// client → server: execute Algorithm 1's sub-queries for one frame.
    Query {
        /// The planned sub-queries (region + band each).
        regions: Vec<QueryRegion>,
    },
    /// client → server: fetch one block-granularity region.
    Block {
        /// The block rectangle.
        region: Rect2,
        /// The resolution band to fetch it at.
        band: ResolutionBand,
    },
    /// server → client: the session-filtered outcome of a `QUERY`/`BLOCK`.
    Result {
        /// Coefficients served.
        coeffs: u64,
        /// Objects whose base mesh was served for the first time.
        new_objects: u64,
        /// Payload bytes served (exact `f64`, also the credit debit).
        bytes: f64,
        /// Index node accesses.
        io: u64,
    },
    /// client → server: re-attach to a live session after a transport
    /// drop. Body: the resume token from `WELCOME`.
    Resume {
        /// The resume capability.
        token: u64,
    },
    /// server → client: resumption accepted; the server-side filter was
    /// retained.
    Resumed {
        /// The re-attached session id.
        session: u64,
        /// Coefficients the filter already holds.
        retained_coeffs: u64,
        /// Objects whose base mesh was already sent.
        retained_objects: u64,
    },
    /// client → server: the client consumed `bytes` of served payload;
    /// return that much outbox credit.
    Ack {
        /// Payload bytes consumed (exact `f64` from `RESULT`).
        bytes: f64,
    },
    /// server → client: admission refused — the session's unacked payload
    /// reached the outbox cap. The query was **not** executed; the filter
    /// is untouched, so the same query can be retried after `ACK`.
    Overload {
        /// Unacked payload bytes outstanding.
        outstanding: f64,
        /// The configured outbox capacity.
        cap: f64,
    },
    /// server → client: a typed protocol error.
    Error {
        /// The [`ErrCode`].
        code: u8,
        /// Code-specific detail (offending token, version, opcode, …).
        detail: u64,
    },
    /// Session goodbye. client → server releases the session and its
    /// filter state; the server echoes `BYE` and closes.
    Bye,
}

impl Frame {
    /// The frame's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Welcome { .. } => 2,
            Frame::Query { .. } => 3,
            Frame::Block { .. } => 4,
            Frame::Result { .. } => 5,
            Frame::Resume { .. } => 6,
            Frame::Resumed { .. } => 7,
            Frame::Ack { .. } => 8,
            Frame::Overload { .. } => 9,
            Frame::Error { .. } => 10,
            Frame::Bye => 11,
        }
    }

    /// The frame's name, for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "HELLO",
            Frame::Welcome { .. } => "WELCOME",
            Frame::Query { .. } => "QUERY",
            Frame::Block { .. } => "BLOCK",
            Frame::Result { .. } => "RESULT",
            Frame::Resume { .. } => "RESUME",
            Frame::Resumed { .. } => "RESUMED",
            Frame::Ack { .. } => "ACK",
            Frame::Overload { .. } => "OVERLOAD",
            Frame::Error { .. } => "ERROR",
            Frame::Bye => "BYE",
        }
    }
}

/// Typed protocol error codes carried by `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// A query/block referenced a session the server does not hold.
    UnknownSession = 1,
    /// `RESUME` carried a token no live session derives to.
    UnknownToken = 2,
    /// The peer sent a frame that is malformed or out of role here.
    Malformed = 3,
    /// `HELLO` carried an unsupported protocol version.
    BadVersion = 4,
    /// The opcode byte is not part of the grammar.
    UnknownOpcode = 5,
    /// `QUERY`/`BLOCK`/`ACK` before `HELLO`/`RESUME` bound a session.
    NotConnected = 6,
    /// `HELLO`/`RESUME` on a connection that already has a session.
    AlreadyConnected = 7,
    /// `RESUME` with a valid token for a session that is currently
    /// attached to another live connection: one connection per session.
    SessionBusy = 8,
}

impl ErrCode {
    /// Decodes an `ERROR` frame's code byte.
    pub fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::UnknownSession),
            2 => Some(Self::UnknownToken),
            3 => Some(Self::Malformed),
            4 => Some(Self::BadVersion),
            5 => Some(Self::UnknownOpcode),
            6 => Some(Self::NotConnected),
            7 => Some(Self::AlreadyConnected),
            8 => Some(Self::SessionBusy),
            _ => None,
        }
    }
}

impl fmt::Display for ErrCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::UnknownSession => "unknown session",
            Self::UnknownToken => "unknown resume token",
            Self::Malformed => "malformed or out-of-role frame",
            Self::BadVersion => "unsupported protocol version",
            Self::UnknownOpcode => "unknown opcode",
            Self::NotConnected => "no session bound to this connection",
            Self::AlreadyConnected => "connection already has a session",
            Self::SessionBusy => "session already attached to a live connection",
        };
        f.write_str(s)
    }
}

/// Why a fully-read payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The length prefix was zero: a payload needs at least an opcode.
    EmptyPayload,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// The opcode byte is not part of the grammar.
    UnknownOpcode(u8),
    /// The body is shorter or longer than the opcode's layout requires.
    BadLength {
        /// The frame's opcode.
        opcode: u8,
        /// Bytes the opcode's body layout requires.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyPayload => write!(f, "zero-length frame payload"),
            Self::Oversized { len, max } => {
                write!(f, "length prefix {len} exceeds the {max}-byte cap")
            }
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            Self::BadLength {
                opcode,
                expected,
                got,
            } => write!(
                f,
                "opcode {opcode}: body is {got} bytes, layout requires {expected}"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A frame-layer transport or decode failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer closed the connection mid-frame (a clean close at a
    /// frame boundary is `Ok(None)` from [`read_frame`], not an error).
    Disconnected {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The frame arrived whole but does not parse.
    Decode(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "socket error: {e}"),
            Self::Disconnected { context } => {
                write!(f, "peer disconnected mid-frame (reading {context})")
            }
            Self::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_region(buf: &mut Vec<u8>, region: &Rect2, band: &ResolutionBand) {
    put_f64(buf, region.lo[0]);
    put_f64(buf, region.lo[1]);
    put_f64(buf, region.hi[0]);
    put_f64(buf, region.hi[1]);
    put_f64(buf, band.w_min);
    put_f64(buf, band.w_max);
}

/// Encodes a frame, length prefix included. Fails only when the payload
/// would exceed [`MAX_PAYLOAD`] (a `QUERY` with tens of thousands of
/// regions — Algorithm 1 plans at most a handful).
pub fn encode(frame: &Frame) -> Result<Vec<u8>, DecodeError> {
    let mut buf = vec![0u8; 4]; // length prefix back-patched below
    buf.push(frame.opcode());
    match frame {
        Frame::Hello { version } => put_u32(&mut buf, *version),
        Frame::Welcome { session, token } => {
            put_u64(&mut buf, *session);
            put_u64(&mut buf, *token);
        }
        Frame::Query { regions } => {
            put_u32(&mut buf, regions.len() as u32);
            for q in regions {
                put_region(&mut buf, &q.region, &q.band);
            }
        }
        Frame::Block { region, band } => put_region(&mut buf, region, band),
        Frame::Result {
            coeffs,
            new_objects,
            bytes,
            io,
        } => {
            put_u64(&mut buf, *coeffs);
            put_u64(&mut buf, *new_objects);
            put_f64(&mut buf, *bytes);
            put_u64(&mut buf, *io);
        }
        Frame::Resume { token } => put_u64(&mut buf, *token),
        Frame::Resumed {
            session,
            retained_coeffs,
            retained_objects,
        } => {
            put_u64(&mut buf, *session);
            put_u64(&mut buf, *retained_coeffs);
            put_u64(&mut buf, *retained_objects);
        }
        Frame::Ack { bytes } => put_f64(&mut buf, *bytes),
        Frame::Overload { outstanding, cap } => {
            put_f64(&mut buf, *outstanding);
            put_f64(&mut buf, *cap);
        }
        Frame::Error { code, detail } => {
            buf.push(*code);
            put_u64(&mut buf, *detail);
        }
        Frame::Bye => {}
    }
    let payload = buf.len() - 4;
    if payload > MAX_PAYLOAD as usize {
        return Err(DecodeError::Oversized {
            len: payload as u32,
            max: MAX_PAYLOAD,
        });
    }
    let len = (payload as u32).to_le_bytes();
    buf[..4].copy_from_slice(&len);
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over a frame body. Every read
/// either succeeds or reports how many bytes the layout wanted — no
/// slice indexing that could panic on adversarial input.
struct Body<'a> {
    rest: &'a [u8],
    opcode: u8,
    len: usize,
}

impl<'a> Body<'a> {
    fn new(opcode: u8, rest: &'a [u8]) -> Self {
        Self {
            rest,
            opcode,
            len: rest.len(),
        }
    }

    fn short(&self, needed: usize) -> DecodeError {
        DecodeError::BadLength {
            opcode: self.opcode,
            expected: self.len - self.rest.len() + needed,
            got: self.len,
        }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        if self.rest.len() < N {
            return Err(self.short(N));
        }
        let (head, tail) = self.rest.split_at(N);
        self.rest = tail;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn region(&mut self) -> Result<(Rect2, ResolutionBand), DecodeError> {
        let (lx, ly) = (self.f64()?, self.f64()?);
        let (hx, hy) = (self.f64()?, self.f64()?);
        let (w_min, w_max) = (self.f64()?, self.f64()?);
        // Struct literals on purpose: `Rect2::from_corners` debug-asserts
        // ordering and `ResolutionBand::new` clamps/swaps — a hostile
        // frame must reach the index verbatim and fall out empty.
        let region = Rect2 {
            lo: Point2::new([lx, ly]),
            hi: Point2::new([hx, hy]),
        };
        Ok((region, ResolutionBand { w_min, w_max }))
    }

    /// The body must be fully consumed; trailing bytes are a layout
    /// mismatch (frames never carry padding).
    fn finish(self, frame: Frame) -> Result<Frame, DecodeError> {
        if self.rest.is_empty() {
            Ok(frame)
        } else {
            Err(DecodeError::BadLength {
                opcode: self.opcode,
                expected: self.len - self.rest.len(),
                got: self.len,
            })
        }
    }
}

/// Decodes one payload (opcode byte + body, the length prefix already
/// stripped and validated by [`read_frame`]).
pub fn decode(payload: &[u8]) -> Result<Frame, DecodeError> {
    let (&opcode, rest) = payload.split_first().ok_or(DecodeError::EmptyPayload)?;
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(DecodeError::Oversized {
            len: payload.len() as u32,
            max: MAX_PAYLOAD,
        });
    }
    let mut b = Body::new(opcode, rest);
    let frame = match opcode {
        1 => Frame::Hello { version: b.u32()? },
        2 => Frame::Welcome {
            session: b.u64()?,
            token: b.u64()?,
        },
        3 => {
            let count = b.u32()? as usize;
            // The remaining body length must match the count exactly, so
            // a hostile count cannot command a huge allocation: the
            // payload is already capped at MAX_PAYLOAD.
            if b.rest.len() != count * REGION_BYTES {
                return Err(DecodeError::BadLength {
                    opcode,
                    expected: 4 + count * REGION_BYTES,
                    got: rest.len(),
                });
            }
            let mut regions = Vec::with_capacity(count);
            for _ in 0..count {
                let (region, band) = b.region()?;
                regions.push(QueryRegion { region, band });
            }
            Frame::Query { regions }
        }
        4 => {
            let (region, band) = b.region()?;
            Frame::Block { region, band }
        }
        5 => Frame::Result {
            coeffs: b.u64()?,
            new_objects: b.u64()?,
            bytes: b.f64()?,
            io: b.u64()?,
        },
        6 => Frame::Resume { token: b.u64()? },
        7 => Frame::Resumed {
            session: b.u64()?,
            retained_coeffs: b.u64()?,
            retained_objects: b.u64()?,
        },
        8 => Frame::Ack { bytes: b.f64()? },
        9 => Frame::Overload {
            outstanding: b.f64()?,
            cap: b.f64()?,
        },
        10 => Frame::Error {
            code: b.u8()?,
            detail: b.u64()?,
        },
        11 => Frame::Bye,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    b.finish(frame)
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

enum Fill {
    Full,
    Eof,
    Partial,
}

/// Fills `buf` from `r`; distinguishes "EOF before any byte" from "EOF
/// mid-buffer" — the former is a clean close at a frame boundary.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<Fill> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 { Fill::Eof } else { Fill::Partial });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// Reads one frame. `Ok(None)` is a clean close at a frame boundary;
/// every malformed or truncated input is a typed [`WireError`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 4];
    match fill(r, &mut prefix)? {
        Fill::Eof => return Ok(None),
        Fill::Partial => {
            return Err(WireError::Disconnected {
                context: "length prefix",
            })
        }
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Err(DecodeError::EmptyPayload.into());
    }
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversized {
            len,
            max: MAX_PAYLOAD,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    match fill(r, &mut payload)? {
        Fill::Full => {}
        Fill::Eof | Fill::Partial => {
            return Err(WireError::Disconnected {
                context: "frame payload",
            })
        }
    }
    Ok(Some(decode(&payload)?))
}

/// Encodes and writes one frame; returns the bytes put on the wire.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<u64, WireError> {
    let buf = encode(frame)?;
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len() as u64)
}
