//! Concurrency static analysis — rules **D006**, **D007**, **D008**.
//!
//! The serving path holds real locks (the striped session maps and token
//! map in `mar-core`, the daemon's wire-session ledger, the bench engine's
//! result slots), and the PR 6 review caught its ordering bugs by manual
//! inspection. This module makes that inspection mechanical:
//!
//! 1. **Lock identity.** A workspace pre-pass collects every named
//!    `Mutex`/`RwLock` declaration: struct fields, `let` bindings, statics
//!    and parameters typed `Mutex<..>`/`RwLock<..>` (directly or through a
//!    type alias such as `type Ledgers = Mutex<..>`), plus accessor
//!    functions returning `&Mutex<..>` (the `Server::stripe` pattern, named
//!    after the function). Locks are identified **by declared name**: two
//!    fields both called `slots` in different crates collapse into one
//!    node. That trades a little precision for zero configuration; the
//!    convention (DESIGN.md §13) is to name locks distinctively.
//! 2. **Guard liveness.** Each function body is scanned with a brace-depth
//!    scope stack. `recv.lock()` / `recv.read()` / `recv.write()` on a
//!    known lock name is an acquisition. `let g = recv.lock()` followed
//!    only by an `.expect(..)`/`.unwrap()` chain binds a named guard that
//!    dies at the `}` closing its block or at an explicit `drop(g)`; any
//!    other shape (`.take()` projections, bare statements) is a temporary
//!    guard that dies at the end of its statement.
//! 3. **Call graph.** `name(..)` call sites are resolved against every
//!    workspace `fn name` (union over same-name functions), except a
//!    denylist of ubiquitous std-colliding names (`len`, `insert`,
//!    `join`, …) that would otherwise wire unrelated code together. A
//!    fixpoint then computes each function's **transitive lock set** with
//!    a human-readable witness trace per lock.
//!
//! On top of that state, three rules:
//!
//! * **D006** — a cycle in the global lock-order graph. Edges are added
//!   when a guard of `L1` is live while `L2` is acquired directly, or
//!   while a function that transitively acquires `L2` is called. Cycles
//!   are reported once per strongly-connected component with the full
//!   witness chain. Suppressible with `// mar-lint: allow(D006) — <reason>`
//!   on any edge's line.
//! * **D007** — a blocking operation (socket read/write, `accept`,
//!   `JoinHandle::join`, channel `recv`, `thread::sleep`, `park`,
//!   condvar `wait`) while any guard is live. Intra-procedural: the
//!   blocking call must be textually under the guard.
//! * **D008** — a guard of `L` live while `L` is acquired again, directly
//!   or via a call into a function that transitively acquires `L`
//!   (self-deadlock on a non-reentrant `Mutex`).
//!
//! Known limitations (all false-*negative* directions, chosen so the
//! self-lint gate stays meaningful): closure-parameter receivers
//! (`|s| s.lock()`) are not named locks; closures passed by value
//! (`.map(f)`) are not call edges; denylisted method names are never
//! edges. See DESIGN.md §13 for the discipline that keeps these gaps
//! harmless.

use crate::{
    classify, collect_allows, matching_bracket, test_regions, tokenize, FileKind, Finding, Rule,
    Tok, Token,
};
use std::collections::{BTreeMap, BTreeSet};

/// Lock flavour — decides which acquisition methods apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LockKind {
    /// `Mutex`: acquired via `.lock()`.
    Mutex,
    /// `RwLock`: acquired via `.read()` / `.write()` (and `.lock()` never).
    RwLock,
}

/// Function names that collide with ubiquitous std methods: resolving
/// them by name would wire every `.len()` or `.insert(..)` call site to
/// whatever workspace function shares the name, creating phantom lock
/// edges. Calls to these names never become call-graph edges.
const CALL_DENYLIST: &[&str] = &[
    "all",
    "any",
    "append",
    "as_mut",
    "as_ref",
    "clamp",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "default",
    "drop",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "finish",
    "flush",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "join",
    "len",
    "lock",
    "map",
    "max",
    "min",
    "new",
    "next",
    "or_default",
    "or_insert_with",
    "pop",
    "push",
    "read",
    "recv",
    "remove",
    "rev",
    "send",
    "sort",
    "sort_unstable",
    "spawn",
    "split",
    "sum",
    "take",
    "to_string",
    "trim",
    "unwrap",
    "windows",
    "write",
    "zip",
];

/// Blocking operations that must take zero arguments to count (so
/// `Vec::join(sep)` and `Path::join(p)` never fire).
const BLOCKING_ZERO_ARG: &[&str] = &["accept", "join", "park", "recv"];

/// Blocking operations that count with any argument list.
const BLOCKING_ANY_ARG: &[&str] = &[
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "read_until",
    "recv_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "write_all",
];

fn ident(t: &Token) -> Option<&str> {
    match &t.tok {
        Tok::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.tok == Tok::Punct(c)
}

/// One analysed source file.
struct FileCtx {
    rel: String,
    tokens: Vec<Token>,
    /// Per-line allowed rules (D000s are discarded here; `lint_source`
    /// already reported them).
    allows: BTreeMap<u32, BTreeSet<Rule>>,
    /// `#[cfg(test)]` / `#[test]` token ranges — excluded entirely.
    excluded: Vec<(usize, usize)>,
}

impl FileCtx {
    fn in_excluded(&self, idx: usize) -> bool {
        self.excluded.iter().any(|&(a, b)| a <= idx && idx < b)
    }

    fn allowed(&self, line: u32, rule: Rule) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(&rule))
    }
}

/// A function definition: where its body lives and which nested-fn token
/// ranges inside it belong to someone else.
struct FnDef {
    name: String,
    file: usize,
    /// Token range of the body, **excluding** the braces.
    body: (usize, usize),
    /// Nested `fn` bodies inside `body` (scanned as their own defs).
    nested: Vec<(usize, usize)>,
}

/// A live guard during the body scan.
#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    /// `None` for statement temporaries.
    binding: Option<String>,
    /// Brace depth at acquisition (body starts at depth 1).
    depth: u32,
    line: u32,
}

/// A call site made while guards were live.
struct Call {
    callee: String,
    line: u32,
    col: u32,
    held: Vec<Guard>,
}

/// Everything one function body scan produced.
#[derive(Default)]
struct FnFacts {
    /// First acquisition site per lock (for the transitive traces).
    direct: BTreeMap<String, (u32, u32)>,
    /// Workspace-resolvable call sites with the guards held at each.
    calls: Vec<Call>,
    /// `(held_lock, acquired_lock, line, col)` direct-nesting events.
    nests: Vec<(String, String, u32, u32)>,
    /// Ready-made D007/D008 findings (allow-filtered later).
    findings: Vec<(u32, u32, Rule, String)>,
}

/// Runs the concurrency pass over the full file set and returns D006/
/// D007/D008 findings (sorted by the caller).
pub(crate) fn analyze(files: &[(String, String)]) -> Vec<Finding> {
    let mut ctxs = Vec::new();
    for (rel, src) in files {
        let Some(class) = classify(rel) else { continue };
        if class.kind == FileKind::TestOrBench {
            continue;
        }
        let (tokens, comments) = tokenize(src);
        let token_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
        // D000s from malformed annotations were already reported by
        // `lint_source`; this re-parse only wants the allow map.
        let mut discard = Vec::new();
        let allows = collect_allows(rel, &comments, &token_lines, &mut discard);
        let excluded = test_regions(&tokens);
        ctxs.push(FileCtx {
            rel: rel.clone(),
            tokens,
            allows,
            excluded,
        });
    }

    let locks = collect_locks(&ctxs);
    let defs = collect_fns(&ctxs);
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, d) in defs.iter().enumerate() {
        by_name.entry(d.name.as_str()).or_default().push(i);
    }

    let facts: Vec<FnFacts> = defs
        .iter()
        .map(|d| scan_fn(&ctxs[d.file], d, &locks, &by_name))
        .collect();

    let traces = transitive_locks(&ctxs, &defs, &facts, &by_name);
    build_findings(&ctxs, &defs, &facts, &traces, &by_name)
}

// ---------------------------------------------------------------------------
// Pass A — lock declarations
// ---------------------------------------------------------------------------

/// Every known lock: declared field/binding/static/parameter names,
/// accessor-function names, and the flavour of each.
struct Locks {
    /// Receiver names that denote a lock (`stripes`, `tokens`, `ledgers`…).
    names: BTreeMap<String, LockKind>,
    /// Function names returning `&Mutex<..>`/`&RwLock<..>` — a call like
    /// `self.stripe(id).lock()` acquires the lock named after the fn.
    returning: BTreeMap<String, LockKind>,
}

fn collect_locks(ctxs: &[FileCtx]) -> Locks {
    // Type aliases first, so `ledgers: &Ledgers` resolves.
    let mut aliases: BTreeMap<String, LockKind> = BTreeMap::new();
    for ctx in ctxs {
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_excluded(i) || ident(&toks[i]) != Some("type") {
                continue;
            }
            let Some(name) = toks.get(i + 1).and_then(ident) else {
                continue;
            };
            // Scan the alias RHS up to `;` for a lock type.
            let mut j = i + 2;
            let mut kind = None;
            while j < toks.len() && !is_punct(&toks[j], ';') {
                match ident(&toks[j]) {
                    Some("Mutex") => kind = Some(LockKind::Mutex),
                    Some("RwLock") => kind = Some(LockKind::RwLock),
                    _ => {}
                }
                j += 1;
            }
            if let Some(k) = kind {
                aliases.insert(name.to_string(), k);
            }
        }
    }

    let lock_kind = |name: &str| match name {
        "Mutex" => Some(LockKind::Mutex),
        "RwLock" => Some(LockKind::RwLock),
        other => aliases.get(other).copied(),
    };

    let mut names = BTreeMap::new();
    let mut returning = BTreeMap::new();
    for ctx in ctxs {
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_excluded(i) {
                continue;
            }
            // Accessor functions: `fn stripe(..) -> &Mutex<..>`.
            if ident(&toks[i]) == Some("fn") {
                if let Some((fname, kind)) = lock_returning_fn(toks, i, &lock_kind) {
                    returning.insert(fname, kind);
                }
                continue;
            }
            let Some(kind) = ident(&toks[i]).and_then(&lock_kind) else {
                continue;
            };
            // Type position only: `name: … Lock<…> …`. Walk back over type
            // syntax to the single `:` of the declaration; `::` path
            // separators and `=`/`;`/`>` boundaries bail out.
            if !toks.get(i + 1).is_some_and(|t| is_punct(t, '<'))
                && !aliases.contains_key(ident(&toks[i]).unwrap_or(""))
            {
                continue;
            }
            if let Some(name) = decl_name(toks, i) {
                names.entry(name).or_insert(kind);
            }
        }
    }
    Locks { names, returning }
}

/// Walks backward from the lock-type token to the declaration's `name:`.
fn decl_name(toks: &[Token], lock_idx: usize) -> Option<String> {
    let mut j = lock_idx;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            // `::` path separator — skip it and the segment before it.
            Tok::Punct(':') if j > 0 && is_punct(&toks[j - 1], ':') => {
                j -= 1;
            }
            // The declaration colon: the name is the ident before it.
            Tok::Punct(':') => {
                return match toks.get(j.checked_sub(1)?).map(|t| &t.tok) {
                    Some(Tok::Ident(name)) => Some(name.clone()),
                    _ => None,
                };
            }
            // Type syntax we walk through.
            Tok::Punct('<')
            | Tok::Punct('[')
            | Tok::Punct('(')
            | Tok::Punct('&')
            | Tok::Ident(_) => {}
            // Anything else (`=`, `;`, `>`, `-`, `{`, …): not a
            // `name: Type` declaration.
            _ => return None,
        }
    }
    None
}

/// If the `fn` at `fn_idx` returns a lock type, yields `(name, kind)`.
fn lock_returning_fn(
    toks: &[Token],
    fn_idx: usize,
    lock_kind: &impl Fn(&str) -> Option<LockKind>,
) -> Option<(String, LockKind)> {
    let name = toks.get(fn_idx + 1).and_then(ident)?;
    // Params start at the first `(` after the name (simple generics never
    // contain parens in this workspace).
    let mut p = fn_idx + 2;
    while p < toks.len() && !is_punct(&toks[p], '(') {
        if is_punct(&toks[p], '{') || is_punct(&toks[p], ';') {
            return None;
        }
        p += 1;
    }
    let params_end = matching_bracket(toks, p, '(', ')')?;
    // Return type: between the params and the body. Require an explicit
    // `->` before the lock token so parameters misparsed into this range
    // can never mint a lock name.
    let mut arrow = false;
    let mut j = params_end + 1;
    while j < toks.len() && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
        if is_punct(&toks[j], '-') && toks.get(j + 1).is_some_and(|t| is_punct(t, '>')) {
            arrow = true;
        }
        if arrow {
            if let Some(kind) = ident(&toks[j]).and_then(lock_kind) {
                return Some((name.to_string(), kind));
            }
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Pass B — function definitions
// ---------------------------------------------------------------------------

fn collect_fns(ctxs: &[FileCtx]) -> Vec<FnDef> {
    let mut defs = Vec::new();
    for (fidx, ctx) in ctxs.iter().enumerate() {
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.in_excluded(i) || ident(&toks[i]) != Some("fn") {
                continue;
            }
            let Some(name) = toks.get(i + 1).and_then(ident) else {
                continue;
            };
            let Some((open, close)) = fn_body(toks, i) else {
                continue;
            };
            // Nested fn bodies belong to their own defs; the outer scan
            // must skip them.
            let mut nested = Vec::new();
            let mut j = open + 1;
            while j < close {
                if ident(&toks[j]) == Some("fn") && toks.get(j + 1).and_then(ident).is_some() {
                    if let Some((no, nc)) = fn_body(toks, j) {
                        nested.push((no, nc + 1));
                        j = nc + 1;
                        continue;
                    }
                }
                j += 1;
            }
            defs.push(FnDef {
                name: name.to_string(),
                file: fidx,
                body: (open + 1, close),
                nested,
            });
        }
    }
    defs
}

/// Token indices of the `{` / `}` delimiting the body of the `fn` at
/// `fn_idx`; `None` for bodyless trait/extern signatures.
fn fn_body(toks: &[Token], fn_idx: usize) -> Option<(usize, usize)> {
    let mut j = fn_idx + 1;
    while j < toks.len() {
        if is_punct(&toks[j], ';') {
            return None;
        }
        if is_punct(&toks[j], '{') {
            let close = matching_bracket(toks, j, '{', '}')?;
            return Some((j, close));
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Pass C — per-function guard-liveness scan
// ---------------------------------------------------------------------------

fn scan_fn(ctx: &FileCtx, def: &FnDef, locks: &Locks, fns: &BTreeMap<&str, Vec<usize>>) -> FnFacts {
    let toks = &ctx.tokens;
    let mut facts = FnFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1u32;
    // Token index where the current statement began (tracks the last
    // `;`/`{`/`}` so `let g = …` binding shapes can be recognised).
    let mut stmt = def.body.0;

    let mut i = def.body.0;
    while i < def.body.1 {
        if let Some(&(a, b)) = def.nested.iter().find(|&&(a, b)| a <= i && i < b) {
            let _ = a;
            i = b;
            continue;
        }
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt = i + 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt = i + 1;
            }
            Tok::Punct(';') => {
                // Statement temporaries die with their statement.
                guards.retain(|g| g.binding.is_some() || g.depth < depth);
                stmt = i + 1;
            }
            Tok::Ident(name) => {
                let next_open = toks.get(i + 1).is_some_and(|n| is_punct(n, '('));
                if name == "drop" && next_open && toks.get(i + 3).is_some_and(|n| is_punct(n, ')'))
                {
                    if let Some(b) = toks.get(i + 2).and_then(ident) {
                        // Kill the most recent guard with this binding.
                        if let Some(pos) =
                            guards.iter().rposition(|g| g.binding.as_deref() == Some(b))
                        {
                            guards.remove(pos);
                        }
                    }
                } else if matches!(name.as_str(), "lock" | "read" | "write")
                    && i > 0
                    && is_punct(&toks[i - 1], '.')
                    && next_open
                    && toks.get(i + 2).is_some_and(|n| is_punct(n, ')'))
                {
                    if let Some(lock) = acquisition_target(toks, i, name, locks) {
                        on_acquire(ctx, &mut facts, &guards, &lock, t.line, t.col);
                        let binding = guard_binding(toks, stmt, i);
                        guards.push(Guard {
                            lock,
                            binding,
                            depth,
                            line: t.line,
                        });
                    }
                } else if next_open && is_blocking(toks, i, name) {
                    if let Some(g) = guards.first() {
                        facts.findings.push((
                            t.line,
                            t.col,
                            Rule::D007,
                            format!(
                                "blocking `{name}(..)` while holding the `{}` guard (acquired at \
                                 line {}): a blocked holder stalls every thread contending for \
                                 the lock; release the guard first or justify with `// mar-lint: \
                                 allow(D007) — <reason>`",
                                g.lock, g.line
                            ),
                        ));
                    }
                } else if next_open
                    && !guards.is_empty()
                    && !CALL_DENYLIST.contains(&name.as_str())
                    && fns.contains_key(name.as_str())
                    && (i == 0 || ident(&toks[i - 1]) != Some("fn"))
                {
                    facts.calls.push(Call {
                        callee: name.clone(),
                        line: t.line,
                        col: t.col,
                        held: guards.clone(),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Records the nesting/self-nesting consequences of acquiring `lock`
/// while `guards` are live.
fn on_acquire(
    ctx: &FileCtx,
    facts: &mut FnFacts,
    guards: &[Guard],
    lock: &str,
    line: u32,
    col: u32,
) {
    let _ = ctx;
    facts.direct.entry(lock.to_string()).or_insert((line, col));
    for g in guards {
        if g.lock == lock {
            facts.findings.push((
                line,
                col,
                Rule::D008,
                format!(
                    "`{lock}` acquired again while its guard (line {}) is still live — a \
                     non-reentrant `Mutex` self-deadlocks; drop the first guard or justify \
                     with `// mar-lint: allow(D008) — <reason>`",
                    g.line
                ),
            ));
        } else {
            facts
                .nests
                .push((g.lock.clone(), lock.to_string(), line, col));
        }
    }
}

/// The lock name acquired by the `.lock()`/`.read()`/`.write()` whose
/// method ident sits at `m_idx`, if the receiver is a known lock.
fn acquisition_target(toks: &[Token], m_idx: usize, method: &str, locks: &Locks) -> Option<String> {
    // Receiver is the token before the `.`: an ident, an index `…]`, or a
    // call `…)` (the accessor-fn pattern).
    let recv = m_idx.checked_sub(2)?;
    let (name, via_call) = match &toks[recv].tok {
        Tok::Ident(n) => (n.clone(), false),
        Tok::Punct(']') => {
            let open = matching_open(toks, recv, '[', ']')?;
            (ident(toks.get(open.checked_sub(1)?)?)?.to_string(), false)
        }
        Tok::Punct(')') => {
            let open = matching_open(toks, recv, '(', ')')?;
            (ident(toks.get(open.checked_sub(1)?)?)?.to_string(), true)
        }
        _ => return None,
    };
    let kind = if via_call {
        locks.returning.get(&name).copied()?
    } else {
        locks.names.get(&name).copied()?
    };
    let applies = match method {
        "lock" => kind == LockKind::Mutex,
        // `.read()`/`.write()` collide with `io::Read`/`io::Write`; they
        // only count on names declared as `RwLock`.
        _ => kind == LockKind::RwLock,
    };
    if applies {
        Some(name)
    } else {
        None
    }
}

/// Backward bracket match: the index of the `open` matching the `close`
/// at `close_idx`.
fn matching_open(toks: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_idx + 1;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(c) if *c == close => depth += 1,
            Tok::Punct(c) if *c == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// If the statement starting at `stmt` is `let [mut] NAME = …` and the
/// chain after the acquisition is nothing but `.expect(..)`/`.unwrap()`
/// up to the `;`, the acquisition binds a named guard `NAME`.
fn guard_binding(toks: &[Token], stmt: usize, m_idx: usize) -> Option<String> {
    let mut k = stmt;
    if ident(toks.get(k)?)? != "let" {
        return None;
    }
    k += 1;
    if ident(toks.get(k)?) == Some("mut") {
        k += 1;
    }
    let name = match &toks.get(k)?.tok {
        Tok::Ident(n) => n.clone(),
        _ => return None,
    };
    if !is_punct(toks.get(k + 1)?, '=') {
        return None;
    }
    // Walk the trailing chain: `.expect(..)` / `.unwrap()` repetitions,
    // then the statement must end.
    let mut p = m_idx + 3; // past `lock ( )`
    loop {
        let t = toks.get(p)?;
        if is_punct(t, ';') {
            return Some(name);
        }
        if !is_punct(t, '.') {
            return None;
        }
        match ident(toks.get(p + 1)?) {
            Some("expect") | Some("unwrap") => {
                let close = matching_bracket(toks, p + 2, '(', ')')?;
                p = close + 1;
            }
            _ => return None,
        }
    }
}

/// True when the ident at `i` is a blocking operation in call position
/// (`.op(..)` or `path::op(..)`).
fn is_blocking(toks: &[Token], i: usize, name: &str) -> bool {
    let qualified = i > 0
        && (is_punct(&toks[i - 1], '.')
            || (is_punct(&toks[i - 1], ':') && i > 1 && is_punct(&toks[i - 2], ':')));
    if !qualified {
        return false;
    }
    if BLOCKING_ZERO_ARG.contains(&name) {
        // Truly empty parens: the tokenizer drops string-literal contents,
        // so `join("\n")` also tokenizes as `join ( )` — require the `)`
        // to sit directly after the `(` in source coordinates.
        return match (toks.get(i + 1), toks.get(i + 2)) {
            (Some(open), Some(close)) if is_punct(close, ')') => {
                close.line == open.line && close.col == open.col + 1
            }
            _ => false,
        };
    }
    BLOCKING_ANY_ARG.contains(&name)
}

// ---------------------------------------------------------------------------
// Transitive lock sets
// ---------------------------------------------------------------------------

/// Per function name: the locks it (transitively) acquires, each with a
/// readable witness trace ("calls `b`, which locks `x` (file:line)").
fn transitive_locks(
    ctxs: &[FileCtx],
    defs: &[FnDef],
    facts: &[FnFacts],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> BTreeMap<String, BTreeMap<String, String>> {
    let mut trans: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for (name, idxs) in by_name {
        let entry = trans.entry((*name).to_string()).or_default();
        for &di in idxs {
            for (lock, &(line, _)) in &facts[di].direct {
                entry.entry(lock.clone()).or_insert_with(|| {
                    format!("locks `{lock}` ({}:{line})", ctxs[defs[di].file].rel)
                });
            }
        }
    }
    // Per-name call lists (deduped, sorted — the fixpoint is deterministic).
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, idxs) in by_name {
        let entry = calls.entry((*name).to_string()).or_default();
        for &di in idxs {
            for c in &facts[di].calls {
                entry.insert(c.callee.clone());
            }
        }
    }
    loop {
        let mut grew = false;
        let names: Vec<String> = trans.keys().cloned().collect();
        for name in &names {
            let callees = match calls.get(name) {
                Some(c) => c.clone(),
                None => continue,
            };
            for callee in callees {
                let inherited: Vec<(String, String)> = match trans.get(&callee) {
                    Some(set) => set
                        .iter()
                        .map(|(l, tr)| (l.clone(), format!("calls `{callee}`, which {tr}")))
                        .collect(),
                    None => continue,
                };
                if let Some(own) = trans.get_mut(name) {
                    for (lock, trace) in inherited {
                        if let std::collections::btree_map::Entry::Vacant(slot) = own.entry(lock) {
                            slot.insert(trace);
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            return trans;
        }
    }
}

// ---------------------------------------------------------------------------
// Findings — D006 (lock-order cycles), D007/D008 (collected per fn)
// ---------------------------------------------------------------------------

/// One lock-order edge with its witness.
struct Edge {
    file: usize,
    line: u32,
    col: u32,
    desc: String,
}

fn build_findings(
    ctxs: &[FileCtx],
    defs: &[FnDef],
    facts: &[FnFacts],
    traces: &BTreeMap<String, BTreeMap<String, String>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<Finding> {
    let _ = by_name;
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();

    for (di, def) in defs.iter().enumerate() {
        let ctx = &ctxs[def.file];
        // Direct nesting → edges.
        for (from, to, line, col) in &facts[di].nests {
            edges
                .entry((from.clone(), to.clone()))
                .or_insert_with(|| Edge {
                    file: def.file,
                    line: *line,
                    col: *col,
                    desc: format!(
                        "`{}` ({}:{line}) acquires `{to}` while holding `{from}`",
                        def.name, ctx.rel
                    ),
                });
        }
        // Calls under guards → edges (different lock) and D008 (same lock).
        for call in &facts[di].calls {
            let Some(callee_locks) = traces.get(&call.callee) else {
                continue;
            };
            for g in &call.held {
                for (lock, trace) in callee_locks {
                    if *lock == g.lock {
                        if !ctx.allowed(call.line, Rule::D008) {
                            findings.push(Finding {
                                file: ctx.rel.clone(),
                                line: call.line,
                                col: call.col,
                                rule: Rule::D008,
                                message: format!(
                                    "`{}` holds the `{}` guard (line {}) across a call to \
                                     `{}`, which {trace} — re-acquiring a non-reentrant \
                                     `Mutex` self-deadlocks; drop the guard before the call \
                                     or justify with `// mar-lint: allow(D008) — <reason>`",
                                    def.name, g.lock, g.line, call.callee
                                ),
                            });
                        }
                    } else {
                        edges
                            .entry((g.lock.clone(), lock.clone()))
                            .or_insert_with(|| Edge {
                                file: def.file,
                                line: call.line,
                                col: call.col,
                                desc: format!(
                                    "`{}` ({}:{}) calls `{}` while holding `{}`; `{}` {trace}",
                                    def.name, ctx.rel, call.line, call.callee, g.lock, call.callee
                                ),
                            });
                    }
                }
            }
        }
        // D007 (and direct D008) findings collected during the scan.
        for (line, col, rule, message) in &facts[di].findings {
            if !ctx.allowed(*line, *rule) {
                findings.push(Finding {
                    file: ctx.rel.clone(),
                    line: *line,
                    col: *col,
                    rule: *rule,
                    message: message.clone(),
                });
            }
        }
    }

    findings.extend(cycle_findings(ctxs, &edges));
    findings.sort();
    findings.dedup();
    findings
}

/// One D006 finding per strongly-connected component of the lock-order
/// graph, carrying the full witness chain.
fn cycle_findings(ctxs: &[FileCtx], edges: &BTreeMap<(String, String), Edge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
        nodes.insert(from.as_str());
        nodes.insert(to.as_str());
    }

    let mut findings = Vec::new();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if reported.contains(start) {
            continue;
        }
        // The SCC containing `start`: nodes reachable from it that also
        // reach back. Graphs here have a handful of nodes, so two BFS
        // passes per candidate are plenty.
        let fwd = reachable(&adj, start);
        let scc: BTreeSet<&str> = fwd
            .iter()
            .copied()
            .filter(|&n| reachable(&adj, n).contains(start))
            .collect();
        // A strongly-connected component of ≥ 2 locks is an ordering
        // cycle. (Self-edges never exist: same-lock nesting is D008.)
        if scc.len() < 2 || !scc.contains(start) {
            continue;
        }
        reported.extend(scc.iter().copied());
        let Some(cycle) = witness_cycle(&adj, &scc, start) else {
            continue;
        };
        let mut chain = Vec::new();
        let mut descs = Vec::new();
        let mut suppressed = false;
        for w in cycle.windows(2) {
            let Some(e) = edges.get(&(w[0].to_string(), w[1].to_string())) else {
                continue;
            };
            if ctxs[e.file].allowed(e.line, Rule::D006) {
                suppressed = true;
            }
            descs.push(e.desc.clone());
        }
        for n in &cycle {
            chain.push(format!("`{n}`"));
        }
        if suppressed {
            continue;
        }
        let Some(first) = edges.get(&(cycle[0].to_string(), cycle[1].to_string())) else {
            continue;
        };
        findings.push(Finding {
            file: ctxs[first.file].rel.clone(),
            line: first.line,
            col: first.col,
            rule: Rule::D006,
            message: format!(
                "lock-order cycle {}: {} — two threads taking these locks in opposing order \
                 deadlock; acquire in one global order (DESIGN.md §13) or justify every edge \
                 with `// mar-lint: allow(D006) — <reason>`",
                chain.join(" → "),
                descs.join("; ")
            ),
        });
    }
    findings
}

fn reachable<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>, from: &'a str) -> BTreeSet<&'a str> {
    let mut seen = BTreeSet::new();
    let mut queue = vec![from];
    while let Some(n) = queue.pop() {
        if let Some(next) = adj.get(n) {
            for &m in next {
                if seen.insert(m) {
                    queue.push(m);
                }
            }
        }
    }
    seen
}

/// A concrete cycle `start → … → start` inside `scc` (shortest via BFS),
/// returned as the node list with `start` at both ends.
fn witness_cycle<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    scc: &BTreeSet<&'a str>,
    start: &'a str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        let Some(next) = adj.get(n) else { continue };
        for &m in next {
            if m == start {
                // Unwind the path start → … → n, then close the loop.
                let mut path = vec![start];
                let mut cur = n;
                let mut rev = Vec::new();
                while cur != start {
                    rev.push(cur);
                    cur = prev.get(cur)?;
                }
                rev.reverse();
                path.extend(rev);
                path.push(start);
                return Some(path);
            }
            if scc.contains(m) && !prev.contains_key(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_files;

    fn lib(src: &str) -> Vec<(String, String)> {
        vec![("crates/core/src/fake.rs".to_string(), src.to_string())]
    }

    fn rules_of(f: &[Finding]) -> Vec<Rule> {
        let mut r: Vec<Rule> = f.iter().map(|x| x.rule).collect();
        r.sort();
        r
    }

    /// ABBA ordering between two functions is a D006 cycle with a witness
    /// chain naming both functions.
    #[test]
    fn abba_cycle_is_d006() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    drop(b);
                    drop(a);
                }
                pub fn backward(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                    drop(a);
                    drop(b);
                }
            }
        "#;
        let f = analyze(&lib(src));
        assert_eq!(rules_of(&f), vec![Rule::D006]);
        assert!(
            f[0].message.contains("`alpha` → `beta` → `alpha`"),
            "{}",
            f[0].message
        );
        assert!(f[0].message.contains("forward"), "{}", f[0].message);
        assert!(f[0].message.contains("backward"), "{}", f[0].message);
    }

    /// A consistent global order is no cycle.
    #[test]
    fn consistent_order_passes() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn one(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    drop(b);
                    drop(a);
                }
                pub fn two(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    drop(b);
                    drop(a);
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// The cycle survives one hop of indirection through the call graph —
    /// and the witness trace names the callee.
    #[test]
    fn cycle_through_call_graph_is_d006() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let a = self.alpha.lock();
                    self.bump_beta();
                    drop(a);
                }
                fn bump_beta(&self) {
                    let _b = self.beta.lock();
                }
                pub fn backward(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                    drop(a);
                    drop(b);
                }
            }
        "#;
        let f = analyze(&lib(src));
        assert_eq!(rules_of(&f), vec![Rule::D006]);
        assert!(f[0].message.contains("bump_beta"), "{}", f[0].message);
    }

    /// Sequential block-scoped guards (the `Server::disconnect` /
    /// `connect_with_token` shape) never nest, so opposing *textual*
    /// orders are fine.
    #[test]
    fn block_scoped_sequential_guards_pass() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let x = {
                        let a = self.alpha.lock();
                        1
                    };
                    let b = self.beta.lock();
                    drop(b);
                    let _ = x;
                }
                pub fn backward(&self) {
                    let y = {
                        let b = self.beta.lock();
                        2
                    };
                    let a = self.alpha.lock();
                    drop(a);
                    let _ = y;
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// Explicit `drop(guard)` releases before the second acquisition.
    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let a = self.alpha.lock();
                    drop(a);
                    let _b = self.beta.lock();
                }
                pub fn backward(&self) {
                    let b = self.beta.lock();
                    drop(b);
                    let _a = self.alpha.lock();
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// A statement temporary (`*slots[i].lock().expect(..) = v;`) dies at
    /// its own `;` and never reaches the next statement.
    #[test]
    fn statement_temporaries_die_at_semicolon() {
        let src = r#"
            use std::sync::Mutex;
            pub fn f(slots: &[Mutex<u32>], outs: &[Mutex<u32>]) {
                let v = slots[0].lock();
                drop(v);
            }
            pub fn g(slots: &[Mutex<u32>], outs: &[Mutex<u32>]) {
                let a = outs[0].lock();
                drop(a);
                let b = slots[0].lock();
                drop(b);
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// D007: blocking while a guard is live; dropping first passes.
    #[test]
    fn blocking_under_guard_is_d007() {
        let bad = r#"
            use std::sync::Mutex;
            pub struct S { inner: Mutex<u32>, rx: std::sync::mpsc::Receiver<u32> }
            impl S {
                pub fn drain(&self) {
                    let g = self.inner.lock();
                    let _v = self.rx.recv();
                    drop(g);
                }
            }
        "#;
        let f = analyze(&lib(bad));
        assert_eq!(rules_of(&f), vec![Rule::D007]);
        assert!(f[0].message.contains("recv"), "{}", f[0].message);

        let ok = r#"
            use std::sync::Mutex;
            pub struct S { inner: Mutex<u32>, rx: std::sync::mpsc::Receiver<u32> }
            impl S {
                pub fn drain(&self) {
                    let g = self.inner.lock();
                    drop(g);
                    let _v = self.rx.recv();
                }
            }
        "#;
        assert!(analyze(&lib(ok)).is_empty());
    }

    /// `Vec::join(sep)` takes an argument, `JoinHandle::join()` does not —
    /// only the zero-argument form is blocking.
    #[test]
    fn join_with_arguments_is_not_blocking() {
        let src = r#"
            use std::sync::Mutex;
            pub struct S { inner: Mutex<u32> }
            impl S {
                pub fn render(&self, lines: &[String]) -> String {
                    let g = self.inner.lock();
                    let out = lines.join("\n");
                    drop(g);
                    out
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// D008: re-acquiring the same named lock, directly and through a call.
    #[test]
    fn double_lock_is_d008() {
        let direct = r#"
            use std::sync::Mutex;
            pub struct S { n: Mutex<u32> }
            impl S {
                pub fn f(&self) {
                    let a = self.n.lock();
                    let b = self.n.lock();
                    drop(b);
                    drop(a);
                }
            }
        "#;
        assert_eq!(rules_of(&analyze(&lib(direct))), vec![Rule::D008]);

        let via_call = r#"
            use std::sync::Mutex;
            pub struct S { n: Mutex<u32> }
            impl S {
                pub fn outer(&self) {
                    let g = self.n.lock();
                    self.total();
                    drop(g);
                }
                fn total(&self) {
                    let _g = self.n.lock();
                }
            }
        "#;
        let f = analyze(&lib(via_call));
        assert_eq!(rules_of(&f), vec![Rule::D008]);
        assert!(f[0].message.contains("total"), "{}", f[0].message);
    }

    /// `.read()`/`.write()` only fire on declared `RwLock` names — an
    /// `io::Read`-style `.read(buf)` on a non-lock receiver is ignored,
    /// and RwLock guards participate in ordering edges.
    #[test]
    fn rwlock_read_write_and_io_read_disambiguation() {
        let src = r#"
            use std::sync::{Mutex, RwLock};
            pub struct S { table: RwLock<u32>, n: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let t = self.table.read();
                    let g = self.n.lock();
                    drop(g);
                    drop(t);
                }
                pub fn backward(&self) {
                    let g = self.n.lock();
                    let t = self.table.write();
                    drop(t);
                    drop(g);
                }
            }
        "#;
        let f = analyze(&lib(src));
        assert_eq!(rules_of(&f), vec![Rule::D006]);

        let io = r#"
            use std::sync::Mutex;
            pub struct S { n: Mutex<u32> }
            pub fn f(s: &S, sock: &mut std::net::TcpStream, buf: &mut [u8]) {
                let g = s.n.lock();
                let _ = sock.read(buf);
                drop(g);
            }
        "#;
        // `sock` is not a declared lock: `.read(buf)` is io, not an
        // acquisition (and not in the zero-arg blocking set).
        assert!(analyze(&lib(io)).is_empty());
    }

    /// Locks reached through a type alias (`type Ledgers = Mutex<..>`)
    /// and through accessor functions (`fn stripe(..) -> &Mutex<..>`)
    /// resolve to named locks.
    #[test]
    fn alias_and_accessor_locks_resolve() {
        let src = r#"
            use std::collections::BTreeMap;
            use std::sync::Mutex;
            type Ledgers = Mutex<BTreeMap<u64, u64>>;
            pub struct S { ledgers: Ledgers, stripes: Vec<Mutex<u32>> }
            impl S {
                fn stripe(&self, i: usize) -> &Mutex<u32> {
                    &self.stripes[i]
                }
                pub fn forward(&self) {
                    let l = self.ledgers.lock();
                    let s = self.stripe(0).lock();
                    drop(s);
                    drop(l);
                }
                pub fn backward(&self) {
                    let s = self.stripe(0).lock();
                    let l = self.ledgers.lock();
                    drop(l);
                    drop(s);
                }
            }
        "#;
        let f = analyze(&lib(src));
        assert_eq!(rules_of(&f), vec![Rule::D006]);
        assert!(f[0].message.contains("`ledgers`"), "{}", f[0].message);
        assert!(f[0].message.contains("`stripe`"), "{}", f[0].message);
    }

    /// Denylisted ubiquitous names (`len`, …) never become call edges,
    /// even when a workspace fn with that name takes locks.
    #[test]
    fn denylisted_names_are_not_call_edges() {
        let src = r#"
            use std::sync::Mutex;
            pub struct C { scenes: Mutex<u32> }
            impl C {
                pub fn len(&self) -> u32 {
                    let g = self.scenes.lock();
                    drop(g);
                    0
                }
            }
            pub struct S { stripes: Mutex<u32> }
            impl S {
                pub fn count(&self, items: &[u32]) -> usize {
                    let g = self.stripes.lock();
                    let n = items.len();
                    drop(g);
                    n
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// The allow escape hatch: any edge line of the cycle suppresses
    /// D006; the finding line suppresses D007/D008.
    #[test]
    fn allow_annotations_suppress() {
        let d006 = r#"
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    drop(b);
                    drop(a);
                }
                pub fn backward(&self) {
                    let b = self.beta.lock();
                    // mar-lint: allow(D006) — probe order is deliberate and documented
                    let a = self.alpha.lock();
                    drop(a);
                    drop(b);
                }
            }
        "#;
        assert!(analyze(&lib(d006)).is_empty());

        let d007 = r#"
            use std::sync::Mutex;
            pub struct S { inner: Mutex<u32>, rx: std::sync::mpsc::Receiver<u32> }
            impl S {
                pub fn drain(&self) {
                    let g = self.inner.lock();
                    // mar-lint: allow(D007) — bounded: the sender is in-process and never blocks
                    let _v = self.rx.recv();
                    drop(g);
                }
            }
        "#;
        assert!(analyze(&lib(d007)).is_empty());
    }

    /// Cross-file cycles resolve through the workspace-wide call graph.
    #[test]
    fn cross_file_cycle_is_d006() {
        let a = r#"
            use std::sync::Mutex;
            pub struct A { alpha: Mutex<u32> }
            impl A {
                pub fn forward(&self) {
                    let g = self.alpha.lock();
                    grab_beta();
                    drop(g);
                }
            }
        "#;
        let b = r#"
            use std::sync::Mutex;
            pub struct B { beta: Mutex<u32> }
            pub fn grab_beta() {
                let _g = BETA.beta.lock();
            }
            pub fn backward() {
                let g = BETA.beta.lock();
                grab_alpha();
                drop(g);
            }
            pub fn grab_alpha() {
                let _g = ALPHA.alpha.lock();
            }
            static ALPHA: u32 = 0;
            static BETA: u32 = 0;
        "#;
        let files = vec![
            ("crates/core/src/a.rs".to_string(), a.to_string()),
            ("crates/served/src/b.rs".to_string(), b.to_string()),
        ];
        let f = analyze(&files);
        assert_eq!(rules_of(&f), vec![Rule::D006]);
        assert!(f[0].message.contains("grab_beta"), "{}", f[0].message);
        assert!(f[0].message.contains("grab_alpha"), "{}", f[0].message);
    }

    /// Test modules are exempt: a lock dance inside `#[cfg(test)]` is the
    /// test's business.
    #[test]
    fn test_regions_are_exempt() {
        let src = r#"
            pub fn lib_code() {}
            #[cfg(test)]
            mod tests {
                use std::sync::Mutex;
                pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
                impl S {
                    pub fn forward(&self) {
                        let a = self.alpha.lock();
                        let b = self.beta.lock();
                        drop(b);
                        drop(a);
                    }
                    pub fn backward(&self) {
                        let b = self.beta.lock();
                        let a = self.alpha.lock();
                        drop(a);
                        drop(b);
                    }
                }
            }
        "#;
        assert!(analyze(&lib(src)).is_empty());
    }

    /// `lint_files` merges per-file rules with the concurrency pass.
    #[test]
    fn lint_files_merges_rule_families() {
        let src = r#"
            use std::collections::HashMap;
            use std::sync::Mutex;
            pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }
            impl S {
                pub fn forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                    drop(b);
                    drop(a);
                }
                pub fn backward(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                    drop(a);
                    drop(b);
                }
            }
        "#;
        let f = lint_files(&lib(src));
        assert_eq!(rules_of(&f), vec![Rule::D001, Rule::D006]);
    }
}
