//! `mar-lint` — the workspace determinism & float-soundness linter.
//!
//! The repo's core scientific claim is that every experiment is
//! byte-identical run to run (DESIGN.md "Determinism invariants"). Generic
//! tooling cannot enforce the repo-specific rules that claim rests on (and
//! the build environment has no crates.io access for `dylint`-style custom
//! lints), so this crate implements a small comment/string-aware Rust
//! tokenizer plus a rule engine with five checks:
//!
//! * **D001** — no `HashMap`/`HashSet` in the deterministic crates'
//!   library code: hash iteration order differs per map instance, which is
//!   exactly the bug class PR 1 had to hand-fix three times.
//! * **D002** — no `partial_cmp(..).unwrap()`/`.expect(..)` comparators:
//!   they panic on NaN and are not a total order; use `f64::total_cmp`.
//! * **D003** — no wall-clock or ambient nondeterminism (`Instant::now`,
//!   `SystemTime`, `thread_rng`, `RandomState`) anywhere results are
//!   computed.
//! * **D004** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in library (non-test, non-bin) code without
//!   justification.
//! * **D005** — every crate root carries `#![forbid(unsafe_code)]`.
//!
//! On top of the per-file rules, the [`concurrency`] module runs a
//! workspace-wide lock analysis (guard liveness + call graph — see its
//! module docs) with three more rules:
//!
//! * **D006** — cycle in the global lock-order graph (potential
//!   deadlock), reported with the full witness chain. The intended
//!   acquisition order is written down in DESIGN.md §13.
//! * **D007** — blocking operation (socket read/write/accept,
//!   `JoinHandle::join`, channel `recv`, `thread::sleep`, condvar
//!   `wait`) while a lock guard is live.
//! * **D008** — guard held across a re-acquisition of the same named
//!   lock, directly or through a call chain (self-deadlock).
//!
//! The only escape hatch is an annotation with a **mandatory** reason,
//! naming one or more comma-separated rules:
//!
//! ```text
//! // mar-lint: allow(D001) — membership-only set; iteration order never observed
//! // mar-lint: allow(D006,D007) — startup path; single-threaded by construction
//! ```
//!
//! placed either at the end of the offending line or alone on the line
//! directly above it. An annotation without a reason (or with an unknown
//! rule) is itself reported as **D000** and does not suppress anything.

#![forbid(unsafe_code)]

mod concurrency;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Crates whose library code must be deterministic (D001 applies).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "bench", "buffer", "core", "geom", "link", "mesh", "motion", "rtree", "served", "store",
    "workload",
];

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Malformed `mar-lint` annotation (missing reason / unknown rule).
    D000,
    /// `HashMap`/`HashSet` in deterministic-crate library code.
    D001,
    /// `partial_cmp(..).unwrap()` / `.expect(..)` comparator.
    D002,
    /// Wall-clock or ambient nondeterminism.
    D003,
    /// Panicking call in library code without justification.
    D004,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    D005,
    /// Cycle in the workspace lock-order graph (potential deadlock).
    D006,
    /// Blocking operation while a lock guard is live.
    D007,
    /// Same lock acquired again while its guard is live (self-deadlock).
    D008,
}

impl Rule {
    /// The rule's identifier as written in annotations and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D000 => "D000",
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::D007 => "D007",
            Rule::D008 => "D008",
        }
    }

    /// Parses an identifier such as `D001`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D000" => Some(Rule::D000),
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "D005" => Some(Rule::D005),
            "D006" => Some(Rule::D006),
            "D007" => Some(Rule::D007),
            "D008" => Some(Rule::D008),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// File classification
// ---------------------------------------------------------------------------

/// What kind of compilation context a file belongs to; decides which rules
/// apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` — library code that must also carry D005.
    CrateRoot,
    /// Other `src/**` library code.
    Library,
    /// `src/bin/**`, `src/main.rs`, example targets — the CLI/IO layer.
    Bin,
    /// `tests/**` and `benches/**` targets.
    TestOrBench,
}

/// A classified file: which crate it belongs to and its compilation role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate directory name (`core`, `buffer`, …; `examples`, `tests` for
    /// the two top-level members).
    pub crate_name: String,
    /// The compilation role.
    pub kind: FileKind,
}

/// Classifies a workspace-relative path; `None` means "not linted"
/// (vendor shims, build output, lint fixtures, non-Rust files).
pub fn classify(rel: &str) -> Option<FileClass> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "vendor" | "target" | "fixtures") || p.starts_with('.'))
    {
        return None;
    }
    let class = |crate_name: &str, kind| {
        Some(FileClass {
            crate_name: crate_name.to_string(),
            kind,
        })
    };
    match parts.as_slice() {
        ["crates", name, "src", "lib.rs"] => class(name, FileKind::CrateRoot),
        ["crates", name, "src", "main.rs"] => class(name, FileKind::Bin),
        ["crates", name, "src", "bin", ..] => class(name, FileKind::Bin),
        ["crates", name, "examples", ..] => class(name, FileKind::Bin),
        ["crates", name, "src", ..] => class(name, FileKind::Library),
        ["crates", name, "tests", ..] | ["crates", name, "benches", ..] => {
            class(name, FileKind::TestOrBench)
        }
        ["examples", "src", "lib.rs"] => class("examples", FileKind::CrateRoot),
        ["examples", "src", ..] => class("examples", FileKind::Library),
        ["examples", _] => class("examples", FileKind::Bin),
        ["tests", "src", "lib.rs"] => class("tests", FileKind::CrateRoot),
        ["tests", "src", ..] => class("tests", FileKind::Library),
        ["tests", _] => class("tests", FileKind::TestOrBench),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    /// Numeric literal (contents irrelevant to every rule).
    Num,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: u32,
    col: u32,
}

#[derive(Debug, Clone)]
struct Comment {
    /// Text after the `//` (line comments only; block comments are skipped
    /// but never carry annotations).
    text: String,
    line: u32,
    col: u32,
    /// True when nothing but whitespace precedes the comment on its line.
    own_line: bool,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into code tokens and line comments, skipping string/char
/// literal and comment *contents* so rule matching never fires inside them.
fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut line_has_code = false;

    // Consumes a (non-raw) string body starting after the opening quote.
    let eat_escaped_string =
        |i: &mut usize, line: &mut u32, col: &mut u32, chars: &[char], quote: char| {
            while *i < chars.len() {
                let c = chars[*i];
                *i += 1;
                *col += 1;
                match c {
                    '\\' if *i < chars.len() => {
                        // Skip the escaped character (covers \" and \\).
                        if chars[*i] == '\n' {
                            *line += 1;
                            *col = 1;
                        } else {
                            *col += 1;
                        }
                        *i += 1;
                    }
                    '\n' => {
                        *line += 1;
                        *col = 1;
                    }
                    c if c == quote => break,
                    _ => {}
                }
            }
        };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            line_has_code = false;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_col = col;
            let mut text = String::new();
            i += 2;
            col += 2;
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
                col += 1;
            }
            comments.push(Comment {
                text,
                line,
                col: start_col,
                own_line: !line_has_code,
            });
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            // Nested block comment; contents (and any annotations in them)
            // are ignored.
            let mut depth = 1u32;
            i += 2;
            col += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                    col += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                    col += 2;
                } else if chars[i] == '\n' {
                    i += 1;
                    line += 1;
                    col = 1;
                } else {
                    i += 1;
                    col += 1;
                }
            }
            continue;
        }
        // String literal.
        if c == '"' {
            line_has_code = true;
            i += 1;
            col += 1;
            eat_escaped_string(&mut i, &mut line, &mut col, &chars, '"');
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            line_has_code = true;
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: skip to the closing quote.
                i += 2;
                col += 2;
                eat_escaped_string(&mut i, &mut line, &mut col, &chars, '\'');
                continue;
            }
            if i + 1 < n && is_ident_char(chars[i + 1]) {
                let mut k = i + 1;
                while k < n && is_ident_char(chars[k]) {
                    k += 1;
                }
                if k < n && chars[k] == '\'' {
                    // 'a' — a char literal.
                    col += (k + 1 - i) as u32;
                    i = k + 1;
                } else {
                    // 'lifetime — no token needed.
                    col += (k - i) as u32;
                    i = k;
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                // Non-alphanumeric char literal like '€' or '('.
                i += 3;
                col += 3;
                continue;
            }
            i += 1;
            col += 1;
            continue;
        }
        // Identifier (and raw/byte string heads).
        if is_ident_start(c) {
            line_has_code = true;
            let start = i;
            let start_col = col;
            while i < n && is_ident_char(chars[i]) {
                i += 1;
                col += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            if matches!(ident.as_str(), "r" | "b" | "br") {
                // r"…", r#"…"#, b"…", br#"…"# string forms.
                let mut k = i;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    if ident == "b" && hashes == 0 {
                        // Byte string with ordinary escapes.
                        i = k + 1;
                        col += 1;
                        eat_escaped_string(&mut i, &mut line, &mut col, &chars, '"');
                    } else {
                        // Raw string: ends at `"` + the same number of `#`.
                        i = k + 1;
                        col += (hashes + 1) as u32;
                        while i < n {
                            if chars[i] == '"'
                                && chars[i + 1..]
                                    .iter()
                                    .take(hashes)
                                    .filter(|&&h| h == '#')
                                    .count()
                                    == hashes
                            {
                                i += 1 + hashes;
                                col += (1 + hashes) as u32;
                                break;
                            }
                            if chars[i] == '\n' {
                                line += 1;
                                col = 1;
                            } else {
                                col += 1;
                            }
                            i += 1;
                        }
                    }
                    continue;
                }
            }
            tokens.push(Token {
                tok: Tok::Ident(ident),
                line,
                col: start_col,
            });
            continue;
        }
        // Numeric literal; a `.` belongs to the number only when a digit
        // follows (so `pair.0.unwrap()` still yields a `.`-`unwrap` pair).
        if c.is_ascii_digit() {
            line_has_code = true;
            let start_col = col;
            while i < n {
                let d = chars[i];
                let in_number =
                    is_ident_char(d) || (d == '.' && i + 1 < n && chars[i + 1].is_ascii_digit());
                if !in_number {
                    break;
                }
                i += 1;
                col += 1;
            }
            tokens.push(Token {
                tok: Tok::Num,
                line,
                col: start_col,
            });
            continue;
        }
        line_has_code = true;
        tokens.push(Token {
            tok: Tok::Punct(c),
            line,
            col,
        });
        i += 1;
        col += 1;
    }
    (tokens, comments)
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Token-index ranges (half-open) covered by `#[cfg(test)]` / `#[test]`
/// items: rules D001/D004 do not apply inside them.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(tokens, i + 1, '[', ']') else {
            i += 1;
            continue;
        };
        let attr = &tokens[i + 2..attr_end];
        let has = |name: &str| attr.iter().any(|t| t.tok == Tok::Ident(name.to_string()));
        // `#[cfg(not(test))]` guards *non*-test code.
        let is_test_attr = has("test") && !has("not");
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut k = attr_end + 1;
        while k < tokens.len() && tokens[k].tok == Tok::Punct('#') {
            match matching_bracket(tokens, k + 1, '[', ']') {
                Some(e) => k = e + 1,
                None => break,
            }
        }
        // The item ends at the first `;` at depth 0, or at the `}` closing
        // the first `{`.
        let mut depth = 0i32;
        let mut end = k;
        while end < tokens.len() {
            match tokens[end].tok {
                Tok::Punct(';') if depth == 0 => {
                    end += 1;
                    break;
                }
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        regions.push((i, end));
        i = end;
    }
    regions
}

/// Index of the token holding the `close` matching the `open` expected at
/// `start` (which must point at the opening token).
fn matching_bracket(tokens: &[Token], start: usize, open: char, close: char) -> Option<usize> {
    if tokens.get(start)?.tok != Tok::Punct(open) {
        return None;
    }
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(start) {
        match t.tok {
            Tok::Punct(c) if c == open => depth += 1,
            Tok::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

/// Per-line allow sets plus D000 findings for malformed annotations.
fn collect_allows(
    file: &str,
    comments: &[Comment],
    token_lines: &BTreeSet<u32>,
    findings: &mut Vec<Finding>,
) -> BTreeMap<u32, BTreeSet<Rule>> {
    let mut allows: BTreeMap<u32, BTreeSet<Rule>> = BTreeMap::new();
    for c in comments {
        // Doc comments (`///`, `//!`) are prose, never annotations — they
        // may legitimately *mention* the annotation syntax.
        if c.text.starts_with('/') || c.text.starts_with('!') {
            continue;
        }
        // Only the tool name immediately followed by a colon marks an
        // annotation attempt; plain prose mentioning the tool is ignored.
        let Some(pos) = c.text.find("mar-lint:") else {
            continue;
        };
        let mut bad = |message: &str| {
            findings.push(Finding {
                file: file.to_string(),
                line: c.line,
                col: c.col,
                rule: Rule::D000,
                message: message.to_string(),
            });
        };
        let rest = c.text[pos + "mar-lint".len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            bad("malformed annotation: expected `mar-lint: allow(RULE, …) — <reason>`");
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            bad("malformed annotation: only `allow(RULE, …)` is supported");
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("malformed annotation: missing `(` after `allow`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("malformed annotation: missing `)` after the rule list");
            continue;
        };
        let mut rules = BTreeSet::new();
        let mut unknown = None;
        for part in rest[..close].split(',') {
            match Rule::parse(part) {
                Some(Rule::D000) | None => unknown = Some(part.trim().to_string()),
                Some(r) => {
                    rules.insert(r);
                }
            }
        }
        if let Some(u) = unknown {
            bad(&format!("unknown rule `{u}` in allow annotation"));
            continue;
        }
        if rules.is_empty() {
            bad("allow annotation names no rule");
            continue;
        }
        // The reason is mandatory: anything substantive after the `)` and
        // its separator punctuation.
        let reason = rest[close + 1..].trim_matches(|ch: char| {
            ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | '·')
        });
        if reason.is_empty() {
            bad("allow annotation requires a reason: `… allow(RULE) — <reason>`");
            continue;
        }
        // A trailing annotation covers its own line; an own-line annotation
        // covers the next line holding code.
        let target = if c.own_line {
            token_lines.range(c.line + 1..).next().copied()
        } else {
            Some(c.line)
        };
        if let Some(t) = target {
            allows.entry(t).or_default().extend(rules.iter().copied());
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Rule engine
// ---------------------------------------------------------------------------

/// Lints one file's source under its workspace-relative path. Paths that
/// [`classify`] rejects return no findings.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let Some(class) = classify(rel) else {
        return Vec::new();
    };
    let (tokens, comments) = tokenize(src);
    let regions = test_regions(&tokens);
    let in_test = |idx: usize| regions.iter().any(|&(a, b)| a <= idx && idx < b);
    let token_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();

    let mut findings = Vec::new();
    let allows = collect_allows(rel, &comments, &token_lines, &mut findings);
    let allowed = |line: u32, rule: Rule| allows.get(&line).is_some_and(|s| s.contains(&rule));

    let library_code = matches!(class.kind, FileKind::CrateRoot | FileKind::Library);
    let deterministic = library_code && DETERMINISTIC_CRATES.contains(&class.crate_name.as_str());

    let mut push = |t: &Token, rule: Rule, message: String| {
        if !allowed(t.line, rule) {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                col: t.col,
                rule,
                message,
            });
        }
    };

    for (idx, t) in tokens.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        match name.as_str() {
            // D001 — hashed collections in deterministic library code.
            "HashMap" | "HashSet" if deterministic && !in_test(idx) => {
                push(
                    t,
                    Rule::D001,
                    format!(
                        "`{name}` in deterministic crate `{}`: hash iteration order differs per \
                         map instance; use `BTreeMap`/`BTreeSet` (or justify a membership-only \
                         use with `// mar-lint: allow(D001) — <reason>`)",
                        class.crate_name
                    ),
                );
            }
            // D002 — NaN-panicking comparator.
            "partial_cmp" => {
                if let Some(close) = matching_bracket(&tokens, idx + 1, '(', ')') {
                    if tokens.get(close + 1).map(|t| &t.tok) == Some(&Tok::Punct('.')) {
                        if let Some(Tok::Ident(m)) = tokens.get(close + 2).map(|t| &t.tok) {
                            if m == "unwrap" || m == "expect" {
                                push(
                                    t,
                                    Rule::D002,
                                    format!(
                                        "`partial_cmp(..).{m}(..)` panics on NaN and is not a \
                                         total order; use `f64::total_cmp`"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            // D003 — ambient nondeterminism.
            "Instant"
                if tokens.get(idx + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(idx + 2).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(idx + 3).map(|t| &t.tok)
                        == Some(&Tok::Ident("now".to_string())) =>
            {
                push(
                    t,
                    Rule::D003,
                    "`Instant::now` is wall-clock nondeterminism; keep timing in the CLI \
                     progress layer and justify it with `// mar-lint: allow(D003) — <reason>`"
                        .to_string(),
                );
            }
            "SystemTime" | "thread_rng" | "RandomState" => {
                push(
                    t,
                    Rule::D003,
                    format!(
                        "`{name}` is ambient nondeterminism; results must be a pure function \
                         of explicit inputs and seeds"
                    ),
                );
            }
            // D004 — panicking calls in library code.
            "unwrap" | "expect" if library_code && !in_test(idx) => {
                let after_dot = idx > 0 && tokens[idx - 1].tok == Tok::Punct('.');
                let called = tokens.get(idx + 1).map(|t| &t.tok) == Some(&Tok::Punct('('));
                if after_dot && called {
                    push(
                        t,
                        Rule::D004,
                        format!(
                            "`.{name}(..)` in library code; handle the case, restructure, or \
                             justify the invariant with `// mar-lint: allow(D004) — <reason>`"
                        ),
                    );
                }
            }
            "panic" | "todo" | "unimplemented"
                if library_code
                    && !in_test(idx)
                    && tokens.get(idx + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) =>
            {
                push(
                    t,
                    Rule::D004,
                    format!(
                        "`{name}!` in library code; return an error or justify with \
                         `// mar-lint: allow(D004) — <reason>`"
                    ),
                );
            }
            _ => {}
        }
    }

    // D005 — crate roots must forbid unsafe code.
    if class.kind == FileKind::CrateRoot {
        let has_forbid = tokens.windows(4).any(|w| {
            w[0].tok == Tok::Ident("forbid".to_string())
                && w[1].tok == Tok::Punct('(')
                && w[2].tok == Tok::Ident("unsafe_code".to_string())
                && w[3].tok == Tok::Punct(')')
        });
        if !has_forbid {
            findings.push(Finding {
                file: rel.to_string(),
                line: 1,
                col: 1,
                rule: Rule::D005,
                message: "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    findings.sort();
    findings
}

// ---------------------------------------------------------------------------
// Workspace walking
// ---------------------------------------------------------------------------

/// Lints a set of `(workspace-relative path, source)` pairs: per-file
/// rules (D001–D005) on each file plus the workspace-wide concurrency
/// pass (D006–D008) across the whole set. Findings come back sorted by
/// `(file, line, col, rule)`.
pub fn lint_files(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, src) in files {
        findings.extend(lint_source(rel, src));
    }
    findings.extend(concurrency::analyze(files));
    findings.sort();
    findings.dedup();
    findings
}

/// Lints every non-vendor workspace source file under `root` and returns
/// the findings sorted by `(file, line, col, rule)`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for path in files {
        let rel = match path.strip_prefix(root) {
            Ok(p) => p
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/"),
            Err(_) => continue,
        };
        if classify(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint_files(&sources))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures") || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as a JSON document (stable field order, sorted input).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET_LIB: &str = "crates/core/src/fake.rs";

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        let mut rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
        rules.sort();
        rules
    }

    #[test]
    fn classify_roles() {
        assert_eq!(
            classify("crates/core/src/lib.rs").map(|c| c.kind),
            Some(FileKind::CrateRoot)
        );
        assert_eq!(
            classify("crates/bench/src/bin/reproduce.rs").map(|c| c.kind),
            Some(FileKind::Bin)
        );
        assert_eq!(
            classify("crates/rtree/tests/properties.rs").map(|c| c.kind),
            Some(FileKind::TestOrBench)
        );
        assert_eq!(
            classify("crates/bench/benches/fig8_retrieval.rs").map(|c| c.kind),
            Some(FileKind::TestOrBench)
        );
        assert_eq!(
            classify("examples/quickstart.rs").map(|c| c.kind),
            Some(FileKind::Bin)
        );
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("crates/lint/tests/fixtures/d001_fail.rs"), None);
        assert_eq!(classify("README.md"), None);
    }

    #[test]
    fn strings_comments_and_doc_comments_never_fire() {
        let src = r##"
            //! HashMap in docs is fine; so is partial_cmp().unwrap() prose.
            /* block with Instant::now and nested /* HashSet */ still fine */
            pub fn f() -> &'static str {
                let _lifetime: &'static str = "HashMap<SystemTime> .unwrap()";
                let _raw = r#"thread_rng() and panic!"#;
                let _ch = '"';
                let _esc = '\'';
                "partial_cmp().unwrap()"
            }
        "##;
        assert!(lint_source(DET_LIB, src).is_empty());
    }

    #[test]
    fn d001_fires_only_in_deterministic_library_code() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, src)), vec![Rule::D001]);
        // The lint crate itself is not on the deterministic list.
        assert!(lint_source("crates/lint/src/fake.rs", src).is_empty());
        // Test targets are exempt.
        assert!(lint_source("crates/core/tests/fake.rs", src).is_empty());
        // Bin targets are exempt.
        assert!(lint_source("crates/bench/src/bin/fake.rs", src).is_empty());
    }

    #[test]
    fn d001_exempts_cfg_test_modules() {
        let src = r#"
            pub fn lib_code() {}
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                #[test]
                fn t() {
                    let _m: HashMap<u32, u32> = HashMap::new();
                }
            }
        "#;
        assert!(lint_source(DET_LIB, src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, src)), vec![Rule::D001]);
    }

    #[test]
    fn d002_fires_across_lines_and_for_expect() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a\n        .partial_cmp(b)\n        .expect(\"NaN\"));\n}\n";
        let f = lint_source(DET_LIB, src);
        // `.expect(..)` in library code also fires D004 — both vanish when
        // the comparator migrates to `total_cmp`.
        assert_eq!(rules_of(&f), vec![Rule::D002, Rule::D004]);
        assert_eq!(f[0].line, 3);
        // total_cmp passes.
        let ok = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(lint_source(DET_LIB, ok).is_empty());
        // partial_cmp without a panicking projection passes (e.g. inside a
        // PartialOrd impl).
        let ok2 = "fn g(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }\n";
        assert!(lint_source(DET_LIB, ok2).is_empty());
    }

    #[test]
    fn d002_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn s(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, src)), vec![Rule::D002]);
    }

    #[test]
    fn d003_patterns() {
        let src = "fn f() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, src)), vec![Rule::D003]);
        // `Instant` as a stored value (no ::now) is fine.
        let ok = "fn f(t: std::time::Instant) -> std::time::Instant { t }\n";
        assert!(lint_source(DET_LIB, ok).is_empty());
        let sys = "fn f() { let _ = std::time::SystemTime::UNIX_EPOCH; }\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, sys)), vec![Rule::D003]);
    }

    #[test]
    fn d004_patterns_and_exemptions() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, src)), vec![Rule::D004]);
        let p = "pub fn f() { panic!(\"boom\"); }\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, p)), vec![Rule::D004]);
        // Bins may unwrap.
        assert!(lint_source("crates/bench/src/bin/fake.rs", src).is_empty());
        // `unwrap_or` is not `unwrap`.
        let ok = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(lint_source(DET_LIB, ok).is_empty());
        // Tuple-field receiver still fires (number lexing must not eat the dot).
        let tup = "pub fn f(x: (Option<u32>, u8)) -> u32 { x.0.unwrap() }\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, tup)), vec![Rule::D004]);
    }

    #[test]
    fn d005_checks_crate_roots_only() {
        let src = "pub fn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("crates/core/src/lib.rs", src)),
            vec![Rule::D005]
        );
        assert!(lint_source(DET_LIB, src).is_empty());
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source("crates/core/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses_same_line_and_next_line() {
        let same = "use std::collections::HashMap; // mar-lint: allow(D001) — lookup-only\n";
        assert!(lint_source(DET_LIB, same).is_empty());
        let above = "// mar-lint: allow(D001) — lookup-only\nuse std::collections::HashMap;\n";
        assert!(lint_source(DET_LIB, above).is_empty());
        // The annotation is rule-specific.
        let wrong = "use std::collections::HashMap; // mar-lint: allow(D004) — wrong rule\n";
        assert_eq!(rules_of(&lint_source(DET_LIB, wrong)), vec![Rule::D001]);
        // And line-specific: it must not leak past the next code line.
        let leak =
            "// mar-lint: allow(D001) — first only\nuse std::collections::HashMap;\nuse std::collections::HashSet;\n";
        let f = lint_source(DET_LIB, leak);
        assert_eq!(rules_of(&f), vec![Rule::D001]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_rejected_and_does_not_suppress() {
        let src = "use std::collections::HashMap; // mar-lint: allow(D001)\n";
        let f = lint_source(DET_LIB, src);
        assert_eq!(rules_of(&f), vec![Rule::D000, Rule::D001]);
        let dashes = "use std::collections::HashMap; // mar-lint: allow(D001) — \n";
        assert_eq!(
            rules_of(&lint_source(DET_LIB, dashes)),
            vec![Rule::D000, Rule::D001]
        );
    }

    #[test]
    fn allow_with_unknown_rule_is_rejected() {
        let src = "pub fn f() {} // mar-lint: allow(D9) — nope\n";
        let f = lint_source(DET_LIB, src);
        assert_eq!(rules_of(&f), vec![Rule::D000]);
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn prose_mentions_of_the_tool_are_not_annotations() {
        let prose =
            "//! `mar-lint` — run it with cargo.\npub fn f() {} // checked by mar-lint in CI\n";
        assert!(lint_source(DET_LIB, prose).is_empty());
        // Even the full syntax inside a doc comment is documentation.
        let doc = "/// Use `// mar-lint: allow(D9)` — no wait, D9 is not a rule.\npub fn f() {}\n";
        assert!(lint_source(DET_LIB, doc).is_empty());
    }

    #[test]
    fn multi_rule_allow() {
        let src = "use std::collections::HashMap; // mar-lint: allow(D001, D004) — shared justification\n";
        assert!(lint_source(DET_LIB, src).is_empty());
    }

    #[test]
    fn findings_format() {
        let f = lint_source(DET_LIB, "use std::collections::HashSet;\n");
        assert_eq!(f.len(), 1);
        let line = f[0].to_string();
        assert!(
            line.starts_with("crates/core/src/fake.rs:1:23 [D001]"),
            "{line}"
        );
        let json = to_json(&f);
        assert!(json.starts_with("{\"findings\":[{\"file\":"));
        assert!(json.ends_with("\"count\":1}"));
        assert!(json.contains("\"rule\":\"D001\""));
    }
}
