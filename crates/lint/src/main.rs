//! CLI for `mar-lint`: lints the workspace and exits 1 on any finding.
//!
//! Usage: `cargo run -p mar-lint [-- --format json] [--root PATH]`

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout ignoring `EPIPE`, so `mar-lint | head` exits quietly
/// instead of panicking (Rust leaves `SIGPIPE` ignored by default).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(text.as_bytes());
    let _ = out.write_all(b"\n");
}

fn usage() -> &'static str {
    "mar-lint — workspace determinism & float-soundness linter\n\
     \n\
     USAGE:\n\
     \tmar-lint [--format text|json] [--root PATH]\n\
     \n\
     OPTIONS:\n\
     \t--format text|json\toutput format (default: text)\n\
     \t--root PATH\t\tworkspace root (default: ascend from cwd)\n\
     \t-h, --help\t\tprint this help\n\
     \n\
     EXIT CODES:\n\
     \t0  no findings\n\
     \t1  findings reported\n\
     \t2  usage or I/O error"
}

/// Ascends from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!(
                        "mar-lint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mar-lint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                emit(usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mar-lint: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("mar-lint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mar-lint: no workspace root found (looked for Cargo.toml + crates/); \
                         pass --root PATH"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match mar_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mar-lint: I/O error while linting {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format_json {
        emit(&mar_lint::to_json(&findings));
    } else {
        let mut report = findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        if findings.is_empty() {
            report = "mar-lint: 0 findings".to_string();
        } else {
            eprintln!("mar-lint: {} finding(s)", findings.len());
        }
        emit(&report);
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
