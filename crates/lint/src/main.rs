//! CLI for `mar-lint`: lints the workspace and exits 1 on any finding.
//!
//! Usage: `cargo run -p mar-lint [-- --format json] [--root PATH]
//! [--baseline FILE | --record-baseline FILE]`
//!
//! The baseline mode lets a new rule land before the workspace is clean:
//! `--record-baseline` writes the current findings to a file, and
//! `--baseline` fails only on findings *not* in that file. Baseline
//! entries match on `(file, rule, message)` — line/column drift from
//! unrelated edits does not resurrect a recorded finding.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use mar_lint::Finding;

/// Writes to stdout ignoring `EPIPE`, so `mar-lint | head` exits quietly
/// instead of panicking (Rust leaves `SIGPIPE` ignored by default).
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(text.as_bytes());
    let _ = out.write_all(b"\n");
}

fn usage() -> &'static str {
    "mar-lint — workspace determinism, float-soundness & concurrency linter\n\
     \n\
     USAGE:\n\
     \tmar-lint [--format text|json] [--root PATH]\n\
     \t         [--baseline FILE | --record-baseline FILE]\n\
     \n\
     OPTIONS:\n\
     \t--format text|json\toutput format (default: text)\n\
     \t--root PATH\t\tworkspace root (default: ascend from cwd)\n\
     \t--baseline FILE\t\tfail only on findings not recorded in FILE\n\
     \t--record-baseline FILE\twrite current findings to FILE and exit 0\n\
     \t-h, --help\t\tprint this help\n\
     \n\
     EXIT CODES:\n\
     \t0  no findings (or none beyond the baseline)\n\
     \t1  findings reported\n\
     \t2  usage or I/O error"
}

/// The baseline identity of a finding: file, rule, and message — line and
/// column are deliberately excluded so unrelated edits that shift code
/// around do not resurrect recorded findings.
fn baseline_key(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.file, f.rule, f.message)
}

/// Renders findings in the baseline file format (one text finding per
/// line, same as `--format text`).
fn baseline_document(findings: &[Finding]) -> String {
    let mut doc = String::from(
        "# mar-lint baseline — findings recorded here do not fail the lint.\n\
         # Regenerate with: cargo run -p mar-lint -- --record-baseline <this file>\n",
    );
    for f in findings {
        doc.push_str(&f.to_string());
        doc.push('\n');
    }
    doc
}

/// Parses a baseline file back into match keys. Lines are the `Display`
/// form (`file:line:col [RULE] message`); blank lines and `#` comments
/// are skipped. Unparseable lines are ignored (they can never match, so
/// a corrupted baseline fails closed).
fn parse_baseline(text: &str) -> BTreeSet<String> {
    let mut keys = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `file:line:col [RULE] message`
        let Some(bracket) = line.find(" [") else {
            continue;
        };
        let Some(close) = line[bracket..].find("] ") else {
            continue;
        };
        let rule = &line[bracket + 2..bracket + close];
        let message = &line[bracket + close + 2..];
        let mut loc = line[..bracket].rsplitn(3, ':');
        let _col = loc.next();
        let _line = loc.next();
        let Some(file) = loc.next() else { continue };
        keys.insert(format!("{file}\t{rule}\t{message}"));
    }
    keys
}

/// Ascends from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut record_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mar-lint: --baseline expects a file path");
                    return ExitCode::from(2);
                }
            },
            "--record-baseline" => match args.next() {
                Some(p) => record_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mar-lint: --record-baseline expects a file path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!(
                        "mar-lint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mar-lint: --root expects a path");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                emit(usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mar-lint: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("mar-lint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "mar-lint: no workspace root found (looked for Cargo.toml + crates/); \
                         pass --root PATH"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    if baseline.is_some() && record_baseline.is_some() {
        eprintln!("mar-lint: --baseline and --record-baseline are mutually exclusive");
        return ExitCode::from(2);
    }

    let mut findings = match mar_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mar-lint: I/O error while linting {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = record_baseline {
        if let Err(e) = std::fs::write(&path, baseline_document(&findings)) {
            eprintln!("mar-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        emit(&format!(
            "mar-lint: recorded {} finding(s) to {}",
            findings.len(),
            path.display()
        ));
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mar-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let known = parse_baseline(&text);
        findings.retain(|f| !known.contains(&baseline_key(f)));
    }

    if format_json {
        emit(&mar_lint::to_json(&findings));
    } else {
        let mut report = findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        if findings.is_empty() {
            report = "mar-lint: 0 findings".to_string();
        } else {
            eprintln!("mar-lint: {} finding(s)", findings.len());
        }
        emit(&report);
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
