//! End-to-end CLI tests: exit codes, `file:line:col` output, and the JSON
//! format, exercised on a throwaway mini-workspace under `target/`.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Builds a tiny fake workspace (inside `target/`, which both git and the
/// lint walker ignore) whose one crate root violates D001/D005.
fn fake_workspace(name: &str, src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("mkdir fake workspace");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    fs::write(src_dir.join("lib.rs"), src).expect("write lib.rs");
    root
}

fn run_lint(root: &PathBuf, extra: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mar-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mar-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn failing_workspace_exits_one_with_file_line_findings() {
    // `demo` is not a deterministic crate, so HashMap passes D001 — but the
    // missing forbid and the library unwrap are violations anywhere.
    let root = fake_workspace(
        "cli-fail",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let (code, stdout, stderr) = run_lint(&root, &[]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("crates/demo/src/lib.rs:1:1 [D005]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2:7 [D004]"),
        "{stdout}"
    );
    assert!(stderr.contains("2 finding(s)"), "{stderr}");
}

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_workspace(
        "cli-pass",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    );
    let (code, stdout, _) = run_lint(&root, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 findings"), "{stdout}");
}

#[test]
fn json_format_is_machine_readable() {
    let root = fake_workspace("cli-json", "pub fn f() {\n    todo!()\n}\n");
    let (code, stdout, _) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, Some(1), "{stdout}");
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.contains("\"rule\":\"D004\""), "{line}");
    assert!(line.contains("\"rule\":\"D005\""), "{line}");
    assert!(line.ends_with("\"count\":2}"), "{line}");
}

#[test]
fn baseline_record_then_compare_then_new_finding() {
    // Two violations: a missing forbid and a library unwrap.
    let root = fake_workspace(
        "cli-baseline",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let baseline = root.join("lint-baseline.txt");
    let bl = baseline.to_str().expect("utf-8 tmpdir");

    // Record: exits 0 and writes both findings.
    let (code, stdout, stderr) = run_lint(&root, &["--record-baseline", bl]);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("recorded 2 finding(s)"), "{stdout}");
    let doc = fs::read_to_string(&baseline).expect("read recorded baseline");
    assert!(doc.contains("[D004]"), "{doc}");
    assert!(doc.contains("[D005]"), "{doc}");

    // Compare against the fresh baseline: everything known, exit 0.
    let (code, stdout, _) = run_lint(&root, &["--baseline", bl]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 findings"), "{stdout}");

    // Introduce a new violation above the old ones (shifting their lines):
    // only the new finding fails the run.
    fs::write(
        root.join("crates/demo/src/lib.rs"),
        "pub fn g() {\n    panic!(\"new\")\n}\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .expect("rewrite lib.rs");
    let (code, stdout, stderr) = run_lint(&root, &["--baseline", bl]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("panic"), "{stdout}");
    assert!(
        !stdout.contains("unwrap"),
        "baselined finding resurfaced despite its line shifting: {stdout}"
    );
    assert!(stderr.contains("1 finding(s)"), "{stderr}");
}

#[test]
fn missing_baseline_file_exits_two() {
    let root = fake_workspace(
        "cli-baseline-missing",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    let (code, _, stderr) = run_lint(&root, &["--baseline", "does-not-exist.txt"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("cannot read baseline"), "{stderr}");
}

#[test]
fn baseline_and_record_baseline_are_mutually_exclusive() {
    let root = fake_workspace(
        "cli-baseline-excl",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    let (code, _, stderr) = run_lint(&root, &["--baseline", "a", "--record-baseline", "b"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}

#[test]
fn unknown_arguments_exit_two() {
    let (code, _, stderr) = {
        let out = Command::new(env!("CARGO_BIN_EXE_mar-lint"))
            .arg("--bogus")
            .output()
            .expect("spawn mar-lint");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown argument"), "{stderr}");
}
