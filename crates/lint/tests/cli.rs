//! End-to-end CLI tests: exit codes, `file:line:col` output, and the JSON
//! format, exercised on a throwaway mini-workspace under `target/`.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// Builds a tiny fake workspace (inside `target/`, which both git and the
/// lint walker ignore) whose one crate root violates D001/D005.
fn fake_workspace(name: &str, src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("mkdir fake workspace");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    fs::write(src_dir.join("lib.rs"), src).expect("write lib.rs");
    root
}

fn run_lint(root: &PathBuf, extra: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mar-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn mar-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn failing_workspace_exits_one_with_file_line_findings() {
    // `demo` is not a deterministic crate, so HashMap passes D001 — but the
    // missing forbid and the library unwrap are violations anywhere.
    let root = fake_workspace(
        "cli-fail",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let (code, stdout, stderr) = run_lint(&root, &[]);
    assert_eq!(code, Some(1), "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("crates/demo/src/lib.rs:1:1 [D005]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2:7 [D004]"),
        "{stdout}"
    );
    assert!(stderr.contains("2 finding(s)"), "{stderr}");
}

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_workspace(
        "cli-pass",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    );
    let (code, stdout, _) = run_lint(&root, &[]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("0 findings"), "{stdout}");
}

#[test]
fn json_format_is_machine_readable() {
    let root = fake_workspace("cli-json", "pub fn f() {\n    todo!()\n}\n");
    let (code, stdout, _) = run_lint(&root, &["--format", "json"]);
    assert_eq!(code, Some(1), "{stdout}");
    let line = stdout.trim();
    assert!(line.starts_with("{\"findings\":["), "{line}");
    assert!(line.contains("\"rule\":\"D004\""), "{line}");
    assert!(line.contains("\"rule\":\"D005\""), "{line}");
    assert!(line.ends_with("\"count\":2}"), "{line}");
}

#[test]
fn unknown_arguments_exit_two() {
    let (code, _, stderr) = {
        let out = Command::new(env!("CARGO_BIN_EXE_mar-lint"))
            .arg("--bogus")
            .output()
            .expect("spawn mar-lint");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown argument"), "{stderr}");
}
