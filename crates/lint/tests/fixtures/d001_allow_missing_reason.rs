// mar-lint: allow(D001)
use std::collections::HashSet;

pub fn dedup_count(xs: &[u32]) -> usize {
    let seen: HashSet<u32> = xs.iter().copied().collect(); // mar-lint: allow(D001) — membership-only
    seen.len()
}
