//! D007 passing fixture: the guard is dropped before blocking, and
//! argument-taking `join` (string join, not `JoinHandle::join`) is not a
//! blocking operation.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Drain {
    inner: Mutex<u32>,
    rx: Receiver<u32>,
}

impl Drain {
    pub fn drain_one(&self) {
        let g = self.inner.lock();
        drop(g);
        let v = self.rx.recv();
        let _ = v;
    }

    pub fn render(&self, lines: &[String]) -> String {
        let g = self.inner.lock();
        let out = lines.join("\n");
        drop(g);
        out
    }
}
