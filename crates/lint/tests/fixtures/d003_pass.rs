pub fn stamp(tick: u64) -> u64 {
    tick + 1
}
