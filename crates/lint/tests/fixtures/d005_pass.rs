//! A crate root with the unsafe-code forbid.

#![forbid(unsafe_code)]

pub fn f() {}
