//! D007 allow fixture: blocking under the guard, justified.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Drain {
    inner: Mutex<u32>,
    rx: Receiver<u32>,
}

impl Drain {
    pub fn drain_one(&self) {
        let g = self.inner.lock();
        // mar-lint: allow(D007) — sender is in-process and never blocks for more than one tick
        let v = self.rx.recv();
        let _ = (g, v);
    }
}
