//! D006 failing fixture: ABBA lock ordering, one leg through a call.
//!
//! `forward` locks `alpha` and then calls `bump_beta`, which locks
//! `beta`; `backward` locks `beta` then `alpha` directly. Two threads
//! running `forward` and `backward` concurrently deadlock.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        self.bump_beta();
        drop(a);
    }

    fn bump_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
