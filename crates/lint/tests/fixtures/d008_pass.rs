//! D008 passing fixture: the guard is dropped before the call that
//! re-acquires the same lock.

use std::sync::Mutex;

pub struct Counter {
    n: Mutex<u32>,
}

impl Counter {
    pub fn outer(&self) {
        let g = self.n.lock();
        drop(g);
        self.inner_total();
    }

    fn inner_total(&self) -> u32 {
        let g = self.n.lock();
        drop(g);
        0
    }
}
