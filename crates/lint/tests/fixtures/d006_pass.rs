//! D006 passing fixture: every function takes `alpha` before `beta`
//! (one consistent global order), and a textually "reversed" pair of
//! acquisitions is fine when the first guard is block-scoped and dead
//! before the second lock is taken.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn also_forward(&self) {
        let a = self.alpha.lock();
        self.bump_beta();
        drop(a);
    }

    fn bump_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }

    pub fn sequential(&self) {
        let snapshot = {
            let b = self.beta.lock();
            0
        };
        let a = self.alpha.lock();
        drop(a);
        let _ = snapshot;
    }
}
