//! D008 failing fixture: `outer` holds the `n` guard across a call to
//! `inner_total`, which locks `n` again — a non-reentrant `Mutex`
//! self-deadlocks.

use std::sync::Mutex;

pub struct Counter {
    n: Mutex<u32>,
}

impl Counter {
    pub fn outer(&self) {
        let g = self.n.lock();
        self.inner_total();
        drop(g);
    }

    fn inner_total(&self) -> u32 {
        let g = self.n.lock();
        drop(g);
        0
    }
}
