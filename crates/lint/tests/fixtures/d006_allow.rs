//! D006 allow fixture: the same ABBA cycle as `d006_fail.rs`, justified
//! on one edge of the cycle. An allow on any edge line suppresses the
//! cycle report.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        // mar-lint: allow(D006) — shutdown-only path; forward() can no longer run here
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
