//! A crate root without the unsafe-code forbid.

pub fn f() {}
