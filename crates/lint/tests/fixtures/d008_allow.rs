//! D008 allow fixture: guard held across a same-lock call, justified at
//! the call site.

use std::sync::Mutex;

pub struct Counter {
    n: Mutex<u32>,
}

impl Counter {
    pub fn outer(&self) {
        let g = self.n.lock();
        // mar-lint: allow(D008) — inner_total is cfg-gated to a build where n is a no-op lock
        self.inner_total();
        drop(g);
    }

    fn inner_total(&self) -> u32 {
        let g = self.n.lock();
        drop(g);
        0
    }
}
