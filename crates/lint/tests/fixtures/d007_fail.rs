//! D007 failing fixture: a channel `recv()` while the `inner` guard is
//! live. Every thread contending for `inner` stalls until the sender
//! wakes this one up.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Drain {
    inner: Mutex<u32>,
    rx: Receiver<u32>,
}

impl Drain {
    pub fn drain_one(&self) {
        let g = self.inner.lock();
        let v = self.rx.recv();
        let _ = (g, v);
    }
}
