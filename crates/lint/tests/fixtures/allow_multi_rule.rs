//! Multi-rule allow fixture: one annotation naming two comma-separated
//! rules suppresses both on the same line.

pub fn probe(m: &std::collections::HashMap<u32, u32>, k: u32) -> u32 { *m.get(&k).unwrap() } // mar-lint: allow(D001,D004) — membership probe; absence is impossible by construction
