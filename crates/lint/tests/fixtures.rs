//! Fixture-based tests: each rule has one failing and one passing fixture
//! under `tests/fixtures/`, linted here under a pretend deterministic-crate
//! library path (the walker skips `fixtures` directories, so the deliberate
//! violations never pollute a workspace run).

use mar_lint::{lint_files, lint_source, Finding, Rule};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as if it were library code inside `mar-core`.
fn lint_as_core_lib(name: &str) -> Vec<Finding> {
    lint_source("crates/core/src/fixture.rs", &fixture(name))
}

/// Lints a fixture through [`lint_files`], so the workspace-wide
/// concurrency pass (D006–D008) runs over it.
fn lint_concurrency(name: &str) -> Vec<Finding> {
    lint_files(&[("crates/core/src/fixture.rs".to_string(), fixture(name))])
}

#[test]
fn d001_failing_fixture() {
    let f = lint_as_core_lib("d001_fail.rs");
    assert_eq!(f.len(), 3, "one finding per HashMap token: {f:#?}");
    assert!(f.iter().all(|x| x.rule == Rule::D001));
    assert_eq!((f[0].line, f[0].col), (1, 23), "use-declaration site");
    assert!(f[0].message.contains("BTreeMap"));
}

#[test]
fn d001_passing_fixture() {
    assert!(lint_as_core_lib("d001_pass.rs").is_empty());
}

#[test]
fn d001_allow_fixture_suppresses_with_reason() {
    assert!(lint_as_core_lib("d001_allow.rs").is_empty());
}

#[test]
fn d001_allow_without_reason_is_rejected() {
    let f = lint_as_core_lib("d001_allow_missing_reason.rs");
    // The bare annotation is itself a D000 finding AND fails to suppress
    // the D001 on the use-declaration it precedes.
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D000, Rule::D001],
        "{f:#?}"
    );
    assert_eq!(f[0].line, 1, "the malformed annotation line");
    assert_eq!(f[1].line, 2, "the unsuppressed use-declaration");
    assert!(f[0].message.contains("reason"));
}

#[test]
fn d002_failing_fixture() {
    let f = lint_as_core_lib("d002_fail.rs");
    assert!(f.iter().any(|x| x.rule == Rule::D002), "{f:#?}");
    let d002 = f.iter().find(|x| x.rule == Rule::D002).unwrap();
    assert_eq!(d002.line, 2);
    assert!(d002.message.contains("total_cmp"));
}

#[test]
fn d002_passing_fixture() {
    assert!(lint_as_core_lib("d002_pass.rs").is_empty());
}

#[test]
fn d003_failing_fixture() {
    let f = lint_as_core_lib("d003_fail.rs");
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D003]
    );
    assert_eq!(f[0].line, 2);
    // D003 applies even in bin targets outside the annotated timing layer.
    let binf = lint_source("crates/bench/src/bin/fixture.rs", &fixture("d003_fail.rs"));
    assert_eq!(binf.len(), 1);
}

#[test]
fn d003_passing_fixture() {
    assert!(lint_as_core_lib("d003_pass.rs").is_empty());
}

#[test]
fn d004_failing_fixture() {
    let f = lint_as_core_lib("d004_fail.rs");
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D004]
    );
    assert_eq!(f[0].line, 2);
    // The same code is fine in a bin target.
    assert!(lint_source("crates/bench/src/bin/fixture.rs", &fixture("d004_fail.rs")).is_empty());
}

#[test]
fn d004_passing_fixture_includes_test_module_unwrap() {
    assert!(lint_as_core_lib("d004_pass.rs").is_empty());
}

#[test]
fn d005_failing_fixture() {
    let f = lint_source("crates/core/src/lib.rs", &fixture("d005_fail.rs"));
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D005]
    );
    assert_eq!((f[0].line, f[0].col), (1, 1));
}

#[test]
fn d005_passing_fixture() {
    assert!(lint_source("crates/core/src/lib.rs", &fixture("d005_pass.rs")).is_empty());
}

#[test]
fn d006_failing_fixture() {
    let f = lint_concurrency("d006_fail.rs");
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D006],
        "{f:#?}"
    );
    // The witness chain names the cycle and both functions.
    assert!(
        f[0].message.contains("`alpha` → `beta` → `alpha`"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("forward"), "{}", f[0].message);
    assert!(f[0].message.contains("backward"), "{}", f[0].message);
    assert!(f[0].message.contains("bump_beta"), "{}", f[0].message);
}

#[test]
fn d006_passing_fixture() {
    assert!(lint_concurrency("d006_pass.rs").is_empty());
}

#[test]
fn d006_allow_fixture_suppresses_with_reason() {
    assert!(lint_concurrency("d006_allow.rs").is_empty());
}

#[test]
fn d007_failing_fixture() {
    let f = lint_concurrency("d007_fail.rs");
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D007],
        "{f:#?}"
    );
    assert!(f[0].message.contains("recv"), "{}", f[0].message);
    assert!(f[0].message.contains("`inner`"), "{}", f[0].message);
}

#[test]
fn d007_passing_fixture() {
    assert!(lint_concurrency("d007_pass.rs").is_empty());
}

#[test]
fn d007_allow_fixture_suppresses_with_reason() {
    assert!(lint_concurrency("d007_allow.rs").is_empty());
}

#[test]
fn d008_failing_fixture() {
    let f = lint_concurrency("d008_fail.rs");
    assert_eq!(
        f.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec![Rule::D008],
        "{f:#?}"
    );
    assert!(f[0].message.contains("inner_total"), "{}", f[0].message);
    assert!(f[0].message.contains("`n`"), "{}", f[0].message);
}

#[test]
fn d008_passing_fixture() {
    assert!(lint_concurrency("d008_pass.rs").is_empty());
}

#[test]
fn d008_allow_fixture_suppresses_with_reason() {
    assert!(lint_concurrency("d008_allow.rs").is_empty());
}

#[test]
fn multi_rule_allow_fixture_suppresses_both_rules() {
    assert!(lint_concurrency("allow_multi_rule.rs").is_empty());
}

#[test]
fn findings_render_as_file_line_col_rule() {
    let f = lint_as_core_lib("d004_fail.rs");
    assert_eq!(
        f[0].to_string(),
        format!("crates/core/src/fixture.rs:2:16 [D004] {}", f[0].message)
    );
}
