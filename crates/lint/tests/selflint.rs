//! The workspace must lint clean: `mar-lint` run over the repository root
//! reports zero findings. This is the test that keeps the determinism
//! invariants (DESIGN.md) enforced rather than aspirational.

use std::path::Path;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let findings = mar_lint::lint_workspace(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "mar-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
