//! Property tests for the motion predictor and its probability pipeline.

use mar_geom::{GridSpec, Point2, Rect2, SectorPartition};
use mar_motion::probability::{direction_probabilities, gaussian_block_probabilities};
use mar_motion::{MotionPredictor, PredictorConfig};
use proptest::prelude::*;

fn grid() -> GridSpec {
    GridSpec::new(
        Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
        25,
        25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Predictions stay finite under arbitrary bounded trajectories.
    #[test]
    fn predictions_always_finite(
        steps in prop::collection::vec((0.0f64..1000.0, 0.0f64..1000.0), 2..80),
        horizon in 1u32..20,
    ) {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        for (x, y) in &steps {
            p.observe(Point2::new([*x, *y]));
        }
        let pred = p.predict(horizon);
        prop_assert!(pred.mean.is_finite());
        prop_assert!(pred.cov[(0, 0)].is_finite() && pred.cov[(0, 0)] >= 0.0);
        prop_assert!(pred.cov[(1, 1)].is_finite() && pred.cov[(1, 1)] >= 0.0);
    }

    /// On exact linear motion, warm predictions land near the true line.
    #[test]
    fn linear_motion_error_bounded(
        x0 in 0.0f64..100.0, y0 in 0.0f64..100.0,
        vx in -5.0f64..5.0, vy in -5.0f64..5.0,
    ) {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        for t in 0..40 {
            p.observe(Point2::new([x0 + vx * t as f64, y0 + vy * t as f64]));
        }
        let truth = Point2::new([x0 + vx * 42.0, y0 + vy * 42.0]);
        let pred = p.predict(3);
        let speed = (vx * vx + vy * vy).sqrt();
        prop_assert!(
            pred.mean.distance(&truth) <= 0.5 + speed * 0.5,
            "predicted {:?} vs true {truth:?}", pred.mean
        );
    }

    /// Block probabilities are a distribution (sum 1) whenever non-empty.
    #[test]
    fn block_probabilities_are_distribution(
        steps in prop::collection::vec((100.0f64..900.0, 100.0f64..900.0), 3..40),
    ) {
        let g = grid();
        let mut p = MotionPredictor::new(PredictorConfig::default());
        for (x, y) in &steps {
            p.observe(Point2::new([*x, *y]));
        }
        let probs = gaussian_block_probabilities(&g, &p.predict_horizon(4));
        prop_assert!(!probs.is_empty());
        let total: f64 = probs.values().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        for v in probs.values() {
            prop_assert!(*v >= 0.0);
        }
    }

    /// Direction probabilities are a distribution for any k.
    #[test]
    fn direction_probabilities_are_distribution(
        k in 2usize..9,
        cx in 100.0f64..900.0, cy in 100.0f64..900.0,
        tx in 100.0f64..900.0, ty in 100.0f64..900.0,
    ) {
        let g = grid();
        let mut p = MotionPredictor::new(PredictorConfig::default());
        let a = Point2::new([cx, cy]);
        let b = Point2::new([tx, ty]);
        for i in 0..30 {
            p.observe(a.lerp(&b, i as f64 / 60.0));
        }
        let center = a.lerp(&b, 29.0 / 60.0);
        let probs = gaussian_block_probabilities(&g, &p.predict_horizon(4));
        let dir = direction_probabilities(&g, &center, &probs, &SectorPartition::axis_centered(k));
        prop_assert_eq!(dir.len(), k);
        let total: f64 = dir.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}

/// Deterministic check: the dominant direction of travel receives the
/// most probability mass across all four compass headings.
#[test]
fn dominant_direction_wins_across_headings() {
    let g = grid();
    let part = SectorPartition::axis_centered(4);
    for (heading, expect_sector) in [
        (0.0f64, 0usize),
        (std::f64::consts::FRAC_PI_2, 1),
        (std::f64::consts::PI, 2),
        (-std::f64::consts::FRAC_PI_2, 3),
    ] {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        let start = Point2::new([500.0, 500.0]);
        let v = mar_geom::Vec2::new([heading.cos(), heading.sin()]) * 8.0;
        let mut pos = start;
        for _ in 0..30 {
            p.observe(pos);
            pos += v;
        }
        let probs = gaussian_block_probabilities(&g, &p.predict_horizon(4));
        let dir = direction_probabilities(&g, &pos, &probs, &part);
        let best = dir
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, expect_sector, "heading {heading}: probs {dir:?}");
    }
}
