//! A standard linear Kalman filter (Welch & Bishop \[21\]).
//!
//! ```text
//! predict:  x̂ = A·x,          P = A·P·Aᵀ + Q
//! update:   y = z − H·x̂
//!           S = H·P·Hᵀ + R
//!           K = P·Hᵀ·S⁻¹
//!           x = x̂ + K·y,      P = (I − K·H)·P
//! ```
//!
//! The motion predictor uses this filter with a learned `A` (from RLS) and
//! an identity-on-positions `H`; it is also usable standalone, e.g. with a
//! constant-velocity model (see tests).

use crate::linalg::Mat;

/// A linear Kalman filter over an `n`-dimensional state.
#[derive(Debug, Clone)]
pub struct KalmanFilter {
    /// State estimate `x` (n).
    x: Vec<f64>,
    /// Estimate covariance `P` (n×n).
    p: Mat,
    /// Transition matrix `A` (n×n).
    a: Mat,
    /// Process noise `Q` (n×n).
    q: Mat,
    /// Observation matrix `H` (m×n).
    h: Mat,
    /// Observation noise `R` (m×m).
    r: Mat,
}

impl KalmanFilter {
    /// Creates a filter. All dimensions are validated against each other.
    pub fn new(x0: Vec<f64>, p0: Mat, a: Mat, q: Mat, h: Mat, r: Mat) -> Self {
        let n = x0.len();
        assert_eq!((p0.rows(), p0.cols()), (n, n), "P must be n×n");
        assert_eq!((a.rows(), a.cols()), (n, n), "A must be n×n");
        assert_eq!((q.rows(), q.cols()), (n, n), "Q must be n×n");
        assert_eq!(h.cols(), n, "H must be m×n");
        let m = h.rows();
        assert_eq!((r.rows(), r.cols()), (m, m), "R must be m×m");
        Self {
            x: x0,
            p: p0,
            a,
            q,
            h,
            r,
        }
    }

    /// Current state estimate.
    pub fn state(&self) -> &[f64] {
        &self.x
    }

    /// Current estimate covariance.
    pub fn covariance(&self) -> &Mat {
        &self.p
    }

    /// Replaces the transition matrix (the predictor re-learns `A` online).
    pub fn set_transition(&mut self, a: Mat) {
        assert_eq!((a.rows(), a.cols()), (self.x.len(), self.x.len()));
        self.a = a;
    }

    /// Overwrites the state estimate, keeping covariance.
    pub fn set_state(&mut self, x: Vec<f64>) {
        assert_eq!(x.len(), self.x.len());
        self.x = x;
    }

    /// Time update: advances the state one step.
    pub fn predict(&mut self) {
        self.x = self.a.mul_vec(&self.x);
        self.p = &(&(&self.a * &self.p) * &self.a.transpose()) + &self.q;
    }

    /// Measurement update with observation `z`. Returns the innovation
    /// (pre-fit residual). When `S` is numerically singular the update is
    /// skipped and `None` returned.
    pub fn update(&mut self, z: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(z.len(), self.h.rows());
        let hx = self.h.mul_vec(&self.x);
        let y: Vec<f64> = z.iter().zip(&hx).map(|(a, b)| a - b).collect();
        let ht = self.h.transpose();
        let s = &(&(&self.h * &self.p) * &ht) + &self.r;
        let s_inv = s.inverse()?;
        let k = &(&self.p * &ht) * &s_inv;
        let ky = k.mul_vec(&y);
        for (xi, d) in self.x.iter_mut().zip(&ky) {
            *xi += d;
        }
        let ikh = &Mat::identity(self.x.len()) - &(&k * &self.h);
        self.p = &ikh * &self.p;
        Some(y)
    }

    /// Predicts the state and covariance `steps` ahead *without* mutating
    /// the filter: `(Aⁱ·x, Aⁱ·P·(Aⁱ)ᵀ + Σ Aᵏ·Q·(Aᵏ)ᵀ)`.
    pub fn predict_ahead(&self, steps: u32) -> (Vec<f64>, Mat) {
        let mut x = self.x.clone();
        let mut p = self.p.clone();
        for _ in 0..steps {
            x = self.a.mul_vec(&x);
            p = &(&(&self.a * &p) * &self.a.transpose()) + &self.q;
        }
        (x, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant-velocity 1-D filter: state [pos, vel].
    fn cv_filter(q: f64, r: f64) -> KalmanFilter {
        KalmanFilter::new(
            vec![0.0, 0.0],
            Mat::identity(2).scale(10.0),
            Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]),
            Mat::identity(2).scale(q),
            Mat::from_rows(&[&[1.0, 0.0]]),
            Mat::identity(1).scale(r),
        )
    }

    #[test]
    fn tracks_constant_velocity_exactly() {
        let mut kf = cv_filter(1e-6, 1e-4);
        for t in 0..60 {
            kf.predict();
            kf.update(&[2.0 * (t + 1) as f64]);
        }
        // After convergence the velocity estimate must be ≈ 2.
        assert!((kf.state()[1] - 2.0).abs() < 1e-2, "vel {}", kf.state()[1]);
        assert!((kf.state()[0] - 120.0).abs() < 0.1, "pos {}", kf.state()[0]);
    }

    #[test]
    fn covariance_shrinks_with_measurements() {
        let mut kf = cv_filter(1e-4, 1e-2);
        let p0 = kf.covariance()[(0, 0)];
        for t in 0..30 {
            kf.predict();
            kf.update(&[t as f64]);
        }
        assert!(kf.covariance()[(0, 0)] < p0 * 1e-2);
    }

    #[test]
    fn covariance_grows_without_measurements() {
        let mut kf = cv_filter(1e-2, 1e-2);
        for t in 0..20 {
            kf.predict();
            kf.update(&[t as f64]);
        }
        let p_before = kf.covariance()[(0, 0)];
        let (_, p5) = kf.predict_ahead(5);
        let (_, p10) = kf.predict_ahead(10);
        assert!(p5[(0, 0)] > p_before);
        assert!(
            p10[(0, 0)] > p5[(0, 0)],
            "uncertainty must grow with horizon"
        );
    }

    #[test]
    fn predict_ahead_is_pure() {
        let mut kf = cv_filter(1e-3, 1e-2);
        kf.predict();
        kf.update(&[1.0]);
        let x_before = kf.state().to_vec();
        let _ = kf.predict_ahead(10);
        assert_eq!(kf.state(), &x_before[..]);
    }

    #[test]
    fn predict_ahead_extrapolates_linearly() {
        let mut kf = cv_filter(1e-8, 1e-6);
        for t in 0..100 {
            kf.predict();
            kf.update(&[3.0 * (t + 1) as f64]);
        }
        let (x5, _) = kf.predict_ahead(5);
        assert!((x5[0] - 3.0 * 105.0).abs() < 0.2, "pos@+5 {}", x5[0]);
    }

    #[test]
    fn innovation_reported() {
        let mut kf = cv_filter(1e-3, 1e-2);
        kf.predict();
        let innov = kf.update(&[5.0]).unwrap();
        assert_eq!(innov.len(), 1);
        assert!(innov[0] > 0.0);
    }
}
