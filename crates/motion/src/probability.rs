//! From predictions to block and direction probabilities (§V-B, Fig. 4).
//!
//! "Rather than calculating the probability of each possible point
//! location … we divide the total space into grid cells and then calculate
//! the probabilities for different blocks that can be visited." Each
//! prediction contributes a bivariate normal `N(mean, cov)`; its mass is
//! integrated over nearby cells (per-axis Gaussian CDFs) and the results
//! are accumulated over the prediction horizon and normalised.
//!
//! Direction probabilities then follow the paper exactly: blocks are
//! partitioned into `k` sectors around the client (with the alternating
//! tie-break for blocks on partition lines), and each sector's probability
//! is the normalised sum of its blocks' probabilities.

use crate::predict::Prediction;
use mar_geom::{BlockId, GridSpec, Point2, SectorPartition};
use std::collections::BTreeMap;
use std::f64::consts::TAU;

/// Evaluates the bivariate normal density of `pred` at point `p`.
/// Near-singular covariances are regularised with a small diagonal jitter.
pub fn gaussian_density(pred: &Prediction, p: &Point2) -> f64 {
    let mut cov = pred.cov.clone();
    let jitter = 1e-9 + 1e-6 * (cov[(0, 0)] + cov[(1, 1)]).abs();
    let (inv, det) = loop {
        let det = cov.det2();
        if det > 1e-12 {
            if let Some(inv) = cov.inverse() {
                break (inv, det);
            }
        }
        cov[(0, 0)] += jitter.max(1e-6);
        cov[(1, 1)] += jitter.max(1e-6);
    };
    let d = [p[0] - pred.mean[0], p[1] - pred.mean[1]];
    let q = inv.quad_form(&d);
    (-0.5 * q).exp() / (TAU * det.sqrt())
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7 — far below anything the block probabilities need).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// Probability mass of `N(mu, sigma²)` inside `[lo, hi]`.
fn interval_mass(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    if sigma <= 1e-12 {
        // Degenerate: a point mass.
        return if (lo..=hi).contains(&mu) { 1.0 } else { 0.0 };
    }
    normal_cdf((hi - mu) / sigma) - normal_cdf((lo - mu) / sigma)
}

/// Integrates each prediction's Gaussian over grid blocks and returns
/// normalised visit probabilities for every touched block.
///
/// Each cell's mass is the product of the per-axis interval probabilities
/// (an axis-aligned approximation of the covariance — correlations rotate
/// the ellipse slightly but never move mass across more than a cell at the
/// scales involved). Exact CDF integration matters here: a confident
/// predictor's σ can be far smaller than a block, where midpoint-rule
/// densities underflow to zero everywhere.
///
/// Blocks farther than `3σ` (plus one block) from a prediction's mean
/// contribute negligibly and are skipped.
pub fn gaussian_block_probabilities(
    grid: &GridSpec,
    predictions: &[Prediction],
) -> BTreeMap<BlockId, f64> {
    let mut probs: BTreeMap<BlockId, f64> = BTreeMap::new();
    gaussian_block_probabilities_into(grid, predictions, &mut probs);
    probs
}

/// Like [`gaussian_block_probabilities`], but reuses `probs` (cleared
/// first) so per-tick simulation loops can keep one map alive instead of
/// rebuilding the allocation every tick.
pub fn gaussian_block_probabilities_into(
    grid: &GridSpec,
    predictions: &[Prediction],
    probs: &mut BTreeMap<BlockId, f64>,
) {
    probs.clear();
    // The per-cell mass is separable: it is `mass_x(column) · mass_y(row)`.
    // Computing the two axis profiles once per prediction instead of per
    // cell drops the CDF (`exp`) count from O(cells) to O(rows + columns)
    // while producing bit-identical products in the same visit order.
    let mut mass_x: Vec<f64> = Vec::new();
    let mut mass_y: Vec<f64> = Vec::new();
    for pred in predictions {
        if !pred.mean.is_finite() {
            continue;
        }
        let sigma_x = pred.cov[(0, 0)].max(0.0).sqrt();
        let sigma_y = pred.cov[(1, 1)].max(0.0).sqrt();
        let sigma = sigma_x.max(sigma_y);
        let radius_space = 3.0 * sigma;
        let w = grid.block_w();
        let h = grid.block_h();
        let radius_blocks =
            ((radius_space / w.min(h)).ceil() as i64).clamp(1, grid.nx.max(grid.ny) as i64);
        // Project the mean into the space: the client cannot leave it, so
        // an off-edge prediction means "pressed against this boundary" and
        // must deposit its mass on the edge blocks (a far-outside mean
        // would otherwise underflow every in-space cell to zero).
        let clamped = Point2::new([
            pred.mean[0].clamp(grid.space.lo[0], grid.space.hi[0]),
            pred.mean[1].clamp(grid.space.lo[1], grid.space.hi[1]),
        ]);
        let center_block = grid.block_of(&clamped);
        // The in-bounds part of the ring is a contiguous box; these ranges
        // visit exactly the blocks `blocks_within_ring` yields, row-major.
        let ix_lo = (center_block.ix - radius_blocks).max(0);
        let ix_hi = (center_block.ix + radius_blocks).min(grid.nx as i64 - 1);
        let iy_lo = (center_block.iy - radius_blocks).max(0);
        let iy_hi = (center_block.iy + radius_blocks).min(grid.ny as i64 - 1);
        if ix_lo > ix_hi || iy_lo > iy_hi {
            continue;
        }
        mass_x.clear();
        for ix in ix_lo..=ix_hi {
            let x0 = grid.space.lo[0] + ix as f64 * w;
            mass_x.push(interval_mass(clamped[0], sigma_x, x0, x0 + w));
        }
        mass_y.clear();
        for iy in iy_lo..=iy_hi {
            let y0 = grid.space.lo[1] + iy as f64 * h;
            mass_y.push(interval_mass(clamped[1], sigma_y, y0, y0 + h));
        }
        for (my, iy) in mass_y.iter().zip(iy_lo..=iy_hi) {
            for (mx, ix) in mass_x.iter().zip(ix_lo..=ix_hi) {
                let mass = mx * my;
                if mass > 0.0 {
                    *probs.entry(BlockId::new(ix, iy)).or_insert(0.0) += mass;
                }
            }
        }
    }
    let total: f64 = probs.values().sum();
    if total > 0.0 {
        for v in probs.values_mut() {
            *v /= total;
        }
    }
}

/// Folds block probabilities into `k` direction probabilities around
/// `center`, using the paper's sector assignment (alternating tie-break on
/// partition lines). Returns a normalised vector of length `k`; uniform
/// when no block carries probability.
pub fn direction_probabilities(
    grid: &GridSpec,
    center: &Point2,
    block_probs: &BTreeMap<BlockId, f64>,
    partition: &SectorPartition,
) -> Vec<f64> {
    let k = partition.k();
    let mut sums = vec![0.0f64; k];
    // Key order is the iteration order (BTreeMap), so both the alternating
    // tie-break and the floating-point accumulation below are reproducible
    // run to run.
    let blocks: Vec<BlockId> = block_probs.keys().copied().collect();
    let tie_eps = 1e-9;
    let assignment = partition.assign_blocks(grid, center, &blocks, tie_eps);
    for b in &blocks {
        if let Some(&sector) = assignment.get(b) {
            sums[sector] += block_probs.get(b).copied().unwrap_or(0.0);
        }
    }
    let total: f64 = sums.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for s in &mut sums {
        *s /= total;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Mat;
    use mar_geom::Rect2;

    fn grid() -> GridSpec {
        GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            10,
            10,
        )
    }

    fn pred(x: f64, y: f64, var: f64) -> Prediction {
        Prediction {
            mean: Point2::new([x, y]),
            cov: Mat::identity(2).scale(var),
        }
    }

    #[test]
    fn density_peaks_at_mean() {
        let p = pred(50.0, 50.0, 4.0);
        let at_mean = gaussian_density(&p, &Point2::new([50.0, 50.0]));
        let off = gaussian_density(&p, &Point2::new([56.0, 50.0]));
        assert!(at_mean > off);
        // Peak of N(0, 4I) is 1/(2π·4).
        assert!((at_mean - 1.0 / (TAU * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn density_handles_singular_covariance() {
        let p = Prediction {
            mean: Point2::new([0.0, 0.0]),
            cov: Mat::zeros(2, 2),
        };
        let d = gaussian_density(&p, &Point2::new([0.0, 0.0]));
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn block_probabilities_sum_to_one_and_peak_at_prediction() {
        let g = grid();
        let probs = gaussian_block_probabilities(&g, &[pred(55.0, 55.0, 25.0)]);
        let total: f64 = probs.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let peak = probs.iter().max_by(|a, b| a.1.total_cmp(b.1)).unwrap();
        assert_eq!(*peak.0, BlockId::new(5, 5));
    }

    #[test]
    fn out_of_space_prediction_clamps_to_edge_blocks() {
        let g = grid();
        let probs = gaussian_block_probabilities(&g, &[pred(150.0, 50.0, 25.0)]);
        // Probability mass exists and sits on the +x edge.
        assert!(!probs.is_empty());
        let peak = probs.iter().max_by(|a, b| a.1.total_cmp(b.1)).unwrap();
        assert_eq!(peak.0.ix, 9);
    }

    #[test]
    fn multiple_predictions_spread_mass() {
        let g = grid();
        let near = gaussian_block_probabilities(&g, &[pred(25.0, 55.0, 16.0)]);
        let both =
            gaussian_block_probabilities(&g, &[pred(25.0, 55.0, 16.0), pred(75.0, 55.0, 16.0)]);
        assert!(both.len() > near.len());
        let left_mass: f64 = both.iter().filter(|(b, _)| b.ix < 5).map(|(_, p)| p).sum();
        assert!((left_mass - 0.5).abs() < 0.05, "left mass {left_mass}");
    }

    #[test]
    fn direction_probabilities_favor_motion_direction() {
        let g = grid();
        let center = Point2::new([50.0, 50.0]);
        // Prediction due east of the client.
        let probs = gaussian_block_probabilities(&g, &[pred(75.0, 50.0, 16.0)]);
        let part = SectorPartition::axis_centered(4);
        let dir = direction_probabilities(&g, &center, &probs, &part);
        assert_eq!(dir.len(), 4);
        assert!((dir.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(dir[0] > 0.8, "east sector must dominate: {dir:?}");
    }

    #[test]
    fn empty_block_probs_give_uniform_directions() {
        let g = grid();
        let part = SectorPartition::axis_centered(4);
        let dir = direction_probabilities(&g, &Point2::new([50.0, 50.0]), &BTreeMap::new(), &part);
        assert_eq!(dir, vec![0.25; 4]);
    }
}
