//! The paper's motion predictor: RLS-learned transition over a sliding
//! window of recent positions, with Kalman-style covariance propagation.
//!
//! State (paper §V-B): `s_t = [p(t), p(t−1), …, p(t−h)]ᵀ ∈ ℝ^{2(h+1)}`.
//! The transition matrix has the block structure
//!
//! ```text
//!       ⎡ θ          ⎤   ← 2 learned rows (RLS): p(t+1) from the window
//! A  =  ⎢ I  0       ⎥   ← shift: old p(t) becomes new p(t−1), etc.
//!       ⎣    I  0    ⎦
//! ```
//!
//! Multi-step prediction is `ŝ_{t+i} = Aⁱ·s_t`; its uncertainty is
//! propagated as `P_{t+i} = A·P_{t+i−1}·Aᵀ + Q`, where `Q` injects the
//! empirically tracked one-step residual covariance into the newest
//! position block. The predicted position is then distributed
//! `N(ŝ, P)` (the paper's Eq. 3), which [`crate::probability`] integrates
//! over grid blocks.
//!
//! Before the estimator has seen enough transitions it falls back to
//! constant-velocity extrapolation, and it also falls back when the learned
//! `A` extrapolates absurdly (unstable spectral radius on short windows) —
//! state estimation must degrade gracefully, never catastrophically.

use crate::linalg::Mat;
use crate::rls::RlsEstimator;
use mar_geom::Point2;
use std::collections::VecDeque;

/// Tunables for [`MotionPredictor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// `h`: the state holds `h + 1` recent positions.
    pub history: usize,
    /// RLS forgetting factor λ (1.0 = infinite memory).
    pub lambda: f64,
    /// Minimum RLS samples before the learned model is trusted.
    pub min_samples: usize,
    /// Baseline per-step position variance added even when residuals are
    /// tiny (keeps block probabilities smooth).
    pub base_variance: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            history: 3,
            lambda: 0.98,
            min_samples: 8,
            base_variance: 0.25,
        }
    }
}

/// One multi-step prediction: mean position and 2×2 covariance.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted position.
    pub mean: Point2,
    /// Position covariance (2×2).
    pub cov: Mat,
}

/// Online predictor of a client's future positions.
///
/// ```
/// use mar_motion::{MotionPredictor, PredictorConfig};
/// use mar_geom::Point2;
/// let mut p = MotionPredictor::new(PredictorConfig::default());
/// for t in 0..30 {
///     p.observe(Point2::new([2.0 * t as f64, 100.0])); // heading east
/// }
/// let pred = p.predict(5);
/// assert!(pred.mean.distance(&Point2::new([68.0, 100.0])) < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct MotionPredictor {
    config: PredictorConfig,
    /// Most recent position at the front.
    window: VecDeque<Point2>,
    rls: RlsEstimator,
    /// Running one-step residual covariance (2×2).
    resid: Mat,
    resid_samples: usize,
}

impl MotionPredictor {
    /// Creates a predictor.
    pub fn new(config: PredictorConfig) -> Self {
        assert!(config.history >= 1, "need at least two positions of state");
        let dim = 2 * (config.history + 1);
        Self {
            config,
            window: VecDeque::with_capacity(config.history + 2),
            rls: RlsEstimator::new(dim, 2, config.lambda, 1e4),
            resid: Mat::identity(2).scale(config.base_variance),
            resid_samples: 0,
        }
    }

    /// State dimension `2(h+1)`.
    pub fn state_dim(&self) -> usize {
        2 * (self.config.history + 1)
    }

    /// Number of positions observed so far.
    pub fn observations(&self) -> usize {
        self.window.len().max(self.resid_samples)
    }

    /// True once the learned transition is in use (vs. the constant-velocity
    /// fallback).
    pub fn is_warm(&self) -> bool {
        self.rls.samples() >= self.config.min_samples
    }

    /// Most recent speed (distance covered in the last step), or 0.
    pub fn speed(&self) -> f64 {
        match (self.window.front(), self.window.get(1)) {
            (Some(a), Some(b)) => a.distance(b),
            _ => 0.0,
        }
    }

    /// Feeds the position observed at the next timestamp.
    pub fn observe(&mut self, p: Point2) {
        if self.window.len() == self.config.history + 1 {
            // A full previous state exists: train on (s_t → p_{t+1}).
            let x = self.state_vector();
            let y = [p[0], p[1]];
            // Track the residual of the *pre-update* prediction.
            let pred = self.rls.predict(&x);
            if self.rls.samples() >= self.config.min_samples {
                let e = [y[0] - pred[0], y[1] - pred[1]];
                self.update_residual(&e);
            }
            self.rls.observe(&x, &y);
        }
        self.window.push_front(p);
        if self.window.len() > self.config.history + 1 {
            self.window.pop_back();
        }
    }

    fn update_residual(&mut self, e: &[f64; 2]) {
        let alpha = 0.15;
        for i in 0..2 {
            for j in 0..2 {
                self.resid[(i, j)] = (1.0 - alpha) * self.resid[(i, j)] + alpha * e[i] * e[j];
            }
        }
        // Keep a variance floor so probabilities never collapse to a point.
        for i in 0..2 {
            self.resid[(i, i)] = self.resid[(i, i)].max(self.config.base_variance * 0.1);
        }
        self.resid_samples += 1;
    }

    /// The current state vector `[p_t, p_{t−1}, …]`, zero-padded when young.
    fn state_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.state_dim());
        let last = self.window.front().copied().unwrap_or(Point2::ORIGIN);
        for i in 0..=self.config.history {
            let p = self.window.get(i).copied().unwrap_or(last);
            v.push(p[0]);
            v.push(p[1]);
        }
        v
    }

    /// Builds the full transition matrix: learned top rows + shift block.
    fn transition(&self) -> Mat {
        let n = self.state_dim();
        let mut a = Mat::zeros(n, n);
        let theta = self.rls.coefficients();
        for j in 0..n {
            a[(0, j)] = theta[(0, j)];
            a[(1, j)] = theta[(1, j)];
        }
        for i in 0..(n - 2) {
            a[(i + 2, i)] = 1.0;
        }
        a
    }

    /// Predicts the position `steps ≥ 1` timestamps ahead.
    pub fn predict(&self, steps: u32) -> Prediction {
        assert!(steps >= 1, "predict at least one step ahead");
        let Some(&last) = self.window.front() else {
            return Prediction {
                mean: Point2::ORIGIN,
                cov: Mat::identity(2).scale(self.config.base_variance),
            };
        };
        let linear = self.linear_prediction(last, steps);
        if !self.is_warm() {
            return linear;
        }
        // Learned model: s_{t+i} = A^i s_t with covariance propagation.
        let a = self.transition();
        let at = a.transpose();
        let mut s = self.state_vector();
        let n = self.state_dim();
        let mut p = Mat::zeros(n, n);
        let q = self.process_noise();
        for _ in 0..steps {
            s = a.mul_vec(&s);
            p = &(&(&a * &p) * &at) + &q;
        }
        self.finish_prediction(steps, &s, &p, linear)
    }

    /// Turns a propagated state/covariance pair into a [`Prediction`],
    /// applying the instability guard and covariance hygiene shared by
    /// [`MotionPredictor::predict`] and the incremental horizon sweep.
    fn finish_prediction(&self, steps: u32, s: &[f64], p: &Mat, linear: Prediction) -> Prediction {
        let mean = Point2::new([s[0], s[1]]);
        // Guard against an unstable learned A: if it wandered wildly past
        // anything constant-velocity would do, trust the fallback.
        let sane_radius = (self.speed() + 1.0) * (steps as f64) * 5.0 + 1.0;
        if !mean.is_finite() || mean.distance(&linear.mean) > sane_radius {
            return linear;
        }
        let mut cov = p.block(0, 0, 2);
        // Numerical hygiene: keep the covariance symmetric positive.
        let off = 0.5 * (cov[(0, 1)] + cov[(1, 0)]);
        cov[(0, 1)] = off;
        cov[(1, 0)] = off;
        for i in 0..2 {
            cov[(i, i)] = cov[(i, i)].max(self.config.base_variance * 0.1);
        }
        Prediction { mean, cov }
    }

    /// Constant-velocity fallback with variance growing quadratically in
    /// the horizon (uncertainty of an unmodelled turn grows with distance).
    fn linear_prediction(&self, last: Point2, steps: u32) -> Prediction {
        let v = match self.window.get(1) {
            Some(prev) => last - *prev,
            None => mar_geom::Vec2::ZERO,
        };
        let mean = last + v * steps as f64;
        let var = self.config.base_variance * (steps as f64).powi(2)
            + 0.25 * v.norm_sq() * (steps as f64);
        Prediction {
            mean,
            cov: Mat::identity(2).scale(var.max(self.config.base_variance)),
        }
    }

    /// Process noise: the tracked residual covariance injected into the
    /// newest position block.
    fn process_noise(&self) -> Mat {
        let n = self.state_dim();
        let mut q = Mat::zeros(n, n);
        for i in 0..2 {
            for j in 0..2 {
                q[(i, j)] = self.resid[(i, j)];
            }
        }
        q
    }

    /// Predictions for horizons `1..=steps` (used to accumulate block
    /// probabilities over the prefetch horizon).
    pub fn predict_horizon(&self, steps: u32) -> Vec<Prediction> {
        let mut out = Vec::new();
        self.predict_horizon_into(steps, &mut out);
        out
    }

    /// Like [`MotionPredictor::predict_horizon`], but reuses `out` (cleared
    /// first) and propagates the state/covariance recurrence *once* across
    /// the whole horizon instead of re-running it from scratch for every
    /// step — `predict(i)`'s intermediate values at step `i` are exactly
    /// `predict(i-1)`'s finals, so the sweep is O(h) matrix products
    /// instead of O(h²) with bit-identical output.
    pub fn predict_horizon_into(&self, steps: u32, out: &mut Vec<Prediction>) {
        out.clear();
        let Some(&last) = self.window.front() else {
            out.extend((1..=steps).map(|i| self.predict(i)));
            return;
        };
        if !self.is_warm() {
            out.extend((1..=steps).map(|i| self.linear_prediction(last, i)));
            return;
        }
        let a = self.transition();
        let at = a.transpose();
        let mut s = self.state_vector();
        let n = self.state_dim();
        let mut p = Mat::zeros(n, n);
        let q = self.process_noise();
        for i in 1..=steps {
            s = a.mul_vec(&s);
            p = &(&(&a * &p) * &at) + &q;
            out.push(self.finish_prediction(i, &s, &p, self.linear_prediction(last, i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_line(p: &mut MotionPredictor, n: usize, vx: f64, vy: f64) {
        for t in 0..n {
            p.observe(Point2::new([t as f64 * vx, t as f64 * vy]));
        }
    }

    #[test]
    fn cold_predictor_returns_last_position_neighborhood() {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        p.observe(Point2::new([10.0, 20.0]));
        let pred = p.predict(1);
        assert_eq!(pred.mean, Point2::new([10.0, 20.0]));
        assert!(pred.cov[(0, 0)] > 0.0);
    }

    #[test]
    fn linear_motion_predicted_exactly_when_warm() {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        feed_line(&mut p, 40, 2.0, -1.0);
        assert!(p.is_warm());
        let pred = p.predict(1);
        // Next point on the line is (80, -40).
        assert!(
            pred.mean.distance(&Point2::new([80.0, -40.0])) < 0.5,
            "{:?}",
            pred.mean
        );
        let pred5 = p.predict(5);
        assert!(
            pred5.mean.distance(&Point2::new([88.0, -44.0])) < 2.0,
            "{:?}",
            pred5.mean
        );
    }

    #[test]
    fn uncertainty_grows_with_horizon() {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        feed_line(&mut p, 40, 1.0, 0.0);
        let c1 = p.predict(1).cov[(0, 0)] + p.predict(1).cov[(1, 1)];
        let c5 = p.predict(5).cov[(0, 0)] + p.predict(5).cov[(1, 1)];
        assert!(c5 >= c1, "cov must grow with horizon: {c1} vs {c5}");
    }

    #[test]
    fn speed_reflects_last_step() {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        p.observe(Point2::new([0.0, 0.0]));
        p.observe(Point2::new([3.0, 4.0]));
        assert!((p.speed() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn curved_motion_stays_sane() {
        // Circle walk: the guard must keep predictions within a sane radius
        // even though the linear state model cannot express the curvature
        // exactly.
        let mut p = MotionPredictor::new(PredictorConfig::default());
        for t in 0..100 {
            let a = t as f64 * 0.15;
            p.observe(Point2::new([50.0 * a.cos(), 50.0 * a.sin()]));
        }
        let pred = p.predict(3);
        assert!(pred.mean.is_finite());
        // Must stay within a generous band around the circle.
        let r = pred.mean.to_vector().norm();
        assert!(r > 20.0 && r < 90.0, "r = {r}");
    }

    #[test]
    fn rls_beats_linear_on_circular_motion() {
        // A second-order linear recurrence models circular motion exactly;
        // the trained predictor should out-predict constant velocity.
        let mut p = MotionPredictor::new(PredictorConfig {
            history: 3,
            ..Default::default()
        });
        let pos = |t: f64| Point2::new([50.0 * (t * 0.1).cos(), 50.0 * (t * 0.1).sin()]);
        for t in 0..200 {
            p.observe(pos(t as f64));
        }
        let truth = pos(202.0);
        let learned = p.predict(2).mean.distance(&truth);
        // Constant-velocity baseline from the last two points:
        let v = pos(199.0) - pos(198.0);
        let linear = (pos(199.0) + v * 2.0).distance(&truth);
        assert!(
            learned <= linear + 1e-9,
            "learned {learned} vs linear {linear}"
        );
    }

    #[test]
    fn horizon_returns_requested_count() {
        let mut p = MotionPredictor::new(PredictorConfig::default());
        feed_line(&mut p, 20, 1.0, 1.0);
        assert_eq!(p.predict_horizon(4).len(), 4);
    }

    #[test]
    fn horizon_matches_per_step_predict_exactly() {
        // The incremental sweep must be bit-identical to calling
        // `predict(i)` per step — on a warm straight line, on curved
        // motion (exercising the instability guard), and cold.
        let mut straight = MotionPredictor::new(PredictorConfig::default());
        feed_line(&mut straight, 40, 2.0, -1.0);
        let mut curved = MotionPredictor::new(PredictorConfig::default());
        for t in 0..100 {
            let a = t as f64 * 0.15;
            curved.observe(Point2::new([50.0 * a.cos(), 50.0 * a.sin()]));
        }
        let mut cold = MotionPredictor::new(PredictorConfig::default());
        cold.observe(Point2::new([1.0, 2.0]));
        for p in [&straight, &curved, &cold] {
            for (i, pred) in p.predict_horizon(8).iter().enumerate() {
                let single = p.predict(i as u32 + 1);
                assert_eq!(pred.mean, single.mean, "mean at step {}", i + 1);
                for r in 0..2 {
                    for c in 0..2 {
                        assert_eq!(
                            pred.cov[(r, c)].to_bits(),
                            single.cov[(r, c)].to_bits(),
                            "cov[({r},{c})] at step {}",
                            i + 1
                        );
                    }
                }
            }
        }
    }
}
