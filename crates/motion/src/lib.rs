//! # mar-motion — state-estimation motion prediction (§V-B)
//!
//! The buffer manager needs, at every timestamp, (a) predictions of the
//! client's next few positions and (b) a confidence for each prediction, so
//! it can turn them into visit probabilities for the surrounding grid
//! blocks. Following the paper:
//!
//! * the client's *state* is the vector of its `h+1` most recent positions,
//!   `s_t = [p(t), p(t−1), …, p(t−h)]ᵀ`;
//! * a transition matrix `A` with `s_{t+1} = A·s_t` is learned online by
//!   **recursive least squares** (\[22\]); `Aⁱ` gives multi-step
//!   predictions;
//! * a **Kalman filter**-style covariance propagation
//!   (`P_{t+i} = A·P·Aᵀ + Q`) yields the uncertainty of each predicted
//!   state, and the predicted position is treated as normally distributed,
//!   `P(s) ~ N(ŝ, P)` (the paper's Eq. 3);
//! * integrating that normal over grid cells gives per-block visit
//!   probabilities, which [`probability`] folds into per-direction
//!   probabilities over a [`mar_geom::SectorPartition`].
//!
//! The crate carries its own small dense linear algebra ([`linalg`]) —
//! multiplication, transpose, Gauss-Jordan inversion — because nothing
//! heavier is needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fixed-size numeric kernels below index two arrays in lockstep
// (`out[i] = a[i] op b[i]`); the indexed form is the clearest statement of
// that, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod kalman;
pub mod linalg;
pub mod markov;
pub mod predict;
pub mod probability;
pub mod rls;

pub use kalman::KalmanFilter;
pub use linalg::Mat;
pub use markov::MarkovDirectionModel;
pub use predict::{MotionPredictor, Prediction, PredictorConfig};
pub use probability::{direction_probabilities, gaussian_block_probabilities};
pub use rls::RlsEstimator;
