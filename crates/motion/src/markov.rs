//! An empirical (Markov-style) direction model.
//!
//! The pre-fetching model the paper builds on (\[15\]) drives its buffer
//! split from *transition probabilities* estimated from the client's
//! history, not from a state-space filter. This module provides that
//! alternative: it counts which direction sector each observed step fell
//! into, with exponential decay so recent behaviour dominates, and emits
//! the per-direction probabilities directly. The `abl_direction` ablation
//! compares it against the Kalman/RLS pipeline — the Markov model is
//! cheaper and robust, the state estimator is sharper on smooth
//! trajectories because it extrapolates *position*, not just heading.

use mar_geom::{Point2, SectorPartition};

/// Exponentially decayed per-sector step counts.
#[derive(Debug, Clone)]
pub struct MarkovDirectionModel {
    partition: SectorPartition,
    /// Decay multiplier applied to all counts per observation (`< 1`).
    decay: f64,
    counts: Vec<f64>,
    last: Option<Point2>,
}

impl MarkovDirectionModel {
    /// Creates a model with `k` sectors and the given per-step decay
    /// (0.95–0.99 are sensible; 1.0 = never forget).
    pub fn new(k: usize, decay: f64) -> Self {
        assert!(k >= 1);
        assert!((0.0..=1.0).contains(&decay) && decay > 0.0);
        Self {
            partition: SectorPartition::axis_centered(k),
            decay,
            counts: vec![0.0; k],
            last: None,
        }
    }

    /// Number of direction sectors.
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Feeds the next observed position; a non-zero step increments (the
    /// decayed) count of the sector the step's heading falls into.
    pub fn observe(&mut self, p: Point2) {
        if let Some(prev) = self.last {
            for c in &mut self.counts {
                *c *= self.decay;
            }
            let v = p - prev;
            if let Some(sector) = self.partition.sector_of(&v) {
                self.counts[sector] += 1.0;
            }
        }
        self.last = Some(p);
    }

    /// Current direction probabilities (Laplace-smoothed so no sector is
    /// ever impossible; uniform before any movement).
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }

    /// Like [`MarkovDirectionModel::probabilities`], but reuses `out`
    /// (cleared first) so per-tick simulation loops allocate nothing in
    /// steady state.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        let k = self.counts.len() as f64;
        let total: f64 = self.counts.iter().sum();
        let alpha = 0.5; // smoothing pseudo-count
        out.clear();
        out.extend(
            self.counts
                .iter()
                .map(|c| (c + alpha) / (total + alpha * k)),
        );
    }

    /// The most likely direction sector (ties to the lowest index).
    pub fn dominant(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Vec2;

    #[test]
    fn uniform_before_any_movement() {
        let m = MarkovDirectionModel::new(4, 0.98);
        let p = m.probabilities();
        assert_eq!(p, vec![0.25; 4]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eastward_walk_dominates_east() {
        let mut m = MarkovDirectionModel::new(4, 0.98);
        let mut pos = Point2::new([0.0, 0.0]);
        for _ in 0..30 {
            m.observe(pos);
            pos += Vec2::new([2.0, 0.1]);
        }
        assert_eq!(m.dominant(), 0);
        let p = m.probabilities();
        assert!(p[0] > 0.8, "{p:?}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decay_adapts_to_turns() {
        let mut m = MarkovDirectionModel::new(4, 0.9);
        let mut pos = Point2::new([0.0, 0.0]);
        for _ in 0..50 {
            m.observe(pos);
            pos += Vec2::new([2.0, 0.0]); // east
        }
        for _ in 0..25 {
            m.observe(pos);
            pos += Vec2::new([0.0, 2.0]); // then north
        }
        assert_eq!(m.dominant(), 1, "{:?}", m.probabilities());
    }

    #[test]
    fn stationary_steps_are_ignored() {
        let mut m = MarkovDirectionModel::new(4, 0.98);
        let p0 = Point2::new([5.0, 5.0]);
        for _ in 0..10 {
            m.observe(p0);
        }
        assert_eq!(m.probabilities(), vec![0.25; 4]);
    }

    #[test]
    fn probabilities_always_positive() {
        let mut m = MarkovDirectionModel::new(8, 0.95);
        let mut pos = Point2::new([0.0, 0.0]);
        for _ in 0..100 {
            m.observe(pos);
            pos += Vec2::new([1.0, -0.5]);
        }
        for p in m.probabilities() {
            assert!(p > 0.0);
        }
    }
}
