//! Small dense matrices.
//!
//! Row-major `Vec<f64>` storage with exactly the operations the estimators
//! need: arithmetic, transpose, matrix powers, Gauss-Jordan inversion with
//! partial pivoting, and quadratic forms. Dimensions here are tiny (the
//! state of an `h = 3` tracker is 8-dimensional), so clarity beats
//! cleverness.

use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    /// Panics when the rows are ragged or empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "empty rows");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A column vector from a slice.
    pub fn col_vec(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying data as a flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every element.
    pub fn scale(&self, k: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * k).collect(),
        }
    }

    /// Matrix power `selfⁿ` (square matrices; `n = 0` gives identity).
    pub fn pow(&self, n: u32) -> Mat {
        assert_eq!(self.rows, self.cols, "pow needs a square matrix");
        let mut result = Mat::identity(self.rows);
        let mut base = self.clone();
        let mut e = n;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        result
    }

    /// Inverse via Gauss-Jordan elimination with partial pivoting, or
    /// `None` when singular (pivot below `1e-12` of the row scale).
    pub fn inverse(&self) -> Option<Mat> {
        assert_eq!(self.rows, self.cols, "inverse needs a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Mat::identity(n);
        for col in 0..n {
            // Partial pivot: the largest |value| in this column at/below row.
            let mut pivot_row = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                if a[(r, col)].abs() > best {
                    best = a[(r, col)].abs();
                    pivot_row = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    a.data.swap(col * n + j, pivot_row * n + j);
                    inv.data.swap(col * n + j, pivot_row * n + j);
                }
            }
            let p = a[(col, col)];
            for j in 0..n {
                a[(col, j)] /= p;
                inv[(col, j)] /= p;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a[(r, j)] -= f * a[(col, j)];
                    inv[(r, j)] -= f * inv[(col, j)];
                }
            }
        }
        Some(inv)
    }

    /// Determinant of a 2×2 matrix.
    pub fn det2(&self) -> f64 {
        assert_eq!((self.rows, self.cols), (2, 2), "det2 needs a 2×2 matrix");
        self[(0, 0)] * self[(1, 1)] - self[(0, 1)] * self[(1, 0)]
    }

    /// Quadratic form `xᵀ·self·x` for a square matrix.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, self.cols);
        assert_eq!(x.len(), self.rows);
        let mut acc = 0.0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                acc += x[i] * self[(i, j)] * x[j];
            }
        }
        acc
    }

    /// Extracts the square submatrix with the given top-left corner and
    /// size.
    pub fn block(&self, top: usize, left: usize, size: usize) -> Mat {
        assert!(top + size <= self.rows && left + size <= self.cols);
        let mut out = Mat::zeros(size, size);
        for i in 0..size {
            for j in 0..size {
                out[(i, j)] = self[(top + i, left + j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Multiplies `self · v` for a vector `v`, returning a vector.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let v = self[(i, k)];
                if v == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += v * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_mul() {
        let i = Mat::identity(3);
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn mul_known_result() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn inverse_known_2x2() {
        let a = Mat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = &a * &inv;
        let err = (&prod - &Mat::identity(2)).frobenius();
        assert!(err < 1e-12, "err {err}");
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_needs_pivoting() {
        // Zero on the diagonal requires row swaps.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let inv = a.inverse().unwrap();
        assert_eq!(inv, a);
    }

    #[test]
    fn inverse_random_5x5() {
        // A diagonally dominant matrix is always invertible.
        let n = 5;
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 7 + j * 3) % 11) as f64 * 0.1;
            }
            a[(i, i)] += 5.0;
        }
        let inv = a.inverse().unwrap();
        let err = (&(&a * &inv) - &Mat::identity(n)).frobenius();
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let p5 = a.pow(5);
        assert_eq!(p5, Mat::from_rows(&[&[1.0, 5.0], &[0.0, 1.0]]));
        assert_eq!(a.pow(0), Mat::identity(2));
    }

    #[test]
    fn quad_form_and_det() {
        let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert_eq!(a.quad_form(&[1.0, 2.0]), 2.0 + 12.0);
        assert_eq!(a.det2(), 6.0);
    }

    #[test]
    fn block_extraction() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let b = a.block(0, 0, 2);
        assert_eq!(b, Mat::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]));
        let c = a.block(1, 1, 2);
        assert_eq!(c, Mat::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]));
    }

    #[test]
    fn mul_vec_matches_mat_mul() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = a.mul_vec(&[5.0, 6.0]);
        assert_eq!(v, vec![17.0, 39.0]);
    }
}
