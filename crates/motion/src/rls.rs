//! Recursive least-squares estimation of the transition matrix `A`.
//!
//! The paper (citing Yi et al. \[22\]) learns `A` such that
//! `s_{t+1} ≈ A·s_t` from the stream of observed states. Because every
//! output row shares the same regressor `s_t`, the classic RLS recursion
//! can share one inverse-correlation matrix `P` across rows:
//!
//! ```text
//! k   = P·x / (λ + xᵀ·P·x)
//! θᵣ += k·(yᵣ − θᵣᵀ·x)        (for every output row r)
//! P   = (P − k·xᵀ·P) / λ
//! ```
//!
//! `λ ∈ (0, 1]` is the forgetting factor: `1.0` weighs all history equally,
//! smaller values track non-stationary motion (a pedestrian changing gait)
//! faster.

use crate::linalg::Mat;

/// Shared-regressor recursive least squares: learns `W` (out×in) with
/// `y ≈ W·x` from `(x, y)` samples.
#[derive(Debug, Clone)]
pub struct RlsEstimator {
    /// Learned coefficient matrix (out_dim × in_dim).
    theta: Mat,
    /// Shared inverse correlation matrix (in_dim × in_dim).
    p: Mat,
    /// Forgetting factor λ.
    lambda: f64,
    samples: usize,
}

impl RlsEstimator {
    /// Creates an estimator for `in_dim → out_dim` with forgetting factor
    /// `lambda` and initial `P = δ·I` (large `delta` ⇒ fast initial
    /// adaptation).
    pub fn new(in_dim: usize, out_dim: usize, lambda: f64, delta: f64) -> Self {
        assert!(in_dim > 0 && out_dim > 0);
        assert!(
            (0.0..=1.0).contains(&lambda) && lambda > 0.0,
            "λ must be in (0, 1]"
        );
        assert!(delta > 0.0);
        Self {
            theta: Mat::zeros(out_dim, in_dim),
            p: Mat::identity(in_dim).scale(delta),
            lambda,
            samples: 0,
        }
    }

    /// Number of samples consumed.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The current coefficient matrix (out_dim × in_dim).
    pub fn coefficients(&self) -> &Mat {
        &self.theta
    }

    /// Feeds one `(x, y)` sample.
    pub fn observe(&mut self, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.p.rows(), "x dimension mismatch");
        assert_eq!(y.len(), self.theta.rows(), "y dimension mismatch");
        let n = x.len();
        // px = P·x
        let px = self.p.mul_vec(x);
        let denom = self.lambda + x.iter().zip(&px).map(|(a, b)| a * b).sum::<f64>();
        // Gain k = P·x / denom.
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        // Per-row coefficient update.
        for r in 0..self.theta.rows() {
            let pred: f64 = (0..n).map(|j| self.theta[(r, j)] * x[j]).sum();
            let err = y[r] - pred;
            for j in 0..n {
                self.theta[(r, j)] += k[j] * err;
            }
        }
        // P update: (P − k·(xᵀ·P)) / λ, where xᵀ·P = (P·x)ᵀ for symmetric P.
        // Keep symmetry explicitly to fight round-off drift.
        let xp = self.p.transpose().mul_vec(x);
        for i in 0..n {
            for j in 0..n {
                self.p[(i, j)] = (self.p[(i, j)] - k[i] * xp[j]) / self.lambda;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (self.p[(i, j)] + self.p[(j, i)]);
                self.p[(i, j)] = avg;
                self.p[(j, i)] = avg;
            }
        }
        self.samples += 1;
    }

    /// Predicts `W·x`.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.theta.mul_vec(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_fixed_linear_map() {
        // y = [2x0 − x1, 0.5x0 + 3x1]
        let mut rls = RlsEstimator::new(2, 2, 1.0, 1e4);
        for i in 0..200 {
            let x = [((i * 7) % 13) as f64 - 6.0, ((i * 5) % 11) as f64 - 5.0];
            let y = [2.0 * x[0] - x[1], 0.5 * x[0] + 3.0 * x[1]];
            rls.observe(&x, &y);
        }
        let w = rls.coefficients();
        assert!((w[(0, 0)] - 2.0).abs() < 1e-6, "{:?}", w);
        assert!((w[(0, 1)] + 1.0).abs() < 1e-6);
        assert!((w[(1, 0)] - 0.5).abs() < 1e-6);
        assert!((w[(1, 1)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn prediction_error_shrinks() {
        // Noisy target: errors after convergence ≪ initial errors.
        let mut rls = RlsEstimator::new(3, 1, 1.0, 1e4);
        let truth = [1.5, -2.0, 0.25];
        let mut early_err = 0.0;
        let mut late_err = 0.0;
        for i in 0..300 {
            let x = [
                ((i * 3) % 17) as f64 * 0.1,
                ((i * 11) % 19) as f64 * 0.1,
                ((i * 7) % 23) as f64 * 0.1,
            ];
            let y = truth.iter().zip(&x).map(|(t, v)| t * v).sum::<f64>();
            let pred = rls.predict(&x)[0];
            let e = (y - pred).abs();
            if i < 5 {
                early_err += e;
            } else if i >= 295 {
                late_err += e;
            }
            rls.observe(&x, &[y]);
        }
        assert!(
            late_err < early_err * 1e-3 + 1e-9,
            "early {early_err} late {late_err}"
        );
    }

    #[test]
    fn forgetting_tracks_a_changing_map() {
        // Target switches halfway; λ<1 must adapt to the new map.
        let mut rls = RlsEstimator::new(1, 1, 0.9, 1e4);
        for i in 0..100 {
            let x = [1.0 + (i % 5) as f64];
            rls.observe(&x, &[2.0 * x[0]]);
        }
        for i in 0..100 {
            let x = [1.0 + (i % 5) as f64];
            rls.observe(&x, &[-3.0 * x[0]]);
        }
        let w = rls.coefficients()[(0, 0)];
        assert!((w + 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn sample_counter() {
        let mut rls = RlsEstimator::new(2, 2, 1.0, 100.0);
        assert_eq!(rls.samples(), 0);
        rls.observe(&[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(rls.samples(), 1);
    }
}
