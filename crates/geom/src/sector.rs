//! Partitioning the plane around the client into `k` direction sectors.
//!
//! §V-A extends the 1-D prefetching model to the plane by splitting the
//! space around the client into `k` equally sized sectors, each standing
//! for one possible direction of travel. §V-B (Figure 4(b)) then assigns
//! every neighbouring grid block to one sector; a block that intersects a
//! partition line goes to the sector owning the larger share of the block,
//! and *exact ties are resolved by alternating* consecutive tied blocks
//! between the two candidate sectors.
//!
//! [`SectorPartition`] implements that assignment. The default orientation
//! places sector boundaries on the diagonals (so with `k = 4` the sectors
//! are "east", "north", "west", "south"), matching the paper's figure.

use crate::{BlockId, GridSpec, Point2, Vec2};
use std::collections::BTreeMap;
use std::f64::consts::TAU;

/// A division of the plane around a reference point into `k` equal angular
/// sectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectorPartition {
    k: usize,
    /// Angle (radians, CCW from +x) of the boundary that *starts* sector 0.
    offset: f64,
}

impl SectorPartition {
    /// Creates a partition with `k` sectors whose first boundary lies at
    /// `offset` radians.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, offset: f64) -> Self {
        assert!(k > 0, "need at least one sector");
        Self {
            k,
            offset: offset.rem_euclid(TAU),
        }
    }

    /// The paper's orientation: sector boundaries on the diagonals, so each
    /// sector is centred on a compass axis (`k = 4` ⇒ sector 0 = east,
    /// 1 = north, 2 = west, 3 = south).
    pub fn axis_centered(k: usize) -> Self {
        assert!(k > 0, "need at least one sector");
        Self::new(k, -TAU / (2.0 * k as f64))
    }

    /// Number of sectors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Angular width of one sector.
    pub fn sector_width(&self) -> f64 {
        TAU / self.k as f64
    }

    /// The sector containing direction `v`, or `None` for the zero vector.
    pub fn sector_of(&self, v: &Vec2) -> Option<usize> {
        let angle = v.angle()?;
        let rel = (angle - self.offset).rem_euclid(TAU);
        Some(((rel / self.sector_width()) as usize).min(self.k - 1))
    }

    /// How close (in radians) direction `v` lies to its nearest sector
    /// boundary. Used to detect blocks that straddle a partition line.
    pub fn boundary_proximity(&self, v: &Vec2) -> Option<f64> {
        let angle = v.angle()?;
        let rel = (angle - self.offset).rem_euclid(TAU);
        let w = self.sector_width();
        let within = rel.rem_euclid(w);
        Some(within.min(w - within))
    }

    /// Assigns each block to a sector around `center`, implementing the
    /// paper's tie-breaking rule: a block whose centre direction lies on
    /// (or within `tie_eps` radians of) a partition line is alternately
    /// assigned to the two adjacent sectors, per boundary, in the order the
    /// blocks are supplied. The block containing `center` itself (direction
    /// undefined) is omitted from the result.
    pub fn assign_blocks(
        &self,
        grid: &GridSpec,
        center: &Point2,
        blocks: &[BlockId],
        tie_eps: f64,
    ) -> BTreeMap<BlockId, usize> {
        let mut out = BTreeMap::new();
        // Per-boundary toggle used to alternate tied blocks.
        let mut toggles: BTreeMap<usize, bool> = BTreeMap::new();
        let w = self.sector_width();
        for b in blocks {
            let v = grid.block_center(b) - *center;
            let Some(angle) = v.angle() else { continue };
            let rel = (angle - self.offset).rem_euclid(TAU);
            let raw = ((rel / w) as usize).min(self.k - 1);
            let within = rel.rem_euclid(w);
            let dist = within.min(w - within);
            let sector = if dist <= tie_eps && self.k > 1 {
                // Identify the boundary index: boundary `i` starts sector `i`.
                let boundary = if within <= w - within {
                    raw // the boundary at the start of this sector
                } else {
                    (raw + 1) % self.k // the boundary at the end
                };
                let flip = toggles.entry(boundary).or_insert(false);
                let lower = (boundary + self.k - 1) % self.k;
                let chosen = if *flip { lower } else { boundary };
                *flip = !*flip;
                chosen
            } else {
                raw
            };
            out.insert(*b, sector);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect2;

    fn grid() -> GridSpec {
        GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            10,
            10,
        )
    }

    #[test]
    fn axis_centered_compass_sectors() {
        let p = SectorPartition::axis_centered(4);
        assert_eq!(p.sector_of(&Vec2::new([1.0, 0.0])), Some(0)); // east
        assert_eq!(p.sector_of(&Vec2::new([0.0, 1.0])), Some(1)); // north
        assert_eq!(p.sector_of(&Vec2::new([-1.0, 0.0])), Some(2)); // west
        assert_eq!(p.sector_of(&Vec2::new([0.0, -1.0])), Some(3)); // south
        assert_eq!(p.sector_of(&Vec2::ZERO), None);
    }

    #[test]
    fn every_direction_lands_in_exactly_one_sector() {
        for k in [1usize, 2, 3, 4, 6, 8, 16] {
            let p = SectorPartition::axis_centered(k);
            for i in 0..720 {
                let a = i as f64 * TAU / 720.0 + 1e-4;
                let v = Vec2::new([a.cos(), a.sin()]);
                let s = p.sector_of(&v).unwrap();
                assert!(s < k, "k={k} angle={a} gave sector {s}");
            }
        }
    }

    #[test]
    fn boundary_proximity_zero_on_diagonal() {
        let p = SectorPartition::axis_centered(4);
        // 45 degrees is a boundary for axis-centred k=4.
        let d = p.boundary_proximity(&Vec2::new([1.0, 1.0])).unwrap();
        assert!(d < 1e-9);
        // Due east is maximally far from boundaries.
        let d2 = p.boundary_proximity(&Vec2::new([1.0, 0.0])).unwrap();
        assert!((d2 - TAU / 8.0).abs() < 1e-9);
    }

    #[test]
    fn assign_blocks_covers_all_but_center() {
        let g = grid();
        let center = Point2::new([55.0, 55.0]); // centre of block (5,5)
        let p = SectorPartition::axis_centered(4);
        let blocks = g.blocks_within_ring(&BlockId::new(5, 5), 2);
        let assigned = p.assign_blocks(&g, &center, &blocks, 1e-9);
        // 25 blocks in the ring; the centre one has no direction.
        assert_eq!(assigned.len(), 24);
        for s in assigned.values() {
            assert!(*s < 4);
        }
    }

    #[test]
    fn tied_blocks_alternate_between_sectors() {
        let g = grid();
        let center = Point2::new([55.0, 55.0]);
        let p = SectorPartition::axis_centered(4);
        // Diagonal blocks (6,6), (7,7), (8,8) lie exactly on the NE boundary.
        let diag = vec![BlockId::new(6, 6), BlockId::new(7, 7), BlockId::new(8, 8)];
        let assigned = p.assign_blocks(&g, &center, &diag, 1e-6);
        let sectors: Vec<usize> = diag.iter().map(|b| assigned[b]).collect();
        // Alternation: consecutive tied blocks must differ.
        assert_ne!(sectors[0], sectors[1]);
        assert_eq!(sectors[0], sectors[2]);
        // And they must be the two sectors adjacent to the NE boundary.
        for s in sectors {
            assert!(s == 0 || s == 1);
        }
    }

    #[test]
    fn east_blocks_assigned_east() {
        let g = grid();
        let center = Point2::new([55.0, 55.0]);
        let p = SectorPartition::axis_centered(4);
        let blocks = vec![BlockId::new(7, 5), BlockId::new(9, 5)];
        let assigned = p.assign_blocks(&g, &center, &blocks, 1e-9);
        assert_eq!(assigned[&BlockId::new(7, 5)], 0);
        assert_eq!(assigned[&BlockId::new(9, 5)], 0);
    }

    #[test]
    fn k_eight_sectors() {
        let p = SectorPartition::axis_centered(8);
        assert_eq!(p.sector_of(&Vec2::new([1.0, 0.0])), Some(0));
        assert_eq!(p.sector_of(&Vec2::new([1.0, 1.0])), Some(1));
        assert_eq!(p.sector_of(&Vec2::new([0.0, 1.0])), Some(2));
        assert_eq!(p.sector_of(&Vec2::new([-1.0, -1.0])), Some(5));
    }
}
