//! 2-D view frusta.
//!
//! The paper's client has "a *view* attached to it. At any time, according
//! to the client's location and view direction, the client retrieves all
//! the objects within the range of its view" (§I). The evaluation
//! simplifies the view to an axis-aligned window; this module provides the
//! directional version: a fan-shaped [`Frustum`] (apex, heading, field of
//! view, depth), convertible to its bounding rectangle for index queries
//! and able to filter the results exactly.

use crate::{Point2, Rect2, Vec2};
use std::f64::consts::TAU;

/// A 2-D view frustum: everything within `depth` of `apex` and within
/// `fov/2` radians of `heading`.
///
/// ```
/// use mar_geom::{Frustum, Point2};
/// // Looking east with a 90° field of view, 100 units deep.
/// let view = Frustum::new(Point2::new([0.0, 0.0]), 0.0, std::f64::consts::FRAC_PI_2, 100.0);
/// assert!(view.contains_point(&Point2::new([50.0, 10.0])));
/// assert!(!view.contains_point(&Point2::new([-50.0, 0.0]))); // behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frustum {
    /// The viewer's position.
    pub apex: Point2,
    /// View direction, radians CCW from +x.
    pub heading: f64,
    /// Full angular width of the view, in radians (0, 2π].
    pub fov: f64,
    /// How far the view reaches.
    pub depth: f64,
}

impl Frustum {
    /// Creates a frustum.
    ///
    /// # Panics
    /// Panics unless `0 < fov <= 2π` and `depth > 0`.
    pub fn new(apex: Point2, heading: f64, fov: f64, depth: f64) -> Self {
        assert!(fov > 0.0 && fov <= TAU, "fov out of range: {fov}");
        assert!(depth > 0.0, "depth must be positive");
        Self {
            apex,
            heading: heading.rem_euclid(TAU),
            fov,
            depth,
        }
    }

    /// True when `p` is inside the frustum (inclusive of its boundary).
    pub fn contains_point(&self, p: &Point2) -> bool {
        let v = *p - self.apex;
        let d2 = v.norm_sq();
        if d2 > self.depth * self.depth {
            return false;
        }
        if d2 == 0.0 || self.fov >= TAU {
            return true;
        }
        // mar-lint: allow(D004) — the `d2 == 0.0` case early-returns above
        let angle = v.angle().expect("non-zero checked");
        let diff =
            (angle - self.heading + std::f64::consts::PI).rem_euclid(TAU) - std::f64::consts::PI;
        diff.abs() <= self.fov / 2.0 + 1e-12
    }

    /// The tight axis-aligned bounding rectangle of the frustum — the
    /// window to hand the index; exact membership is then re-checked with
    /// [`Frustum::contains_point`] / [`Frustum::intersects_rect`].
    pub fn bounding_rect(&self) -> Rect2 {
        let mut lo = self.apex;
        let mut hi = self.apex;
        let mut take = |p: Point2| {
            lo = lo.min(&p);
            hi = hi.max(&p);
        };
        let half = self.fov / 2.0;
        // The two arc endpoints.
        for a in [self.heading - half, self.heading + half] {
            take(self.apex + Vec2::new([a.cos(), a.sin()]) * self.depth);
        }
        // Cardinal extremes of the arc, when inside the angular range.
        for (k, cardinal) in [
            (0u8, 0.0),
            (1, TAU / 4.0),
            (2, TAU / 2.0),
            (3, 3.0 * TAU / 4.0),
        ] {
            let _ = k;
            let diff = (cardinal - self.heading + std::f64::consts::PI).rem_euclid(TAU)
                - std::f64::consts::PI;
            if diff.abs() <= half {
                take(self.apex + Vec2::new([cardinal.cos(), cardinal.sin()]) * self.depth);
            }
        }
        Rect2::from_corners(lo, hi)
    }

    /// Conservative frustum–rectangle intersection test: true when any
    /// corner, the centre, or the nearest boundary point of `r` falls in
    /// the frustum, or when `r` contains the apex. (Exact for the convex
    /// `fov ≤ π` case up to arc-sampling of the far cap; never reports a
    /// disjoint pair as intersecting.)
    pub fn intersects_rect(&self, r: &Rect2) -> bool {
        if r.contains_point(&self.apex) {
            return true;
        }
        let corners = [
            r.lo,
            r.hi,
            Point2::new([r.lo[0], r.hi[1]]),
            Point2::new([r.hi[0], r.lo[1]]),
        ];
        if corners.iter().any(|c| self.contains_point(c)) || self.contains_point(&r.center()) {
            return true;
        }
        // Sample the frustum's edge rays and far arc against the rect.
        let half = self.fov / 2.0;
        let steps = 8;
        for i in 0..=steps {
            let a = self.heading - half + self.fov * i as f64 / steps as f64;
            let far = self.apex + Vec2::new([a.cos(), a.sin()]) * self.depth;
            // Walk the ray apex→far in a few steps.
            for t in [0.25, 0.5, 0.75, 1.0] {
                if r.contains_point(&self.apex.lerp(&far, t)) {
                    return true;
                }
            }
        }
        false
    }

    /// Rotates the view.
    pub fn turned(&self, delta: f64) -> Self {
        Self {
            heading: (self.heading + delta).rem_euclid(TAU),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn east(fov: f64) -> Frustum {
        Frustum::new(Point2::new([0.0, 0.0]), 0.0, fov, 10.0)
    }

    #[test]
    fn contains_ahead_not_behind() {
        let f = east(FRAC_PI_2);
        assert!(f.contains_point(&Point2::new([5.0, 0.0])));
        assert!(f.contains_point(&Point2::new([5.0, 4.0])));
        assert!(!f.contains_point(&Point2::new([-5.0, 0.0])));
        assert!(!f.contains_point(&Point2::new([0.0, 5.0])));
    }

    #[test]
    fn depth_limits_view() {
        let f = east(FRAC_PI_2);
        assert!(f.contains_point(&Point2::new([10.0, 0.0])));
        assert!(!f.contains_point(&Point2::new([10.01, 0.0])));
    }

    #[test]
    fn apex_always_inside() {
        let f = east(0.1);
        assert!(f.contains_point(&Point2::new([0.0, 0.0])));
    }

    #[test]
    fn full_circle_fov_is_a_disc() {
        let f = east(TAU);
        assert!(f.contains_point(&Point2::new([0.0, 9.9])));
        assert!(f.contains_point(&Point2::new([-9.9, 0.0])));
        assert!(!f.contains_point(&Point2::new([8.0, 8.0])));
    }

    #[test]
    fn bounding_rect_contains_sampled_points() {
        for heading in [0.0, 0.7, FRAC_PI_2, PI, 4.0] {
            let f = Frustum::new(Point2::new([3.0, -2.0]), heading, 1.2, 7.0);
            let bb = f.bounding_rect();
            assert!(bb.contains_point(&f.apex));
            for i in 0..=32 {
                let a = f.heading - f.fov / 2.0 + f.fov * i as f64 / 32.0;
                for t in [0.3, 0.7, 1.0] {
                    let p = f.apex + Vec2::new([a.cos(), a.sin()]) * (f.depth * t);
                    assert!(
                        bb.contains_point(&p),
                        "heading {heading}: {p:?} escapes {bb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounding_rect_is_tight_for_eastward_cone() {
        let f = east(FRAC_PI_2);
        let bb = f.bounding_rect();
        // Max x is the cardinal east extreme at full depth.
        assert!((bb.hi[0] - 10.0).abs() < 1e-9);
        // y extremes are the arc endpoints at ±45°.
        assert!((bb.hi[1] - 10.0 / 2.0f64.sqrt()).abs() < 1e-9);
        assert!((bb.lo[0] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn intersects_rect_cases() {
        let f = east(FRAC_PI_2);
        // Dead ahead.
        assert!(f.intersects_rect(&Rect2::new(
            Point2::new([4.0, -1.0]),
            Point2::new([6.0, 1.0])
        )));
        // Behind.
        assert!(!f.intersects_rect(&Rect2::new(
            Point2::new([-6.0, -1.0]),
            Point2::new([-4.0, 1.0])
        )));
        // Contains the apex.
        assert!(f.intersects_rect(&Rect2::new(
            Point2::new([-1.0, -1.0]),
            Point2::new([1.0, 1.0])
        )));
        // Beyond the depth.
        assert!(!f.intersects_rect(&Rect2::new(
            Point2::new([20.0, -1.0]),
            Point2::new([22.0, 1.0])
        )));
    }

    #[test]
    fn turning_changes_what_is_seen() {
        let f = east(FRAC_PI_2);
        let north = f.turned(FRAC_PI_2);
        assert!(north.contains_point(&Point2::new([0.0, 5.0])));
        assert!(!north.contains_point(&Point2::new([5.0, 0.0])));
        // Turning a full circle is the identity.
        let same = f.turned(TAU);
        assert!((same.heading - f.heading).abs() < 1e-9);
    }
}
