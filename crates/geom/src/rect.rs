//! Axis-aligned hyper-rectangles and the rectangle algebra of Algorithm 1.
//!
//! The continuous-retrieval algorithm (paper §IV) works on the *overlap*
//! `O_t = Q_t ∩ Q_{t−1}` and the *new region* `N_t = Q_t − Q_{t−1}` of two
//! consecutive query frames. The difference of two rectangles is not a
//! rectangle, so [`Rect::difference`] decomposes it into at most `2·N`
//! pairwise-disjoint rectangles (the paper's Figure 3 splits the example
//! region along the x-axis into two sub-queries; we generalise the same
//! slab decomposition to any dimension).
//!
//! `Rect` is also the key type of the R-tree crate: index entries, node
//! MBRs and window queries are all `Rect<N>`.

use crate::point::Point;

/// An axis-aligned hyper-rectangle in `N` dimensions, stored as the
/// component-wise minimum (`lo`) and maximum (`hi`) corner.
///
/// Invariant: `lo[i] <= hi[i]` for every dimension `i`. Degenerate
/// rectangles (zero extent in some dimension) are allowed — a wavelet
/// coefficient's value, for instance, occupies a single `w` coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const N: usize> {
    /// Minimum corner.
    pub lo: Point<N>,
    /// Maximum corner.
    pub hi: Point<N>,
}

impl<const N: usize> Rect<N> {
    /// Creates a rectangle from two opposite corners, normalising so the
    /// stored `lo`/`hi` respect the invariant.
    pub fn new(a: Point<N>, b: Point<N>) -> Self {
        Self {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// Creates a rectangle from explicit `lo`/`hi` corners.
    ///
    /// # Panics
    /// Panics (in debug builds) if `lo[i] > hi[i]` in any dimension.
    pub fn from_corners(lo: Point<N>, hi: Point<N>) -> Self {
        debug_assert!(
            (0..N).all(|i| lo[i] <= hi[i]),
            "Rect corners violate lo <= hi"
        );
        Self { lo, hi }
    }

    /// A degenerate rectangle containing exactly one point.
    pub fn point(p: Point<N>) -> Self {
        Self { lo: p, hi: p }
    }

    /// A rectangle centred at `c` with the given half-extent per dimension.
    pub fn centered(c: Point<N>, half: [f64; N]) -> Self {
        let mut lo = c;
        let mut hi = c;
        for i in 0..N {
            lo[i] -= half[i];
            hi[i] += half[i];
        }
        Self { lo, hi }
    }

    /// Extent along dimension `i`.
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Hyper-volume (area in 2-D).
    pub fn volume(&self) -> f64 {
        (0..N).map(|i| self.extent(i)).product()
    }

    /// Sum of extents over all dimensions — the *margin* used by the
    /// R*-tree split heuristic.
    pub fn margin(&self) -> f64 {
        (0..N).map(|i| self.extent(i)).sum()
    }

    /// Centre point.
    pub fn center(&self) -> Point<N> {
        self.lo.midpoint(&self.hi)
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains_point(&self, p: &Point<N>) -> bool {
        (0..N).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// True when `other` lies entirely inside or on the boundary of `self`.
    pub fn contains_rect(&self, other: &Self) -> bool {
        (0..N).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// True when the closed rectangles share at least one point.
    pub fn intersects(&self, other: &Self) -> bool {
        (0..N).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// True when the *open interiors* overlap (touching edges do not count).
    /// Degenerate rectangles never interior-overlap.
    pub fn interior_intersects(&self, other: &Self) -> bool {
        (0..N).all(|i| self.lo[i] < other.hi[i] && other.lo[i] < self.hi[i])
    }

    /// Intersection of the two closed rectangles, or `None` when disjoint.
    pub fn intersection(&self, other: &Self) -> Option<Self> {
        if !self.intersects(other) {
            return None;
        }
        Some(Self {
            lo: self.lo.max(&other.lo),
            hi: self.hi.min(&other.hi),
        })
    }

    /// Smallest rectangle enclosing both inputs (the R-tree "enlarge" op).
    pub fn union(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Volume of the intersection (0 when disjoint) — used by split
    /// heuristics.
    pub fn overlap_volume(&self, other: &Self) -> f64 {
        match self.intersection(other) {
            Some(r) => r.volume(),
            None => 0.0,
        }
    }

    /// How much `self.union(other)` grows beyond `self` in volume.
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Grows the rectangle by `pad` on every side of every dimension.
    pub fn inflate(&self, pad: f64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..N {
            lo[i] -= pad;
            hi[i] += pad;
        }
        Self::new(lo, hi)
    }

    /// Minimum distance from `p` to the rectangle (0 when inside) — used by
    /// the R*-tree choose-subtree tie-break and useful for nearest-block
    /// reasoning in the buffer manager.
    pub fn min_distance(&self, p: &Point<N>) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..N {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc.sqrt()
    }

    /// Decomposes `self − other` into at most `2·N` pairwise-disjoint
    /// rectangles whose union is exactly the set difference.
    ///
    /// This is the slab decomposition of the paper's Figure 3: for each
    /// dimension in turn, the parts of the remaining region lying strictly
    /// below/above `other`'s extent are split off as whole slabs; the
    /// leftover is clipped to `other`'s extent in that dimension and the
    /// process recurses into the next dimension.
    ///
    /// * If the rectangles are disjoint the result is `vec![self]`.
    /// * If `other` covers `self` the result is empty.
    /// * Degenerate slivers (zero volume) are omitted.
    ///
    /// ```
    /// use mar_geom::{Point2, Rect2};
    /// let q_prev = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([4.0, 4.0]));
    /// let q_cur = Rect2::new(Point2::new([1.0, 1.0]), Point2::new([5.0, 5.0]));
    /// let new_region = q_cur.difference(&q_prev);
    /// // The L-shaped new region decomposes into two disjoint slabs.
    /// assert_eq!(new_region.len(), 2);
    /// let area: f64 = new_region.iter().map(|r| r.volume()).sum();
    /// assert!((area - 7.0).abs() < 1e-12);
    /// ```
    pub fn difference(&self, other: &Self) -> Vec<Self> {
        if !self.intersects(other) {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(2 * N);
        let mut remainder = *self;
        for i in 0..N {
            // Slab strictly below `other` in dimension i.
            if remainder.lo[i] < other.lo[i] {
                let mut hi = remainder.hi;
                hi[i] = other.lo[i];
                let slab = Self::from_corners(remainder.lo, hi);
                if slab.volume() > 0.0 {
                    out.push(slab);
                }
                remainder.lo[i] = other.lo[i];
            }
            // Slab strictly above `other` in dimension i.
            if remainder.hi[i] > other.hi[i] {
                let mut lo = remainder.lo;
                lo[i] = other.hi[i];
                let slab = Self::from_corners(lo, remainder.hi);
                if slab.volume() > 0.0 {
                    out.push(slab);
                }
                remainder.hi[i] = other.hi[i];
            }
        }
        // What is left of `remainder` is inside `other` and is discarded.
        out
    }

    /// True when every coordinate of both corners is finite.
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }
}

impl<const N: usize> Rect<N> {
    /// Lifts an `N`-dimensional rectangle into `N+1` dimensions by
    /// appending the closed interval `[lo_extra, hi_extra]` as the last
    /// coordinate. Used to build `x-y-w` index regions from spatial MBRs.
    pub fn lift<const M: usize>(&self, lo_extra: f64, hi_extra: f64) -> Rect<M> {
        assert_eq!(M, N + 1, "lift target must have exactly one extra dim");
        let mut lo = Point::<M>::ORIGIN;
        let mut hi = Point::<M>::ORIGIN;
        for i in 0..N {
            lo[i] = self.lo[i];
            hi[i] = self.hi[i];
        }
        lo[N] = lo_extra.min(hi_extra);
        hi[N] = lo_extra.max(hi_extra);
        Rect { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point2;

    fn r2(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect<2> {
        Rect::new(Point2::new([x0, y0]), Point2::new([x1, y1]))
    }

    #[test]
    fn new_normalizes_corners() {
        let r = Rect::new(Point2::new([5.0, 1.0]), Point2::new([1.0, 5.0]));
        assert_eq!(r.lo, Point2::new([1.0, 1.0]));
        assert_eq!(r.hi, Point2::new([5.0, 5.0]));
    }

    #[test]
    fn volume_margin_center() {
        let r = r2(0.0, 0.0, 4.0, 2.0);
        assert_eq!(r.volume(), 8.0);
        assert_eq!(r.margin(), 6.0);
        assert_eq!(r.center(), Point2::new([2.0, 1.0]));
    }

    #[test]
    fn containment() {
        let outer = r2(0.0, 0.0, 10.0, 10.0);
        let inner = r2(2.0, 2.0, 5.0, 5.0);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_point(&Point2::new([0.0, 10.0])));
        assert!(!outer.contains_point(&Point2::new([-0.1, 5.0])));
    }

    #[test]
    fn intersection_and_union() {
        let a = r2(0.0, 0.0, 4.0, 4.0);
        let b = r2(2.0, 2.0, 6.0, 6.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, r2(2.0, 2.0, 4.0, 4.0));
        assert_eq!(a.union(&b), r2(0.0, 0.0, 6.0, 6.0));
        assert_eq!(a.overlap_volume(&b), 4.0);
        let c = r2(10.0, 10.0, 11.0, 11.0);
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn touching_rects_intersect_closed_but_not_open() {
        let a = r2(0.0, 0.0, 1.0, 1.0);
        let b = r2(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.interior_intersects(&b));
    }

    #[test]
    fn enlargement_measures_growth() {
        let a = r2(0.0, 0.0, 2.0, 2.0);
        let b = r2(1.0, 1.0, 3.0, 3.0);
        // union is 3x3 = 9, a is 4 => growth 5
        assert_eq!(a.enlargement(&b), 5.0);
        assert_eq!(a.enlargement(&r2(0.5, 0.5, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn difference_disjoint_returns_self() {
        let a = r2(0.0, 0.0, 1.0, 1.0);
        let b = r2(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.difference(&b), vec![a]);
    }

    #[test]
    fn difference_covered_is_empty() {
        let a = r2(1.0, 1.0, 2.0, 2.0);
        let b = r2(0.0, 0.0, 3.0, 3.0);
        assert!(a.difference(&b).is_empty());
    }

    #[test]
    fn difference_paper_figure3_shape() {
        // Frame moves up-right: the difference is an L-shape made of 2 rects.
        let q_prev = r2(0.0, 0.0, 4.0, 4.0);
        let q_cur = r2(1.0, 1.0, 5.0, 5.0);
        let parts = q_cur.difference(&q_prev);
        assert_eq!(parts.len(), 2);
        let total: f64 = parts.iter().map(|r| r.volume()).sum();
        let expected = q_cur.volume() - q_cur.overlap_volume(&q_prev);
        assert!((total - expected).abs() < 1e-9);
        // Parts must be disjoint (open interiors).
        assert!(!parts[0].interior_intersects(&parts[1]));
        // Each part is inside q_cur and outside q_prev's interior.
        for p in &parts {
            assert!(q_cur.contains_rect(p));
            assert!(!q_prev.interior_intersects(p) || q_prev.overlap_volume(p) < 1e-12);
        }
    }

    #[test]
    fn difference_hole_in_middle_yields_four_parts() {
        let outer = r2(0.0, 0.0, 10.0, 10.0);
        let inner = r2(4.0, 4.0, 6.0, 6.0);
        let parts = outer.difference(&inner);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|r| r.volume()).sum();
        assert!((total - (100.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn min_distance_inside_is_zero() {
        let r = r2(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.min_distance(&Point2::new([2.0, 2.0])), 0.0);
        assert_eq!(r.min_distance(&Point2::new([7.0, 4.0])), 3.0);
        let d = r.min_distance(&Point2::new([7.0, 8.0]));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lift_appends_dimension() {
        let r = r2(0.0, 0.0, 2.0, 2.0);
        let l: Rect<3> = r.lift(0.25, 0.75);
        assert_eq!(l.lo.coords, [0.0, 0.0, 0.25]);
        assert_eq!(l.hi.coords, [2.0, 2.0, 0.75]);
        // Swapped extra bounds are normalised too.
        let l2: Rect<3> = r.lift(0.75, 0.25);
        assert_eq!(l2.lo[2], 0.25);
        assert_eq!(l2.hi[2], 0.75);
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = r2(1.0, 1.0, 2.0, 2.0).inflate(0.5);
        assert_eq!(r, r2(0.5, 0.5, 2.5, 2.5));
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Point2::new([3.0, 3.0]);
        let r = Rect::point(p);
        assert_eq!(r.volume(), 0.0);
        assert!(r.contains_point(&p));
        assert!(r.intersects(&r2(0.0, 0.0, 3.0, 3.0)));
    }
}
