//! # mar-geom — geometric primitives for motion-aware retrieval
//!
//! This crate provides the geometric substrate shared by every other crate in
//! the workspace:
//!
//! * [`Point`] / [`Vector`] — const-generic fixed-dimension points and
//!   vectors with the small amount of arithmetic the simulation needs.
//! * [`Rect`] — axis-aligned hyper-rectangles with the *rectangle algebra*
//!   that Algorithm 1 of the paper relies on: intersection, union,
//!   containment, and most importantly [`Rect::difference`], which
//!   decomposes `A − B` into at most `2·N` **disjoint** rectangles (the
//!   paper's Figure 3 split of the new query frame into sub-queries).
//! * [`grid`] — the block grid that the buffer manager of §V uses: the data
//!   space is divided into grid-like blocks, and prefetching operates on
//!   block ids.
//! * [`sector`] — partitioning of the plane around the client into `k`
//!   equally sized sectors (directions), including the paper's tie-breaking
//!   rule for blocks that straddle a partition line (§V-B, Figure 4(b)).
//!
//! Everything here is deterministic and allocation-light; `Rect` and `Point`
//! are `Copy` so they can flow through the query pipeline freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fixed-size numeric kernels below index two arrays in lockstep
// (`out[i] = a[i] op b[i]`); the indexed form is the clearest statement of
// that, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod frustum;
pub mod grid;
pub mod point;
pub mod rect;
pub mod sector;

pub use frustum::Frustum;
pub use grid::{BlockId, GridSpec};
pub use point::{Point, Vector};
pub use rect::Rect;
pub use sector::SectorPartition;

/// A 2-dimensional point (the ground plane of the city data space).
pub type Point2 = Point<2>;
/// A 3-dimensional point (object geometry).
pub type Point3 = Point<3>;
/// A 4-dimensional point (x, y, z + wavelet value `w`).
pub type Point4 = Point<4>;
/// A 2-dimensional vector.
pub type Vec2 = Vector<2>;
/// A 3-dimensional vector.
pub type Vec3 = Vector<3>;
/// A 2-dimensional axis-aligned rectangle (query frames, block extents).
pub type Rect2 = Rect<2>;
/// A 3-dimensional axis-aligned box (object MBBs, or the paper's
/// experimental `x-y-w` index space).
pub type Rect3 = Rect<3>;
/// A 4-dimensional box (`x, y, z, w` — the full wavelet index space of §VI-B).
pub type Rect4 = Rect<4>;
