//! The block grid of §V.
//!
//! The buffer-management cost model assumes the data space is "divided into
//! grid-like blocks"; the client prefetches whole blocks and a *cache miss*
//! means the current query frame touches a block that is not buffered.
//! [`GridSpec`] defines the tiling, [`BlockId`] names one cell, and the
//! methods here convert between continuous space and block coordinates.

use crate::{Point2, Rect2};

/// Integer coordinates of one grid block. Blocks outside the data space are
/// representable (predictions may wander off the edge); [`GridSpec::clamp`]
/// pulls them back in when needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Column index (x direction).
    pub ix: i64,
    /// Row index (y direction).
    pub iy: i64,
}

impl BlockId {
    /// Creates a block id.
    pub const fn new(ix: i64, iy: i64) -> Self {
        Self { ix, iy }
    }

    /// Chebyshev (ring) distance between two blocks — the radius of the
    /// smallest square ring around `self` containing `other`.
    pub fn ring_distance(&self, other: &Self) -> i64 {
        (self.ix - other.ix).abs().max((self.iy - other.iy).abs())
    }

    /// Manhattan distance between two blocks.
    pub fn manhattan(&self, other: &Self) -> i64 {
        (self.ix - other.ix).abs() + (self.iy - other.iy).abs()
    }
}

/// A uniform tiling of a rectangular data space into `nx × ny` blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// The extent of the data space being tiled.
    pub space: Rect2,
    /// Number of blocks along x.
    pub nx: u32,
    /// Number of blocks along y.
    pub ny: u32,
}

impl GridSpec {
    /// Creates a grid over `space` with the given block counts.
    ///
    /// # Panics
    /// Panics if either block count is zero or the space is degenerate.
    pub fn new(space: Rect2, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one block");
        assert!(
            space.extent(0) > 0.0 && space.extent(1) > 0.0,
            "grid space must have positive extent"
        );
        Self { space, nx, ny }
    }

    /// Creates a grid whose blocks are as close as possible to
    /// `block_size × block_size` in space units (at least 1×1 blocks).
    pub fn with_block_size(space: Rect2, block_size: f64) -> Self {
        assert!(block_size > 0.0, "block size must be positive");
        let nx = (space.extent(0) / block_size).round().max(1.0) as u32;
        let ny = (space.extent(1) / block_size).round().max(1.0) as u32;
        Self::new(space, nx, ny)
    }

    /// Width of one block in space units.
    pub fn block_w(&self) -> f64 {
        self.space.extent(0) / self.nx as f64
    }

    /// Height of one block in space units.
    pub fn block_h(&self) -> f64 {
        self.space.extent(1) / self.ny as f64
    }

    /// Total number of blocks in the grid.
    pub fn block_count(&self) -> u64 {
        self.nx as u64 * self.ny as u64
    }

    /// The block containing point `p`. Points on shared block boundaries
    /// belong to the block with the larger index except at the space's far
    /// edge, which maps into the last block so the whole closed space is
    /// covered.
    pub fn block_of(&self, p: &Point2) -> BlockId {
        let fx = (p[0] - self.space.lo[0]) / self.block_w();
        let fy = (p[1] - self.space.lo[1]) / self.block_h();
        let ix = (fx.floor() as i64).min(self.nx as i64 - 1);
        let iy = (fy.floor() as i64).min(self.ny as i64 - 1);
        BlockId::new(ix, iy)
    }

    /// The spatial extent of block `b` (blocks outside the data space get
    /// their natural extrapolated extent).
    pub fn block_rect(&self, b: &BlockId) -> Rect2 {
        let w = self.block_w();
        let h = self.block_h();
        let x0 = self.space.lo[0] + b.ix as f64 * w;
        let y0 = self.space.lo[1] + b.iy as f64 * h;
        Rect2::new(Point2::new([x0, y0]), Point2::new([x0 + w, y0 + h]))
    }

    /// Centre of block `b`.
    pub fn block_center(&self, b: &BlockId) -> Point2 {
        self.block_rect(b).center()
    }

    /// True when `b` lies inside the tiled data space.
    pub fn in_bounds(&self, b: &BlockId) -> bool {
        (0..self.nx as i64).contains(&b.ix) && (0..self.ny as i64).contains(&b.iy)
    }

    /// Clamps a block id to the data space.
    pub fn clamp(&self, b: &BlockId) -> BlockId {
        BlockId::new(
            b.ix.clamp(0, self.nx as i64 - 1),
            b.iy.clamp(0, self.ny as i64 - 1),
        )
    }

    /// All in-bounds blocks intersecting the rectangle `r` (closed
    /// intersection: a frame touching a block boundary pulls that block in).
    pub fn blocks_overlapping(&self, r: &Rect2) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.blocks_overlapping_into(r, &mut out);
        out
    }

    /// Like [`GridSpec::blocks_overlapping`], but reuses `out` (cleared
    /// first) so per-tick simulation loops allocate nothing in steady
    /// state. Blocks are pushed in the same row-major order.
    pub fn blocks_overlapping_into(&self, r: &Rect2, out: &mut Vec<BlockId>) {
        out.clear();
        let Some(clipped) = r.intersection(&self.space) else {
            return;
        };
        let w = self.block_w();
        let h = self.block_h();
        let ix0 = ((clipped.lo[0] - self.space.lo[0]) / w).floor() as i64;
        let iy0 = ((clipped.lo[1] - self.space.lo[1]) / h).floor() as i64;
        // Use a tiny epsilon so a frame whose edge coincides with a block
        // boundary does not pull in the next (untouched) block row.
        let eps = 1e-9 * (w + h);
        let ix1 = (((clipped.hi[0] - self.space.lo[0]) / w) - eps)
            .floor()
            .max(ix0 as f64) as i64;
        let iy1 = (((clipped.hi[1] - self.space.lo[1]) / h) - eps)
            .floor()
            .max(iy0 as f64) as i64;
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let b = BlockId::new(ix, iy);
                if self.in_bounds(&b) {
                    out.push(b);
                }
            }
        }
    }

    /// Decomposes `r ∩ space` into per-block clipped sub-rectangles: one
    /// `(block, sub-rect)` pair per overlapped block, in row-major block
    /// order. The sub-rects are pairwise interior-disjoint and their union
    /// is exactly `r ∩ space` — the scatter half of the sharded router's
    /// scatter-gather (each shard answers its own clipped piece and the
    /// merged answer covers the query exactly once per block).
    ///
    /// Adjacent sub-rects share their boundary edge *bit-exactly*: both
    /// sides compute it as the same `space.lo + i·block_w` expression, so
    /// no float seam can open or overlap between shards.
    pub fn partition_rect(&self, r: &Rect2) -> Vec<(BlockId, Rect2)> {
        let mut out = Vec::new();
        self.partition_rect_into(r, &mut out);
        out
    }

    /// Like [`GridSpec::partition_rect`], but reuses `out` (cleared first)
    /// so per-tick routing loops allocate nothing in steady state.
    pub fn partition_rect_into(&self, r: &Rect2, out: &mut Vec<(BlockId, Rect2)>) {
        out.clear();
        let Some(clipped) = r.intersection(&self.space) else {
            return;
        };
        let w = self.block_w();
        let h = self.block_h();
        let ix0 = ((clipped.lo[0] - self.space.lo[0]) / w).floor() as i64;
        let iy0 = ((clipped.lo[1] - self.space.lo[1]) / h).floor() as i64;
        // Same epsilon discipline as `blocks_overlapping_into`: a query
        // edge coinciding with a block boundary must not pull in the next
        // block (whose clipped sub-rect would be degenerate anyway).
        let eps = 1e-9 * (w + h);
        let ix1 = (((clipped.hi[0] - self.space.lo[0]) / w) - eps)
            .floor()
            .max(ix0 as f64) as i64;
        let iy1 = (((clipped.hi[1] - self.space.lo[1]) / h) - eps)
            .floor()
            .max(iy0 as f64) as i64;
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let b = BlockId::new(ix, iy);
                if !self.in_bounds(&b) {
                    continue;
                }
                // Clip against the block's analytic edges. Interior edges
                // of the decomposition are the raw `lo + i·w` values on
                // both sides, hence bit-identical across the seam.
                let x0 = clipped.lo[0].max(self.space.lo[0] + ix as f64 * w);
                let x1 = clipped.hi[0].min(self.space.lo[0] + (ix + 1) as f64 * w);
                let y0 = clipped.lo[1].max(self.space.lo[1] + iy as f64 * h);
                let y1 = clipped.hi[1].min(self.space.lo[1] + (iy + 1) as f64 * h);
                out.push((
                    b,
                    Rect2::new(Point2::new([x0, y0]), Point2::new([x1.max(x0), y1.max(y0)])),
                ));
            }
        }
    }

    /// All in-bounds blocks whose ring (Chebyshev) distance from `center`
    /// is at most `radius`, in row-major order.
    pub fn blocks_within_ring(&self, center: &BlockId, radius: i64) -> Vec<BlockId> {
        let mut out = Vec::new();
        for iy in (center.iy - radius)..=(center.iy + radius) {
            for ix in (center.ix - radius)..=(center.ix + radius) {
                let b = BlockId::new(ix, iy);
                if self.in_bounds(&b) {
                    out.push(b);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_10x10() -> GridSpec {
        GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            10,
            10,
        )
    }

    #[test]
    fn block_of_interior_points() {
        let g = grid_10x10();
        assert_eq!(g.block_of(&Point2::new([5.0, 5.0])), BlockId::new(0, 0));
        assert_eq!(g.block_of(&Point2::new([15.0, 95.0])), BlockId::new(1, 9));
    }

    #[test]
    fn far_edge_maps_into_last_block() {
        let g = grid_10x10();
        assert_eq!(g.block_of(&Point2::new([100.0, 100.0])), BlockId::new(9, 9));
    }

    #[test]
    fn block_rect_round_trip() {
        let g = grid_10x10();
        let b = BlockId::new(3, 7);
        let r = g.block_rect(&b);
        assert_eq!(g.block_of(&r.center()), b);
        assert!((r.volume() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_overlapping_counts() {
        let g = grid_10x10();
        // A frame inside a single block.
        let one = g.blocks_overlapping(&Rect2::new(
            Point2::new([1.0, 1.0]),
            Point2::new([9.0, 9.0]),
        ));
        assert_eq!(one, vec![BlockId::new(0, 0)]);
        // A frame spanning a 2x2 patch of blocks.
        let four = g.blocks_overlapping(&Rect2::new(
            Point2::new([5.0, 5.0]),
            Point2::new([15.0, 15.0]),
        ));
        assert_eq!(four.len(), 4);
        // A frame exactly coinciding with one block's extent.
        let exact = g.blocks_overlapping(&g.block_rect(&BlockId::new(2, 2)));
        assert_eq!(exact, vec![BlockId::new(2, 2)]);
    }

    #[test]
    fn blocks_overlapping_clips_to_space() {
        let g = grid_10x10();
        let out = g.blocks_overlapping(&Rect2::new(
            Point2::new([-50.0, -50.0]),
            Point2::new([5.0, 5.0]),
        ));
        assert_eq!(out, vec![BlockId::new(0, 0)]);
        let none = g.blocks_overlapping(&Rect2::new(
            Point2::new([200.0, 200.0]),
            Point2::new([300.0, 300.0]),
        ));
        assert!(none.is_empty());
    }

    #[test]
    fn partition_covers_exactly_once() {
        let g = grid_10x10();
        let q = Rect2::new(Point2::new([5.0, 5.0]), Point2::new([37.0, 26.0]));
        let parts = g.partition_rect(&q);
        assert_eq!(parts.len(), 4 * 3);
        // Blocks agree with blocks_overlapping, in the same order.
        let blocks: Vec<BlockId> = parts.iter().map(|(b, _)| *b).collect();
        assert_eq!(blocks, g.blocks_overlapping(&q));
        // Each sub-rect lies inside both its block and the query.
        let mut area = 0.0;
        for (b, sub) in &parts {
            assert!(g.block_rect(b).contains_rect(sub));
            assert!(q.contains_rect(sub));
            area += sub.volume();
        }
        // Pairwise interior-disjoint, and the areas add to the query's.
        for (i, (_, a)) in parts.iter().enumerate() {
            for (_, b) in &parts[i + 1..] {
                assert!(!a.interior_intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        assert!((area - q.volume()).abs() < 1e-9 * q.volume());
    }

    #[test]
    fn partition_seams_are_bit_exact() {
        let g = grid_10x10();
        let q = Rect2::new(Point2::new([3.0, 3.0]), Point2::new([27.0, 17.0]));
        let parts = g.partition_rect(&q);
        // Horizontally adjacent sub-rects share their seam coordinate
        // bit-for-bit; no gap or overlap can open between shards.
        for (ba, ra) in &parts {
            for (bb, rb) in &parts {
                if bb.ix == ba.ix + 1 && bb.iy == ba.iy {
                    assert_eq!(ra.hi[0].to_bits(), rb.lo[0].to_bits());
                }
                if bb.iy == ba.iy + 1 && bb.ix == ba.ix {
                    assert_eq!(ra.hi[1].to_bits(), rb.lo[1].to_bits());
                }
            }
        }
    }

    #[test]
    fn partition_clips_to_space_and_handles_misses() {
        let g = grid_10x10();
        let straddling = Rect2::new(Point2::new([-20.0, 95.0]), Point2::new([15.0, 140.0]));
        let parts = g.partition_rect(&straddling);
        assert_eq!(parts.len(), 2, "only the in-space corner blocks remain");
        let clipped = straddling.intersection(&g.space).unwrap();
        let area: f64 = parts.iter().map(|(_, r)| r.volume()).sum();
        assert!((area - clipped.volume()).abs() < 1e-9);
        // A query entirely outside the space partitions to nothing.
        assert!(g
            .partition_rect(&Rect2::new(
                Point2::new([500.0, 500.0]),
                Point2::new([600.0, 600.0]),
            ))
            .is_empty());
        // A query exactly one block wide yields that block's rect alone.
        let exact = g.partition_rect(&g.block_rect(&BlockId::new(4, 4)));
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].0, BlockId::new(4, 4));
        assert_eq!(exact[0].1, g.block_rect(&BlockId::new(4, 4)));
    }

    #[test]
    fn ring_blocks() {
        let g = grid_10x10();
        let c = BlockId::new(5, 5);
        assert_eq!(g.blocks_within_ring(&c, 0), vec![c]);
        assert_eq!(g.blocks_within_ring(&c, 1).len(), 9);
        assert_eq!(g.blocks_within_ring(&c, 2).len(), 25);
        // Near the corner the ring is clipped by the space bounds.
        let corner = BlockId::new(0, 0);
        assert_eq!(g.blocks_within_ring(&corner, 1).len(), 4);
    }

    #[test]
    fn clamp_and_bounds() {
        let g = grid_10x10();
        assert!(g.in_bounds(&BlockId::new(0, 9)));
        assert!(!g.in_bounds(&BlockId::new(-1, 3)));
        assert_eq!(g.clamp(&BlockId::new(-5, 20)), BlockId::new(0, 9));
    }

    #[test]
    fn with_block_size_rounds_counts() {
        let g = GridSpec::with_block_size(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 50.0])),
            10.0,
        );
        assert_eq!((g.nx, g.ny), (10, 5));
        assert_eq!(g.block_count(), 50);
    }

    #[test]
    fn distances() {
        let a = BlockId::new(0, 0);
        let b = BlockId::new(3, -4);
        assert_eq!(a.ring_distance(&b), 4);
        assert_eq!(a.manhattan(&b), 7);
    }
}
