//! Const-generic points and vectors.
//!
//! The simulation only needs a handful of operations (component-wise
//! arithmetic, dot products, norms, lerp), so rather than pulling in a linear
//! algebra crate we implement exactly those on `[f64; N]` wrappers. Keeping
//! `Point`/`Vector` distinct types documents intent at API boundaries: a
//! `Point` is a location in the data space, a `Vector` is a displacement
//! (velocity, wavelet detail offset, …).

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A location in `N`-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const N: usize> {
    /// Coordinates, one per dimension.
    pub coords: [f64; N],
}

/// A displacement in `N`-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vector<const N: usize> {
    /// Components, one per dimension.
    pub comps: [f64; N],
}

impl<const N: usize> Default for Point<N> {
    fn default() -> Self {
        Self::ORIGIN
    }
}

impl<const N: usize> Default for Vector<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Point<N> {
    /// The origin (all coordinates zero).
    pub const ORIGIN: Self = Self { coords: [0.0; N] };

    /// Creates a point from raw coordinates.
    pub const fn new(coords: [f64; N]) -> Self {
        Self { coords }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Self) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparing).
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..N {
            let d = self.coords[i] - other.coords[i];
            acc += d * d;
        }
        acc
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut coords = [0.0; N];
        for i in 0..N {
            coords[i] = self.coords[i] + (other.coords[i] - self.coords[i]) * t;
        }
        Self { coords }
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Self) -> Self {
        let mut coords = [0.0; N];
        for i in 0..N {
            coords[i] = self.coords[i].min(other.coords[i]);
        }
        Self { coords }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Self) -> Self {
        let mut coords = [0.0; N];
        for i in 0..N {
            coords[i] = self.coords[i].max(other.coords[i]);
        }
        Self { coords }
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &Self) -> Self {
        self.lerp(other, 0.5)
    }

    /// Interprets the point as a displacement from the origin.
    pub fn to_vector(self) -> Vector<N> {
        Vector { comps: self.coords }
    }

    /// True when every coordinate is finite (no NaN/∞).
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl<const N: usize> Vector<N> {
    /// The zero vector.
    pub const ZERO: Self = Self { comps: [0.0; N] };

    /// Creates a vector from raw components.
    pub const fn new(comps: [f64; N]) -> Self {
        Self { comps }
    }

    /// Dot product.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..N {
            acc += self.comps[i] * other.comps[i];
        }
        acc
    }

    /// Euclidean norm (length).
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm.
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in this direction, or `None` for (near-)zero
    /// vectors where the direction is undefined.
    pub fn normalized(&self) -> Option<Self> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(*self / n)
        }
    }

    /// Interprets the vector as a point displaced from the origin.
    pub fn to_point(self) -> Point<N> {
        Point { coords: self.comps }
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.comps.iter().all(|c| c.is_finite())
    }
}

impl Vector<2> {
    /// Angle of the vector in radians within `[0, 2π)`, measured
    /// counter-clockwise from the positive x-axis. Returns `None` for the
    /// zero vector.
    pub fn angle(&self) -> Option<f64> {
        if self.norm_sq() <= f64::EPSILON * f64::EPSILON {
            return None;
        }
        let a = self.comps[1].atan2(self.comps[0]);
        Some(if a < 0.0 {
            a + std::f64::consts::TAU
        } else {
            a
        })
    }
}

impl<const N: usize> Index<usize> for Point<N> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl<const N: usize> IndexMut<usize> for Point<N> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl<const N: usize> Index<usize> for Vector<N> {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.comps[i]
    }
}

impl<const N: usize> IndexMut<usize> for Vector<N> {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.comps[i]
    }
}

impl<const N: usize> Sub for Point<N> {
    type Output = Vector<N>;
    fn sub(self, rhs: Self) -> Vector<N> {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = self.coords[i] - rhs.coords[i];
        }
        Vector { comps }
    }
}

impl<const N: usize> Add<Vector<N>> for Point<N> {
    type Output = Point<N>;
    fn add(self, rhs: Vector<N>) -> Point<N> {
        let mut coords = [0.0; N];
        for i in 0..N {
            coords[i] = self.coords[i] + rhs.comps[i];
        }
        Point { coords }
    }
}

impl<const N: usize> Sub<Vector<N>> for Point<N> {
    type Output = Point<N>;
    fn sub(self, rhs: Vector<N>) -> Point<N> {
        let mut coords = [0.0; N];
        for i in 0..N {
            coords[i] = self.coords[i] - rhs.comps[i];
        }
        Point { coords }
    }
}

impl<const N: usize> AddAssign<Vector<N>> for Point<N> {
    fn add_assign(&mut self, rhs: Vector<N>) {
        for i in 0..N {
            self.coords[i] += rhs.comps[i];
        }
    }
}

impl<const N: usize> Add for Vector<N> {
    type Output = Vector<N>;
    fn add(self, rhs: Self) -> Self {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = self.comps[i] + rhs.comps[i];
        }
        Vector { comps }
    }
}

impl<const N: usize> Sub for Vector<N> {
    type Output = Vector<N>;
    fn sub(self, rhs: Self) -> Self {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = self.comps[i] - rhs.comps[i];
        }
        Vector { comps }
    }
}

impl<const N: usize> AddAssign for Vector<N> {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..N {
            self.comps[i] += rhs.comps[i];
        }
    }
}

impl<const N: usize> SubAssign for Vector<N> {
    fn sub_assign(&mut self, rhs: Self) {
        for i in 0..N {
            self.comps[i] -= rhs.comps[i];
        }
    }
}

impl<const N: usize> Mul<f64> for Vector<N> {
    type Output = Vector<N>;
    fn mul(self, rhs: f64) -> Self {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = self.comps[i] * rhs;
        }
        Vector { comps }
    }
}

impl<const N: usize> Div<f64> for Vector<N> {
    type Output = Vector<N>;
    fn div(self, rhs: f64) -> Self {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = self.comps[i] / rhs;
        }
        Vector { comps }
    }
}

impl<const N: usize> Neg for Vector<N> {
    type Output = Vector<N>;
    fn neg(self) -> Self {
        let mut comps = [0.0; N];
        for i in 0..N {
            comps[i] = -self.comps[i];
        }
        Vector { comps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P2 = Point<2>;
    type V2 = Vector<2>;

    #[test]
    fn point_distance() {
        let a = P2::new([0.0, 0.0]);
        let b = P2::new([3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn point_lerp_endpoints_and_midpoint() {
        let a = P2::new([1.0, 2.0]);
        let b = P2::new([3.0, 6.0]);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.midpoint(&b), P2::new([2.0, 4.0]));
    }

    #[test]
    fn point_min_max() {
        let a = P2::new([1.0, 5.0]);
        let b = P2::new([3.0, 2.0]);
        assert_eq!(a.min(&b), P2::new([1.0, 2.0]));
        assert_eq!(a.max(&b), P2::new([3.0, 5.0]));
    }

    #[test]
    fn vector_arithmetic() {
        let v = V2::new([1.0, 2.0]);
        let w = V2::new([3.0, -1.0]);
        assert_eq!(v + w, V2::new([4.0, 1.0]));
        assert_eq!(v - w, V2::new([-2.0, 3.0]));
        assert_eq!(v * 2.0, V2::new([2.0, 4.0]));
        assert_eq!(v / 2.0, V2::new([0.5, 1.0]));
        assert_eq!(-v, V2::new([-1.0, -2.0]));
        assert_eq!(v.dot(&w), 1.0);
    }

    #[test]
    fn point_vector_round_trip() {
        let a = P2::new([1.0, 1.0]);
        let b = P2::new([4.0, 5.0]);
        let d = b - a;
        assert_eq!(a + d, b);
        assert_eq!(b - d, a);
        assert_eq!(d.norm(), 5.0);
    }

    #[test]
    fn normalized_unit_length() {
        let v = V2::new([3.0, 4.0]);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(V2::ZERO.normalized().is_none());
    }

    #[test]
    fn angle_quadrants() {
        use std::f64::consts::{FRAC_PI_2, PI};
        assert!((V2::new([1.0, 0.0]).angle().unwrap() - 0.0).abs() < 1e-12);
        assert!((V2::new([0.0, 1.0]).angle().unwrap() - FRAC_PI_2).abs() < 1e-12);
        assert!((V2::new([-1.0, 0.0]).angle().unwrap() - PI).abs() < 1e-12);
        assert!((V2::new([0.0, -1.0]).angle().unwrap() - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!(V2::ZERO.angle().is_none());
    }

    #[test]
    fn angle_is_in_range() {
        for i in 0..64 {
            let a = (i as f64) * std::f64::consts::TAU / 64.0;
            let v = V2::new([a.cos(), a.sin()]);
            let got = v.angle().unwrap();
            assert!((0.0..std::f64::consts::TAU).contains(&got));
            // The recovered angle must match the generating one modulo 2π.
            let diff = (got - a).rem_euclid(std::f64::consts::TAU);
            assert!(!(1e-9..=std::f64::consts::TAU - 1e-9).contains(&diff));
        }
    }

    #[test]
    fn finiteness_checks() {
        assert!(P2::new([1.0, 2.0]).is_finite());
        assert!(!P2::new([f64::NAN, 2.0]).is_finite());
        assert!(!V2::new([f64::INFINITY, 0.0]).is_finite());
    }

    #[test]
    fn higher_dimensions_compile_and_work() {
        let a = Point::<4>::new([1.0, 2.0, 3.0, 4.0]);
        let b = Point::<4>::new([2.0, 3.0, 4.0, 5.0]);
        assert!((a.distance(&b) - 2.0).abs() < 1e-12);
    }
}
