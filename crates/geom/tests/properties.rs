//! Property-based tests for the rectangle algebra and block grid.
//!
//! These invariants are load-bearing for Algorithm 1 (the difference
//! decomposition drives which sub-queries go to the server) and for the
//! buffer manager's cache-hit accounting (blocks must tile the space).

use mar_geom::{GridSpec, Point2, Rect2};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect2> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.1f64..80.0,
        0.1f64..80.0,
    )
        .prop_map(|(x, y, w, h)| Rect2::new(Point2::new([x, y]), Point2::new([x + w, y + h])))
}

proptest! {
    /// difference(A, B) tiles exactly A − B: volumes add up.
    #[test]
    fn difference_volume_is_exact(a in arb_rect(), b in arb_rect()) {
        let parts = a.difference(&b);
        let total: f64 = parts.iter().map(|r| r.volume()).sum();
        let expected = a.volume() - a.overlap_volume(&b);
        prop_assert!((total - expected).abs() < 1e-6 * a.volume().max(1.0));
    }

    /// The parts of a difference never overlap in their interiors.
    #[test]
    fn difference_parts_are_disjoint(a in arb_rect(), b in arb_rect()) {
        let parts = a.difference(&b);
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                prop_assert!(!parts[i].interior_intersects(&parts[j]),
                    "parts {i} and {j} overlap: {:?} {:?}", parts[i], parts[j]);
            }
        }
    }

    /// Every difference part is inside A and does not interior-overlap B.
    #[test]
    fn difference_parts_confined(a in arb_rect(), b in arb_rect()) {
        for p in a.difference(&b) {
            prop_assert!(a.contains_rect(&p));
            prop_assert!(p.overlap_volume(&b) < 1e-9);
        }
    }

    /// A random point of A is either in B or covered by exactly the parts.
    #[test]
    fn difference_point_coverage(a in arb_rect(), b in arb_rect(),
                                 tx in 0.001f64..0.999, ty in 0.001f64..0.999) {
        let p = Point2::new([
            a.lo[0] + tx * a.extent(0),
            a.lo[1] + ty * a.extent(1),
        ]);
        let parts = a.difference(&b);
        let covered = parts.iter().any(|r| r.contains_point(&p));
        // Interior points of B must not be covered; points clearly outside
        // B must be. Points on B's boundary may legitimately fall either way.
        let strictly_in_b = (0..2).all(|i| b.lo[i] < p[i] && p[i] < b.hi[i]);
        let strictly_out_b = (0..2).any(|i| p[i] < b.lo[i] - 1e-12 || p[i] > b.hi[i] + 1e-12);
        if strictly_in_b {
            prop_assert!(!covered);
        } else if strictly_out_b {
            prop_assert!(covered, "point {p:?} of A outside B not covered");
        }
    }

    /// Intersection is commutative and contained in both inputs.
    #[test]
    fn intersection_properties(a in arb_rect(), b in arb_rect()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(a.contains_rect(&x));
                prop_assert!(b.contains_rect(&x));
            }
            (None, None) => {}
            _ => prop_assert!(false, "intersection not commutative"),
        }
    }

    /// Union contains both inputs and is the smallest such box (its corners
    /// come from the inputs).
    #[test]
    fn union_properties(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        for i in 0..2 {
            prop_assert!(u.lo[i] == a.lo[i] || u.lo[i] == b.lo[i]);
            prop_assert!(u.hi[i] == a.hi[i] || u.hi[i] == b.hi[i]);
        }
    }

    /// Every point of the data space maps to an in-bounds block whose rect
    /// contains the point.
    #[test]
    fn grid_block_of_round_trip(x in 0.0f64..100.0, y in 0.0f64..100.0,
                                nx in 1u32..20, ny in 1u32..20) {
        let g = GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            nx, ny,
        );
        let p = Point2::new([x, y]);
        let b = g.block_of(&p);
        prop_assert!(g.in_bounds(&b));
        prop_assert!(g.block_rect(&b).contains_point(&p));
    }

    /// The router's per-shard decomposition is exact for random shard maps
    /// and query windows: sub-rects are pairwise interior-disjoint, each is
    /// confined to its own block and the query, and their areas sum to the
    /// clipped query's area — i.e. the union is exactly `query ∩ space`.
    #[test]
    fn partition_rect_is_exact(q in arb_rect(), nx in 1u32..12, ny in 1u32..12,
                               sw in 20.0f64..150.0, sh in 20.0f64..150.0) {
        let space = Rect2::new(Point2::new([-60.0, -60.0]),
                               Point2::new([-60.0 + sw, -60.0 + sh]));
        let g = GridSpec::new(space, nx, ny);
        let parts = g.partition_rect(&q);
        match q.intersection(&space) {
            None => prop_assert!(parts.is_empty()),
            Some(clipped) => {
                let mut area = 0.0;
                // Sub-rect edges are `lo + i·w` while block_rect's hi edge
                // is `(lo + i·w) + w`: equal to within one ulp, not bit-
                // equal. Eps-containment here; the exact guarantees are the
                // seam bit-equality and the area identity below.
                let eps = 1e-9 * (g.block_w() + g.block_h());
                for (b, sub) in &parts {
                    prop_assert!(g.in_bounds(b));
                    let tile = g.block_rect(b);
                    prop_assert!(
                        (0..2).all(|i| tile.lo[i] - eps <= sub.lo[i]
                            && sub.hi[i] <= tile.hi[i] + eps),
                        "sub-rect {sub:?} escapes block {b:?}");
                    prop_assert!(clipped.contains_rect(sub));
                    area += sub.volume();
                }
                for (i, (_, a)) in parts.iter().enumerate() {
                    for (_, b) in &parts[i + 1..] {
                        prop_assert!(!a.interior_intersects(b),
                            "sub-rects overlap: {a:?} {b:?}");
                    }
                }
                prop_assert!((area - clipped.volume()).abs()
                    <= 1e-9 * clipped.volume().max(1.0),
                    "union area {area} != clipped area {}", clipped.volume());
                // And the block list agrees with blocks_overlapping's.
                let blocks: Vec<mar_geom::BlockId> =
                    parts.iter().map(|(b, _)| *b).collect();
                prop_assert_eq!(blocks, g.blocks_overlapping(&q));
            }
        }
    }

    /// blocks_overlapping returns exactly the blocks whose rects intersect
    /// the query (verified against brute force over all blocks).
    #[test]
    fn grid_overlap_matches_bruteforce(qx in 0.0f64..90.0, qy in 0.0f64..90.0,
                                       qw in 0.5f64..40.0, qh in 0.5f64..40.0) {
        let g = GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            10, 10,
        );
        let q = Rect2::new(Point2::new([qx, qy]), Point2::new([qx + qw, qy + qh]));
        let fast = g.blocks_overlapping(&q);
        let mut brute = Vec::new();
        for iy in 0..10 {
            for ix in 0..10 {
                let b = mar_geom::BlockId::new(ix, iy);
                // Match the library's epsilon policy: strictly positive
                // overlap in area, or containment of a degenerate touch.
                if g.block_rect(&b).overlap_volume(&q) > 1e-9 {
                    brute.push(b);
                }
            }
        }
        // fast may include boundary-touching blocks; it must at least cover
        // every positively-overlapping block and include nothing disjoint.
        for b in &brute {
            prop_assert!(fast.contains(b), "missing block {b:?} for {q:?}");
        }
        for b in &fast {
            prop_assert!(g.block_rect(b).intersects(&q));
        }
    }
}
