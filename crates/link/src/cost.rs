//! The buffer-management transfer cost model — Eq. (1) of §V-A.
//!
//! `C = Σ_{j=0}^{M} (C_c + C_t · B · N(j))`: over the `M` cache misses of a
//! continuous query, each miss pays a connection establishment cost `C_c`
//! plus the transfer cost of the `N(j)` blocks (of `B` bytes each) fetched
//! at that miss. Fewer misses ⇒ lower cost, which is what the §V-A optimal
//! buffer allocation maximises via the residence time.

use crate::link::LinkConfig;

/// The Eq. (1) cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCostModel {
    /// Connection establishment cost `C_c`, in seconds.
    pub connection_cost: f64,
    /// Transfer cost `C_t` for one byte, in seconds.
    pub per_byte_cost: f64,
    /// Block size `B` in bytes.
    pub block_bytes: f64,
}

impl TransferCostModel {
    /// Derives the model from a link configuration at rest.
    pub fn from_link(link: &LinkConfig, block_bytes: f64) -> Self {
        assert!(block_bytes > 0.0);
        Self {
            connection_cost: link.latency_s + link.connection_s,
            per_byte_cost: 8.0 / link.bandwidth_bps,
            block_bytes,
        }
    }

    /// Cost of one miss that fetches `n_blocks` blocks:
    /// `C_c + C_t · B · N(j)`.
    pub fn miss_cost(&self, n_blocks: u64) -> f64 {
        self.connection_cost + self.per_byte_cost * self.block_bytes * n_blocks as f64
    }

    /// Total cost of a continuous query whose misses fetched the given
    /// block counts (Eq. 1).
    pub fn query_cost(&self, blocks_per_miss: &[u64]) -> f64 {
        blocks_per_miss.iter().map(|&n| self.miss_cost(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferCostModel {
        TransferCostModel {
            connection_cost: 0.3,
            per_byte_cost: 0.001,
            block_bytes: 100.0,
        }
    }

    #[test]
    fn miss_cost_formula() {
        let m = model();
        assert!((m.miss_cost(0) - 0.3).abs() < 1e-12);
        assert!((m.miss_cost(5) - (0.3 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn query_cost_sums_misses() {
        let m = model();
        let c = m.query_cost(&[1, 2, 3]);
        assert!((c - (3.0 * 0.3 + 0.001 * 100.0 * 6.0)).abs() < 1e-12);
        assert_eq!(m.query_cost(&[]), 0.0);
    }

    #[test]
    fn fewer_misses_cost_less_for_same_blocks() {
        // The same 12 blocks in 2 misses vs 6 misses: fewer connections win.
        let m = model();
        assert!(m.query_cost(&[6, 6]) < m.query_cost(&[2; 6]));
    }

    #[test]
    fn from_link_translation() {
        let link = LinkConfig::paper();
        let m = TransferCostModel::from_link(&link, 4096.0);
        assert!((m.connection_cost - 0.3).abs() < 1e-12);
        assert!((m.per_byte_cost - 8.0 / 256_000.0).abs() < 1e-15);
    }
}
