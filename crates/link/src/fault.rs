//! Deterministic fault injection for the wireless link.
//!
//! The paper's client lives on a high-latency, low-bandwidth wireless hop
//! (§I, Eq. 1) — a link on which loss, jitter, and disconnection are the
//! common case, not the exception. This module makes those failures
//! *first-class and reproducible*: a [`FaultPlan`] derives every fault
//! decision from a pure hash of `(seed, stream, request index)`, so the
//! same seed yields a byte-identical fault schedule on any machine, any
//! thread count, any replay — wall-clock time and `RandomState` never
//! enter the picture (DESIGN.md §5 determinism invariants).
//!
//! # Fault taxonomy (DESIGN.md §11)
//!
//! * **Request loss** — the request vanishes before the server sees it;
//!   the client waits out `timeout_s` and may retry. Because the loss is
//!   modelled *before* server processing, a retry is exactly-once safe:
//!   the server-side sent-filter is never updated for a lost request.
//! * **Latency jitter** — a uniform extra delay in `[0, jitter_s]` added
//!   to a successful request's round trip.
//! * **Bandwidth dip** — with probability `dip_prob` the request's
//!   effective bandwidth is multiplied by `dip_factor` (a fade / handover
//!   moment).
//! * **Session drop** — every `drop_every`-th request the transport
//!   session dies before the request is sent; the client must reconnect
//!   (and should [`resume`](../../mar_core/struct.Server.html) to keep its
//!   server-side filter).

use crate::link::{LinkConfig, LinkConfigError};
use std::fmt;

/// Why a [`FaultConfig`] was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// `loss_prob` outside `[0, 1)` or non-finite. A loss probability of
    /// exactly 1 would livelock every retry loop, so it is rejected.
    InvalidLossProb(f64),
    /// `jitter_s` negative or non-finite.
    InvalidJitter(f64),
    /// `dip_prob` outside `[0, 1]` or non-finite.
    InvalidDipProb(f64),
    /// `dip_factor` outside `(0, 1]` or non-finite.
    InvalidDipFactor(f64),
    /// `timeout_s` non-positive or non-finite.
    InvalidTimeout(f64),
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidLossProb(v) => write!(f, "loss_prob must be in [0, 1), got {v}"),
            Self::InvalidJitter(v) => write!(f, "jitter_s must be finite and >= 0, got {v}"),
            Self::InvalidDipProb(v) => write!(f, "dip_prob must be in [0, 1], got {v}"),
            Self::InvalidDipFactor(v) => write!(f, "dip_factor must be in (0, 1], got {v}"),
            Self::InvalidTimeout(v) => write!(f, "timeout_s must be finite and > 0, got {v}"),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// The typed failure a faulty link can report for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// The request was lost before reaching the server. `waited_s` is the
    /// time the client spent discovering that (the request timeout).
    Lost {
        /// Simulated seconds the client waited before classifying the
        /// request as timed out.
        waited_s: f64,
    },
    /// The transport session dropped; the client must reconnect before it
    /// can issue further requests.
    SessionDropped,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lost { waited_s } => write!(f, "request lost (timed out after {waited_s} s)"),
            Self::SessionDropped => write!(f, "transport session dropped"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Fault-injection parameters, layered on top of a [`LinkConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Per-request probability the request is lost, in `[0, 1)`.
    pub loss_prob: f64,
    /// Maximum extra round-trip latency; each successful request draws a
    /// uniform jitter in `[0, jitter_s]`.
    pub jitter_s: f64,
    /// Per-request probability of a bandwidth dip, in `[0, 1]`.
    pub dip_prob: f64,
    /// Effective-bandwidth multiplier during a dip, in `(0, 1]`.
    pub dip_factor: f64,
    /// Every `drop_every`-th request (index `k·drop_every`, `k ≥ 1`) the
    /// session drops before the request is sent. `0` disables drops.
    pub drop_every: u64,
    /// How long the client waits before classifying a request as lost.
    pub timeout_s: f64,
}

impl FaultConfig {
    /// A fault-free plan: the identity wrapper over the perfect link.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            loss_prob: 0.0,
            jitter_s: 0.0,
            dip_prob: 0.0,
            dip_factor: 1.0,
            drop_every: 0,
            timeout_s: 2.0,
        }
    }

    /// A hostile-but-livable profile: `loss` request loss, 150 ms max
    /// jitter, 10 % dips to 40 % bandwidth, a session drop every
    /// `drop_every` requests.
    pub fn hostile(seed: u64, loss: f64, drop_every: u64) -> Self {
        Self {
            seed,
            loss_prob: loss,
            jitter_s: 0.15,
            dip_prob: 0.1,
            dip_factor: 0.4,
            drop_every,
            timeout_s: 2.0,
        }
    }

    /// Checks the parameters, returning the first violated constraint.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(self.loss_prob.is_finite() && (0.0..1.0).contains(&self.loss_prob)) {
            return Err(FaultConfigError::InvalidLossProb(self.loss_prob));
        }
        if !(self.jitter_s.is_finite() && self.jitter_s >= 0.0) {
            return Err(FaultConfigError::InvalidJitter(self.jitter_s));
        }
        if !(self.dip_prob.is_finite() && (0.0..=1.0).contains(&self.dip_prob)) {
            return Err(FaultConfigError::InvalidDipProb(self.dip_prob));
        }
        if !(self.dip_factor.is_finite() && self.dip_factor > 0.0 && self.dip_factor <= 1.0) {
            return Err(FaultConfigError::InvalidDipFactor(self.dip_factor));
        }
        if !(self.timeout_s.is_finite() && self.timeout_s > 0.0) {
            return Err(FaultConfigError::InvalidTimeout(self.timeout_s));
        }
        Ok(())
    }
}

/// What the fault stream decided for one `(stream, request index)` slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDecision {
    /// The session drops before this request is sent.
    pub dropped: bool,
    /// The request is lost in transit (never reaches the server).
    pub lost: bool,
    /// Extra round-trip latency for a successful request, in seconds.
    pub jitter_s: f64,
    /// Effective-bandwidth multiplier for a successful request, `(0, 1]`.
    pub bandwidth_factor: f64,
}

impl FaultDecision {
    /// A decision that delivers the request perfectly.
    pub fn clean() -> Self {
        Self {
            dropped: false,
            lost: false,
            jitter_s: 0.0,
            bandwidth_factor: 1.0,
        }
    }
}

/// `splitmix64` — the finalizing mix used to derive every fault decision.
/// Pure, order-independent, and identical on every platform. Public so
/// other deterministic schedules (retry jitter, shard outages) can key off
/// the same discipline instead of growing their own PRNG.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from 53 high bits of a [`splitmix64`] output.
pub fn u01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic fault schedule: a pure function from
/// `(seed, stream, request index)` to a [`FaultDecision`]. Two plans with
/// the same [`FaultConfig`] produce byte-identical schedules, regardless
/// of how many threads consult them or in what order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds a plan after validating the configuration.
    pub fn new(cfg: FaultConfig) -> Result<Self, FaultConfigError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The plan's parameters.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// One uniform draw for `(stream, index, salt)`.
    fn draw(&self, stream: u64, index: u64, salt: u64) -> f64 {
        let mut h = self.cfg.seed;
        h = splitmix64(h ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix64(h ^ index.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        u01(splitmix64(h ^ salt))
    }

    /// The fate of request `index` on fault stream `stream`.
    ///
    /// Streams are an arbitrary caller-chosen partition of the schedule —
    /// one per client, typically — so concurrent clients draw from
    /// independent substreams without sharing any mutable state.
    pub fn decide(&self, stream: u64, index: u64) -> FaultDecision {
        let dropped =
            self.cfg.drop_every > 0 && index > 0 && index.is_multiple_of(self.cfg.drop_every);
        let lost = self.cfg.loss_prob > 0.0 && self.draw(stream, index, 1) < self.cfg.loss_prob;
        let jitter_s = self.draw(stream, index, 2) * self.cfg.jitter_s;
        let bandwidth_factor =
            if self.cfg.dip_prob > 0.0 && self.draw(stream, index, 3) < self.cfg.dip_prob {
                self.cfg.dip_factor
            } else {
                1.0
            };
        FaultDecision {
            dropped,
            lost,
            jitter_s,
            bandwidth_factor,
        }
    }

    /// The first `n` decisions of `stream`, serialised as CSV — the
    /// byte-comparable form of the schedule used by the determinism tests.
    pub fn schedule_csv(&self, stream: u64, n: u64) -> String {
        let mut out = String::from("index,dropped,lost,jitter_s,bandwidth_factor\n");
        for i in 0..n {
            let d = self.decide(stream, i);
            out.push_str(&format!(
                "{i},{},{},{},{}\n",
                d.dropped, d.lost, d.jitter_s, d.bandwidth_factor
            ));
        }
        out
    }
}

/// Why a [`ShardOutagePlan`] was rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutageError {
    /// `outage_ticks` must be strictly shorter than `period`, so every
    /// event window ends with the victim back up (recovery is part of the
    /// schedule, not an afterthought).
    OutageOutlivesPeriod {
        /// The offending outage length.
        outage_ticks: u64,
        /// The event period it must fit strictly inside.
        period: u64,
    },
}

impl fmt::Display for ShardOutageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutageOutlivesPeriod {
                outage_ticks,
                period,
            } => write!(
                f,
                "outage_ticks ({outage_ticks}) must be < period ({period}) so shards recover"
            ),
        }
    }
}

impl std::error::Error for ShardOutageError {}

/// A deterministic whole-shard outage schedule: the fleet-level analogue
/// of [`FaultPlan`]'s per-request drops. Time is divided into events of
/// `period` ticks; in every event after the first, one victim shard —
/// chosen by a pure [`splitmix64`] hash of `(seed, event)` — is down for
/// the event's first `outage_ticks` ticks and back up for the rest, so
/// recovery (re-admission) is exercised inside every event window.
///
/// The schedule is a pure function of `(seed, tick)`: no mutable state,
/// no wall clock, identical on every thread count — a router can evaluate
/// it as a value per tick and stay stateless (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutagePlan {
    seed: u64,
    period: u64,
    outage_ticks: u64,
}

impl ShardOutagePlan {
    /// Builds a plan: every `period` ticks, one shard is down for the
    /// first `outage_ticks` ticks of the window. `period == 0` disables
    /// outages entirely (the fault-free reference plan).
    pub fn new(seed: u64, period: u64, outage_ticks: u64) -> Result<Self, ShardOutageError> {
        if period > 0 && outage_ticks >= period {
            return Err(ShardOutageError::OutageOutlivesPeriod {
                outage_ticks,
                period,
            });
        }
        Ok(Self {
            seed,
            period,
            outage_ticks,
        })
    }

    /// The outage-free plan: no shard ever goes down.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            period: 0,
            outage_ticks: 0,
        }
    }

    /// True when this plan never takes a shard down.
    pub fn is_none(&self) -> bool {
        self.period == 0 || self.outage_ticks == 0
    }

    /// The victim shard of event `event` (pure hash; the same event always
    /// kills the same shard on every machine and thread count).
    pub fn victim(&self, event: u64, nshards: u32) -> u32 {
        let h = splitmix64(self.seed ^ event.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        (h % u64::from(nshards.max(1))) as u32
    }

    /// Whether `shard` is down at `tick` in a fleet of `nshards`.
    /// Event 0 (the first `period` ticks) is always outage-free, so every
    /// run starts from a healthy fleet — the warm-up the availability
    /// accounting baselines against.
    pub fn is_down(&self, tick: u64, shard: u32, nshards: u32) -> bool {
        if self.is_none() || nshards == 0 {
            return false;
        }
        let event = tick / self.period;
        event > 0 && tick % self.period < self.outage_ticks && self.victim(event, nshards) == shard
    }

    /// The down-shard bitmask at `tick`: bit `s` set iff shard `s` is
    /// down. `nshards` must be ≤ 64 (the fleet enforces this bound).
    pub fn down_mask(&self, tick: u64, nshards: u32) -> u64 {
        debug_assert!(nshards <= 64, "down_mask is a 64-bit health word");
        if self.is_none() || nshards == 0 {
            return 0;
        }
        let event = tick / self.period;
        if event > 0 && tick % self.period < self.outage_ticks {
            1u64 << self.victim(event, nshards)
        } else {
            0
        }
    }

    /// The first `n` ticks of the schedule, serialised as CSV — the
    /// byte-comparable form used by the determinism tests.
    pub fn schedule_csv(&self, nshards: u32, n: u64) -> String {
        let mut out = String::from("tick,down_mask\n");
        for t in 0..n {
            out.push_str(&format!("{t},{:#06x}\n", self.down_mask(t, nshards)));
        }
        out
    }
}

/// Cumulative fault statistics of one [`FaultyLink`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Requests attempted (including lost and dropped ones).
    pub attempts: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests lost in transit.
    pub lost: u64,
    /// Session drops observed.
    pub drops: u64,
    /// Successful requests that saw a bandwidth dip.
    pub dipped: u64,
    /// Payload bytes delivered.
    pub bytes: f64,
    /// Simulated seconds spent on successful transfers.
    pub transfer_s: f64,
    /// Simulated seconds wasted waiting out lost requests.
    pub wasted_s: f64,
}

/// Permission to transmit one request: the fault stream's timing terms for
/// a request that will *not* be lost or dropped. The payload size is only
/// known after the server answers, so the grant is taken first and priced
/// afterwards via [`Grant::transfer_time`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// Extra round-trip latency, seconds.
    pub jitter_s: f64,
    /// Effective-bandwidth multiplier, `(0, 1]`.
    pub bandwidth_factor: f64,
}

impl Grant {
    /// Time for the granted request to transfer `bytes` at normalised
    /// `speed`: the fault-free [`LinkConfig::request_time`] plus jitter,
    /// with the payload term stretched by the dip factor.
    pub fn transfer_time(&self, cfg: &LinkConfig, bytes: f64, speed: f64) -> f64 {
        cfg.latency_s
            + cfg.connection_s
            + self.jitter_s
            + bytes * 8.0 / (cfg.effective_bandwidth(speed) * self.bandwidth_factor)
    }
}

/// A [`WirelessLink`](crate::WirelessLink)-shaped channel that injects the
/// faults a [`FaultPlan`] schedules for its stream. One `FaultyLink` is one
/// client's transport: it owns a monotone request counter (each attempt —
/// successful or not — consumes one schedule slot, so retries draw fresh
/// fates) and the per-client fault statistics.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    config: LinkConfig,
    plan: FaultPlan,
    stream: u64,
    next_index: u64,
    stats: FaultStats,
}

impl FaultyLink {
    /// Creates the faulty channel for `stream`, validating both configs.
    pub fn new(config: LinkConfig, plan: FaultPlan, stream: u64) -> Result<Self, LinkConfigError> {
        config.validate()?;
        Ok(Self {
            config,
            plan,
            stream,
            next_index: 0,
            stats: FaultStats::default(),
        })
    }

    /// The underlying (fault-free) link parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Index of the next request this link will attempt.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// The fault-stream key this channel draws from — the value retry
    /// jitter must be seeded with so two clients' backoff sequences are
    /// decorrelated but each is byte-identical across runs.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Attempts to open the next request slot. On success the returned
    /// [`Grant`] carries the slot's timing terms; the caller executes the
    /// request and charges [`Grant::transfer_time`] (or
    /// [`FaultyLink::complete`], which also updates the statistics). On
    /// failure the request never reached the server: the caller pays the
    /// reported wait and retries (a fresh slot) or reconnects.
    pub fn begin(&mut self) -> Result<Grant, LinkError> {
        let d = self.plan.decide(self.stream, self.next_index);
        self.next_index += 1;
        self.stats.attempts += 1;
        if d.dropped {
            self.stats.drops += 1;
            return Err(LinkError::SessionDropped);
        }
        if d.lost {
            self.stats.lost += 1;
            self.stats.wasted_s += self.plan.cfg.timeout_s;
            return Err(LinkError::Lost {
                waited_s: self.plan.cfg.timeout_s,
            });
        }
        if d.bandwidth_factor < 1.0 {
            self.stats.dipped += 1;
        }
        Ok(Grant {
            jitter_s: d.jitter_s,
            bandwidth_factor: d.bandwidth_factor,
        })
    }

    /// Records a granted request's completed transfer and returns its
    /// simulated duration.
    pub fn complete(&mut self, grant: Grant, bytes: f64, speed: f64) -> f64 {
        let t = grant.transfer_time(&self.config, bytes, speed);
        self.stats.completed += 1;
        self.stats.bytes += bytes;
        self.stats.transfer_s += t;
        t
    }

    /// One-shot convenience: begin + complete. Returns the transfer time,
    /// or the typed failure.
    pub fn transfer(&mut self, bytes: f64, speed: f64) -> Result<f64, LinkError> {
        let grant = self.begin()?;
        Ok(self.complete(grant, bytes, speed))
    }

    /// The cost of re-establishing the transport after a drop: one
    /// round-trip latency plus the connection charge (Eq. 1's `C_c`).
    pub fn reconnect_time(&self) -> f64 {
        self.config.latency_s + self.config.connection_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(loss: f64, drop_every: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig::hostile(42, loss, drop_every)).unwrap()
    }

    #[test]
    fn identical_configs_yield_byte_identical_schedules() {
        let a = plan(0.2, 7);
        let b = plan(0.2, 7);
        for stream in [0u64, 1, 99] {
            assert_eq!(a.schedule_csv(stream, 200), b.schedule_csv(stream, 200));
        }
        // A different seed changes the schedule.
        let c = FaultPlan::new(FaultConfig::hostile(43, 0.2, 7)).unwrap();
        assert_ne!(a.schedule_csv(0, 200), c.schedule_csv(0, 200));
        // Different streams of one plan are independent substreams.
        assert_ne!(a.schedule_csv(0, 200), a.schedule_csv(1, 200));
    }

    #[test]
    fn decide_is_order_independent() {
        let p = plan(0.2, 5);
        let forward: Vec<FaultDecision> = (0..50).map(|i| p.decide(3, i)).collect();
        let backward: Vec<FaultDecision> = (0..50).rev().map(|i| p.decide(3, i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "a decision must depend only on its index, never on query order"
        );
    }

    #[test]
    fn drops_land_exactly_on_schedule() {
        let p = plan(0.0, 5);
        for i in 0..40u64 {
            let d = p.decide(0, i);
            assert_eq!(d.dropped, i > 0 && i % 5 == 0, "index {i}");
            assert!(!d.lost, "loss_prob 0 must never lose");
        }
        // drop_every = 0 disables drops entirely.
        let p0 = plan(0.0, 0);
        assert!((0..200).all(|i| !p0.decide(0, i).dropped));
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let p = plan(0.2, 0);
        let n = 4000;
        let lost = (0..n).filter(|&i| p.decide(0, i).lost).count();
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.2).abs() < 0.03,
            "empirical loss rate {rate} far from 0.2"
        );
    }

    #[test]
    fn fault_free_plan_is_the_identity_channel() {
        let p = FaultPlan::new(FaultConfig::none(7)).unwrap();
        let mut link = FaultyLink::new(LinkConfig::paper(), p, 0).unwrap();
        let base = WirelessLink::new(LinkConfig::paper());
        for i in 0..20 {
            let bytes = 1000.0 * i as f64;
            let t = link.transfer(bytes, 0.3).expect("fault-free");
            assert!(
                (t - base.config().request_time(bytes, 0.3)).abs() < 1e-12,
                "fault-free transfer must cost exactly the clean link time"
            );
        }
        assert_eq!(link.stats().lost, 0);
        assert_eq!(link.stats().drops, 0);
        assert_eq!(link.stats().completed, 20);
    }

    use crate::link::WirelessLink;

    #[test]
    fn faulty_link_reports_typed_errors_and_stats() {
        let p = plan(0.3, 4);
        let mut link = FaultyLink::new(LinkConfig::paper(), p, 5).unwrap();
        let mut lost = 0u64;
        let mut drops = 0u64;
        let mut completed = 0u64;
        for _ in 0..200 {
            match link.transfer(512.0, 0.5) {
                Ok(t) => {
                    assert!(t.is_finite() && t > 0.0);
                    completed += 1;
                }
                Err(LinkError::Lost { waited_s }) => {
                    assert_eq!(waited_s, 2.0);
                    lost += 1;
                }
                Err(LinkError::SessionDropped) => drops += 1,
            }
        }
        let s = *link.stats();
        assert_eq!(s.attempts, 200);
        assert_eq!(s.lost, lost);
        assert_eq!(s.drops, drops);
        assert_eq!(s.completed, completed);
        assert!(lost > 0 && drops > 0 && completed > 0);
        assert!((s.wasted_s - lost as f64 * 2.0).abs() < 1e-9);
        assert!(s.bytes > 0.0 && s.transfer_s > 0.0);
    }

    #[test]
    fn dips_and_jitter_only_slow_requests_down() {
        let p = plan(0.0, 0);
        let clean = LinkConfig::paper();
        let mut link = FaultyLink::new(clean, p, 2).unwrap();
        let mut saw_slower = false;
        for _ in 0..100 {
            let t = link.transfer(4096.0, 0.2).expect("no loss configured");
            let ideal = clean.request_time(4096.0, 0.2);
            assert!(t >= ideal - 1e-12, "faults must never speed the link up");
            if t > ideal + 1e-9 {
                saw_slower = true;
            }
        }
        assert!(saw_slower, "jitter/dips must actually bite");
        assert!(link.stats().dipped > 0);
    }

    #[test]
    fn shard_outage_schedule_is_deterministic_and_recovers() {
        let a = ShardOutagePlan::new(99, 10, 4).unwrap();
        let b = ShardOutagePlan::new(99, 10, 4).unwrap();
        assert_eq!(a.schedule_csv(8, 100), b.schedule_csv(8, 100));
        assert_ne!(
            a.schedule_csv(8, 100),
            ShardOutagePlan::new(100, 10, 4)
                .unwrap()
                .schedule_csv(8, 100),
            "a different seed must pick different victims"
        );
        // Event 0 is always healthy.
        for t in 0..10 {
            assert_eq!(a.down_mask(t, 8), 0, "tick {t} must be outage-free");
        }
        // Every later event: one victim down for exactly outage_ticks,
        // then the whole fleet is back up before the window ends.
        for event in 1..10u64 {
            let victim = a.victim(event, 8);
            for off in 0..10u64 {
                let t = event * 10 + off;
                let mask = a.down_mask(t, 8);
                if off < 4 {
                    assert_eq!(mask, 1 << victim, "tick {t}");
                    assert!(a.is_down(t, victim, 8));
                    assert_eq!(mask.count_ones(), 1, "exactly one shard down");
                } else {
                    assert_eq!(mask, 0, "tick {t} must have recovered");
                }
            }
        }
        // Victims spread over the fleet rather than pinning one shard.
        let victims: std::collections::BTreeSet<u32> = (1..50).map(|e| a.victim(e, 8)).collect();
        assert!(victims.len() > 3, "victim choice must vary: {victims:?}");
    }

    #[test]
    fn shard_outage_none_and_validation() {
        let none = ShardOutagePlan::none(7);
        assert!(none.is_none());
        assert!((0..1000).all(|t| none.down_mask(t, 64) == 0));
        assert_eq!(
            ShardOutagePlan::new(7, 10, 10),
            Err(ShardOutageError::OutageOutlivesPeriod {
                outage_ticks: 10,
                period: 10
            }),
            "an outage must end before its event window does"
        );
        assert!(ShardOutagePlan::new(7, 10, 9).is_ok());
        // Zero-length outages are legal and equivalent to none.
        let zero = ShardOutagePlan::new(7, 10, 0).unwrap();
        assert!(zero.is_none());
    }

    #[test]
    fn config_validation_rejects_livelock_and_nonsense() {
        let ok = FaultConfig::hostile(1, 0.2, 10);
        assert!(ok.validate().is_ok());
        let bad = |f: fn(&mut FaultConfig)| {
            let mut c = ok;
            f(&mut c);
            c.validate()
        };
        assert_eq!(
            bad(|c| c.loss_prob = 1.0),
            Err(FaultConfigError::InvalidLossProb(1.0))
        );
        assert!(bad(|c| c.loss_prob = f64::NAN).is_err());
        assert_eq!(
            bad(|c| c.jitter_s = -0.1),
            Err(FaultConfigError::InvalidJitter(-0.1))
        );
        assert_eq!(
            bad(|c| c.dip_prob = 1.5),
            Err(FaultConfigError::InvalidDipProb(1.5))
        );
        assert_eq!(
            bad(|c| c.dip_factor = 0.0),
            Err(FaultConfigError::InvalidDipFactor(0.0))
        );
        assert_eq!(
            bad(|c| c.timeout_s = 0.0),
            Err(FaultConfigError::InvalidTimeout(0.0))
        );
        // An invalid link config is rejected at FaultyLink construction.
        let p = FaultPlan::new(ok).unwrap();
        assert!(FaultyLink::new(
            LinkConfig {
                bandwidth_bps: -5.0,
                ..LinkConfig::paper()
            },
            p,
            0
        )
        .is_err());
    }
}
