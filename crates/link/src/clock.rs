//! The simulated clock.
//!
//! Wall-clock time never enters the simulation: every latency, transfer
//! and dwell advances a [`SimClock`], which makes every experiment exactly
//! reproducible and lets a benchmark simulate hours of touring in
//! milliseconds of CPU.

/// A monotonically advancing simulated clock, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self { now: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite `dt` — time never flows backwards.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "invalid clock advance: {dt}");
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid clock advance")]
    fn rejects_negative_time() {
        SimClock::new().advance(-1.0);
    }
}
