//! The deterministic wireless link model.

use std::fmt;

/// Why a [`LinkConfig`] was rejected at construction.
///
/// Validating up front keeps the downstream arithmetic
/// ([`LinkConfig::request_time`], the fault layer's transfer timing) free
/// of non-finite intermediate values: a non-positive bandwidth would turn
/// every transfer time into `inf`/NaN and poison every simulated clock it
/// touches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkConfigError {
    /// `bandwidth_bps` was NaN, infinite, zero or negative.
    InvalidBandwidth(f64),
    /// `latency_s` was NaN, infinite or negative.
    InvalidLatency(f64),
    /// `connection_s` was NaN, infinite or negative.
    InvalidConnection(f64),
    /// `motion_degradation` was NaN or infinite.
    InvalidDegradation(f64),
}

impl fmt::Display for LinkConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidBandwidth(v) => {
                write!(f, "bandwidth_bps must be finite and positive, got {v}")
            }
            Self::InvalidLatency(v) => {
                write!(f, "latency_s must be finite and non-negative, got {v}")
            }
            Self::InvalidConnection(v) => {
                write!(f, "connection_s must be finite and non-negative, got {v}")
            }
            Self::InvalidDegradation(v) => {
                write!(f, "motion_degradation must be finite, got {v}")
            }
        }
    }
}

impl std::error::Error for LinkConfigError {}

/// Link parameters.
///
/// ```
/// use mar_link::LinkConfig;
/// let link = LinkConfig::paper(); // 256 Kbps, 200 ms, motion-degraded
/// // A 32 KB transfer for a client at rest vs at full speed:
/// let at_rest = link.request_time(32.0 * 1024.0, 0.0);
/// let moving = link.request_time(32.0 * 1024.0, 1.0);
/// assert!(moving > at_rest); // §I: motion costs bandwidth
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Nominal bandwidth in bits per second (paper: 256 Kbps).
    pub bandwidth_bps: f64,
    /// One-way request latency in seconds (paper: 200 ms).
    pub latency_s: f64,
    /// Extra cost of establishing a connection, in seconds (the `C_c` of
    /// Eq. 1 expressed as time).
    pub connection_s: f64,
    /// Fraction of bandwidth lost at normalised speed 1.0 (§I: moving
    /// clients see only a fraction of the at-rest bandwidth). `0.0`
    /// disables degradation.
    pub motion_degradation: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl LinkConfig {
    /// The evaluation's link: 256 Kbps, 200 ms latency, and a 50 % maximum
    /// motion degradation.
    pub fn paper() -> Self {
        Self {
            bandwidth_bps: 256_000.0,
            latency_s: 0.2,
            connection_s: 0.1,
            motion_degradation: 0.5,
        }
    }

    /// Builds a validated configuration; the typed-error alternative to
    /// filling in the (public) fields by hand.
    ///
    /// ```
    /// use mar_link::{LinkConfig, LinkConfigError};
    /// assert!(LinkConfig::new(256_000.0, 0.2, 0.1, 0.5).is_ok());
    /// assert_eq!(
    ///     LinkConfig::new(0.0, 0.2, 0.1, 0.5),
    ///     Err(LinkConfigError::InvalidBandwidth(0.0))
    /// );
    /// ```
    pub fn new(
        bandwidth_bps: f64,
        latency_s: f64,
        connection_s: f64,
        motion_degradation: f64,
    ) -> Result<Self, LinkConfigError> {
        let cfg = Self {
            bandwidth_bps,
            latency_s,
            connection_s,
            motion_degradation,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the configuration, returning the first violated constraint.
    /// Every consumer that owns a long-lived link ([`WirelessLink`], the
    /// fault layer) validates at construction so the per-request arithmetic
    /// never has to re-check.
    pub fn validate(&self) -> Result<(), LinkConfigError> {
        if !(self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0) {
            return Err(LinkConfigError::InvalidBandwidth(self.bandwidth_bps));
        }
        if !(self.latency_s.is_finite() && self.latency_s >= 0.0) {
            return Err(LinkConfigError::InvalidLatency(self.latency_s));
        }
        if !(self.connection_s.is_finite() && self.connection_s >= 0.0) {
            return Err(LinkConfigError::InvalidConnection(self.connection_s));
        }
        if !self.motion_degradation.is_finite() {
            return Err(LinkConfigError::InvalidDegradation(self.motion_degradation));
        }
        Ok(())
    }

    /// Effective bandwidth for a client moving at normalised `speed ∈
    /// [0, 1]`; never less than 10 % of nominal.
    pub fn effective_bandwidth(&self, speed: f64) -> f64 {
        let s = speed.clamp(0.0, 1.0);
        let factor = (1.0 - self.motion_degradation * s).max(0.1);
        self.bandwidth_bps * factor
    }

    /// Time to complete one request that transfers `bytes` bytes at
    /// normalised `speed`: latency + connection setup + payload time.
    /// A zero-byte request still pays latency (a round trip that found
    /// nothing new).
    pub fn request_time(&self, bytes: f64, speed: f64) -> f64 {
        assert!(bytes >= 0.0 && bytes.is_finite());
        self.latency_s + self.connection_s + bytes * 8.0 / self.effective_bandwidth(speed)
    }
}

/// Cumulative traffic statistics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Total payload bytes transferred.
    pub bytes: f64,
    /// Number of requests performed.
    pub requests: u64,
    /// Total simulated time spent on the link.
    pub time_s: f64,
}

/// A stateful link that records every transfer.
#[derive(Debug, Clone)]
pub struct WirelessLink {
    config: LinkConfig,
    stats: LinkStats,
}

impl WirelessLink {
    /// Creates a link.
    pub fn new(config: LinkConfig) -> Self {
        Self {
            config,
            stats: LinkStats::default(),
        }
    }

    /// Creates a link after validating its configuration.
    pub fn try_new(config: LinkConfig) -> Result<Self, LinkConfigError> {
        config.validate()?;
        Ok(Self::new(config))
    }

    /// The link's configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Performs one request, returning the time it took.
    pub fn transfer(&mut self, bytes: f64, speed: f64) -> f64 {
        let t = self.config.request_time(bytes, speed);
        self.stats.bytes += bytes;
        self.stats.requests += 1;
        self.stats.time_s += t;
        t
    }

    /// Statistics so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = LinkConfig::paper();
        assert_eq!(c.bandwidth_bps, 256_000.0);
        assert_eq!(c.latency_s, 0.2);
    }

    #[test]
    fn transfer_time_components() {
        let c = LinkConfig {
            bandwidth_bps: 8_000.0, // 1000 bytes/s
            latency_s: 0.2,
            connection_s: 0.1,
            motion_degradation: 0.0,
        };
        // 500 bytes at 1000 B/s = 0.5 s payload + 0.3 s overhead.
        assert!((c.request_time(500.0, 0.0) - 0.8).abs() < 1e-12);
        // Zero bytes still pays the round trip.
        assert!((c.request_time(0.0, 1.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn motion_degrades_bandwidth() {
        let c = LinkConfig::paper();
        assert_eq!(c.effective_bandwidth(0.0), 256_000.0);
        assert_eq!(c.effective_bandwidth(1.0), 128_000.0);
        assert!(c.request_time(10_000.0, 1.0) > c.request_time(10_000.0, 0.0));
        // Speeds outside [0,1] are clamped.
        assert_eq!(c.effective_bandwidth(5.0), 128_000.0);
        assert_eq!(c.effective_bandwidth(-1.0), 256_000.0);
    }

    #[test]
    fn degradation_floor() {
        let c = LinkConfig {
            motion_degradation: 2.0,
            ..LinkConfig::paper()
        };
        assert_eq!(c.effective_bandwidth(1.0), 25_600.0);
    }

    #[test]
    fn construction_rejects_degenerate_configs() {
        assert!(LinkConfig::paper().validate().is_ok());
        assert!(matches!(
            LinkConfig::new(f64::NAN, 0.2, 0.1, 0.5),
            Err(LinkConfigError::InvalidBandwidth(v)) if v.is_nan()
        ));
        assert_eq!(
            LinkConfig::new(-1.0, 0.2, 0.1, 0.5),
            Err(LinkConfigError::InvalidBandwidth(-1.0))
        );
        assert_eq!(
            LinkConfig::new(256_000.0, -0.2, 0.1, 0.5),
            Err(LinkConfigError::InvalidLatency(-0.2))
        );
        assert_eq!(
            LinkConfig::new(256_000.0, 0.2, f64::INFINITY, 0.5),
            Err(LinkConfigError::InvalidConnection(f64::INFINITY))
        );
        assert!(matches!(
            LinkConfig::new(256_000.0, 0.2, 0.1, f64::NAN),
            Err(LinkConfigError::InvalidDegradation(v)) if v.is_nan()
        ));
        assert!(WirelessLink::try_new(LinkConfig {
            bandwidth_bps: 0.0,
            ..LinkConfig::paper()
        })
        .is_err());
        assert!(WirelessLink::try_new(LinkConfig::paper()).is_ok());
        // The error message names the offending field and value.
        let e = LinkConfig::new(0.0, 0.2, 0.1, 0.5).unwrap_err();
        assert!(e.to_string().contains("bandwidth_bps"));
    }

    #[test]
    fn link_records_stats() {
        let mut l = WirelessLink::new(LinkConfig::paper());
        let t1 = l.transfer(1_000.0, 0.0);
        let t2 = l.transfer(2_000.0, 0.5);
        let s = l.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 3_000.0);
        assert!((s.time_s - (t1 + t2)).abs() < 1e-12);
        l.reset_stats();
        assert_eq!(l.stats().requests, 0);
    }
}
