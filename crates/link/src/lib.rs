//! # mar-link — the simulated wireless link and its cost model
//!
//! The paper's bottleneck is the wireless hop between client and server:
//! 256 Kbps of bandwidth and 200 ms of latency in the experiments (§VII-A),
//! with the additional twist — motivating the whole motion-aware design —
//! that "the usable bandwidth of a connection … drops to a fraction of the
//! bandwidth that is available for clients at rest" when the client moves
//! (§I, citing Ofcom \[2\]).
//!
//! This crate models exactly that: a deterministic [`WirelessLink`] whose
//! per-request time is `latency + connection setup + bytes / effective
//! bandwidth`, with effective bandwidth degraded linearly in the client's
//! normalised speed; a [`SimClock`] (the only notion of time anywhere in
//! the simulation); and the buffer-management transfer cost model of
//! §V-A Eq. (1), `C = Σⱼ (C_c + C_t·B·N(j))`.
//!
//! On top of the perfect channel sits the [`fault`] module: a seeded
//! [`FaultPlan`] that injects per-request packet loss, latency jitter,
//! bandwidth dips and scheduled session drops from a deterministic
//! `(seed, stream, request-index)` hash — same seed, byte-identical fault
//! schedule — and the [`FaultyLink`] channel that applies it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod cost;
pub mod fault;
pub mod link;

pub use clock::SimClock;
pub use cost::TransferCostModel;
pub use fault::{
    splitmix64, u01, FaultConfig, FaultConfigError, FaultDecision, FaultPlan, FaultStats,
    FaultyLink, Grant, LinkError, ShardOutageError, ShardOutagePlan,
};
pub use link::{LinkConfig, LinkConfigError, LinkStats, WirelessLink};
