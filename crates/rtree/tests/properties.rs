//! Property-based tests: the R-tree must behave exactly like a brute-force
//! list of rectangles under any interleaving of inserts, deletes, and
//! window queries, for both variants and for bulk loading.

use mar_geom::{Point2, Rect2};
use mar_rtree::{RTree, RTreeConfig, Variant};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { x: f64, y: f64, w: f64, h: f64 },
    Remove { idx: usize },
    Query { x: f64, y: f64, w: f64, h: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..100.0, 0.0f64..100.0, 0.0f64..10.0, 0.0f64..10.0)
            .prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => (0usize..500).prop_map(|idx| Op::Remove { idx }),
        2 => (0.0f64..100.0, 0.0f64..100.0, 0.1f64..40.0, 0.1f64..40.0)
            .prop_map(|(x, y, w, h)| Op::Query { x, y, w, h }),
    ]
}

fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect2 {
    Rect2::new(Point2::new([x, y]), Point2::new([x + w, y + h]))
}

fn run_model_test(variant: Variant, cap: usize, ops: Vec<Op>) {
    let mut tree: RTree<2, u64> = RTree::new(RTreeConfig::new(cap, variant));
    let mut model: Vec<(Rect2, u64)> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Insert { x, y, w, h } => {
                let r = rect(x, y, w, h);
                tree.insert(r, next_id);
                model.push((r, next_id));
                next_id += 1;
            }
            Op::Remove { idx } => {
                if model.is_empty() {
                    continue;
                }
                let (r, id) = model.swap_remove(idx % model.len());
                assert_eq!(tree.remove(&r, &id), Some(id));
            }
            Op::Query { x, y, w, h } => {
                let q = rect(x, y, w, h);
                let (mut got, _) = tree.query(&q);
                let mut got: Vec<u64> = got.drain(..).copied().collect();
                got.sort_unstable();
                let mut expect: Vec<u64> = model
                    .iter()
                    .filter(|(r, _)| r.intersects(&q))
                    .map(|&(_, id)| id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "query mismatch for window {q:?}");
            }
        }
        tree.validate().expect("invariants hold after every op");
        assert_eq!(tree.len(), model.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn guttman_matches_bruteforce(ops in prop::collection::vec(arb_op(), 1..120)) {
        run_model_test(Variant::Guttman, 5, ops);
    }

    #[test]
    fn rstar_matches_bruteforce(ops in prop::collection::vec(arb_op(), 1..120)) {
        run_model_test(Variant::RStar, 5, ops);
    }

    #[test]
    fn rstar_paper_capacity_matches_bruteforce(
        ops in prop::collection::vec(arb_op(), 1..200)
    ) {
        run_model_test(Variant::RStar, 20, ops);
    }

    #[test]
    fn bulk_load_equals_incremental_queries(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..400),
        q in (0.0f64..100.0, 0.0f64..100.0, 0.1f64..50.0, 0.1f64..50.0),
    ) {
        let items: Vec<(Rect2, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect2::point(Point2::new([x, y])), i))
            .collect();
        let bulk = RTree::bulk_load(RTreeConfig::paper(), items.clone());
        bulk.validate().expect("bulk tree valid");
        prop_assert_eq!(bulk.len(), items.len());
        let w = rect(q.0, q.1, q.2, q.3);
        let (mut got, _) = bulk.query(&w);
        let mut got: Vec<usize> = got.drain(..).copied().collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .filter(|(r, _)| r.intersects(&w))
            .map(|&(_, i)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
