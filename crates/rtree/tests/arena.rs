//! Arena-storage fixture tests: heavy insert/delete churn must recycle
//! slots without leaks, keep every structural invariant, and answer
//! queries exactly like a brute-force rectangle list throughout — for
//! both variants and for bulk loading. Complements `properties.rs`
//! (random op interleavings) with targeted lifecycle phases: grow,
//! shrink to near-empty, regrow over recycled slots.

use mar_geom::{Point2, Rect2};
use mar_rtree::{RTree, RTreeConfig, Variant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rect(rng: &mut StdRng) -> Rect2 {
    let x = rng.gen_range(0.0..1000.0);
    let y = rng.gen_range(0.0..1000.0);
    let w = rng.gen_range(0.0..25.0);
    let h = rng.gen_range(0.0..25.0);
    Rect2::new(Point2::new([x, y]), Point2::new([x + w, y + h]))
}

fn assert_matches_bruteforce(tree: &RTree<2, u64>, model: &[(Rect2, u64)], windows: &[Rect2]) {
    for q in windows {
        let (hits, _) = tree.query(q);
        let mut got: Vec<u64> = hits.iter().map(|&&id| id).collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = model
            .iter()
            .filter(|(r, _)| r.intersects(q))
            .map(|&(_, id)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "window {q:?}");
    }
}

fn churn_fixture(variant: Variant, cap: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree: RTree<2, u64> = RTree::new(RTreeConfig::new(cap, variant));
    let mut model: Vec<(Rect2, u64)> = Vec::new();
    let windows: Vec<Rect2> = (0..8)
        .map(|_| {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            Rect2::new(Point2::new([x, y]), Point2::new([x + 150.0, y + 150.0]))
        })
        .collect();

    // Phase 1: grow.
    for id in 0..600u64 {
        let r = random_rect(&mut rng);
        tree.insert(r, id);
        model.push((r, id));
    }
    tree.validate().expect("valid after growth");
    assert_eq!(tree.len(), 600);
    assert_matches_bruteforce(&tree, &model, &windows);
    let grown_nodes = tree.node_count();

    // Phase 2: shrink to near-empty (delete every index not divisible by
    // 10, back to front so removal order differs from insertion order).
    for i in (0..model.len()).rev() {
        if i % 10 != 0 {
            let (r, id) = model.swap_remove(i);
            assert_eq!(tree.remove(&r, &id), Some(id));
        }
    }
    tree.validate().expect("valid after shrink");
    assert_eq!(tree.len(), model.len());
    assert_matches_bruteforce(&tree, &model, &windows);

    // Phase 3: regrow over the recycled slots. The arena must not balloon:
    // a same-sized population fits in roughly the node budget the first
    // growth needed (freed slots are reused before the arena grows).
    for id in 1000..1540u64 {
        let r = random_rect(&mut rng);
        tree.insert(r, id);
        model.push((r, id));
    }
    tree.validate().expect("valid after regrowth");
    assert_eq!(tree.len(), model.len());
    assert_matches_bruteforce(&tree, &model, &windows);
    assert!(
        tree.node_count() <= grown_nodes * 2,
        "arena ballooned: {} live nodes after regrowth vs {} after first growth",
        tree.node_count(),
        grown_nodes
    );
}

#[test]
fn guttman_churn_recycles_and_stays_exact() {
    churn_fixture(Variant::Guttman, 5, 0xA11CE);
    churn_fixture(Variant::Guttman, 16, 0xB0B);
}

#[test]
fn rstar_churn_recycles_and_stays_exact() {
    churn_fixture(Variant::RStar, 5, 0xA11CE);
    churn_fixture(Variant::RStar, 16, 0xB0B);
}

/// The parallel STR loader's determinism contract: for any worker count,
/// `bulk_load_jobs` must produce not just an equivalent tree but the
/// *same* tree as the serial loader — identical shape, identical arena
/// layout (pinned via `iter()` order), identical query answers.
#[test]
fn parallel_bulk_load_builds_the_identical_tree() {
    let mut rng = StdRng::seed_from_u64(0x57A);
    for n in [0usize, 1, 19, 20, 21, 160, 700, 2500] {
        let items: Vec<(Rect2, u64)> = (0..n as u64)
            .map(|id| (random_rect(&mut rng), id))
            .collect();
        let serial = RTree::bulk_load(RTreeConfig::paper(), items.clone());
        serial.validate().expect("serial tree valid");
        for jobs in [1usize, 2, 4, 9] {
            let parallel = RTree::bulk_load_jobs(RTreeConfig::paper(), items.clone(), jobs);
            parallel
                .validate()
                .unwrap_or_else(|e| panic!("n={n} jobs={jobs}: invalid parallel tree: {e}"));
            assert_eq!(parallel.len(), serial.len(), "n={n} jobs={jobs}");
            assert_eq!(parallel.height(), serial.height(), "n={n} jobs={jobs}");
            assert_eq!(
                parallel.node_count(),
                serial.node_count(),
                "n={n} jobs={jobs}"
            );
            // iter() walks the leaf level in arena order, so equality here
            // pins the entire physical layout, not just the logical content.
            let a: Vec<(Rect2, u64)> = serial.iter().map(|(r, &id)| (r, id)).collect();
            let b: Vec<(Rect2, u64)> = parallel.iter().map(|(r, &id)| (r, id)).collect();
            assert_eq!(a, b, "n={n} jobs={jobs}: arena layout differs");
        }
    }
}

#[test]
fn parallel_bulk_load_answers_queries_exactly() {
    let mut rng = StdRng::seed_from_u64(0x57B);
    let items: Vec<(Rect2, u64)> = (0..900u64).map(|id| (random_rect(&mut rng), id)).collect();
    let tree = RTree::bulk_load_jobs(RTreeConfig::paper(), items.clone(), 4);
    let windows: Vec<Rect2> = (0..12)
        .map(|_| {
            let x = rng.gen_range(0.0..900.0);
            let y = rng.gen_range(0.0..900.0);
            Rect2::new(Point2::new([x, y]), Point2::new([x + 120.0, y + 120.0]))
        })
        .collect();
    assert_matches_bruteforce(&tree, &items, &windows);
}

#[test]
fn bulk_load_then_full_teardown_and_reuse() {
    let mut rng = StdRng::seed_from_u64(7);
    let items: Vec<(Rect2, u64)> = (0..500u64).map(|id| (random_rect(&mut rng), id)).collect();
    let mut tree = RTree::bulk_load(RTreeConfig::paper(), items.clone());
    tree.validate().expect("valid after bulk load");
    assert_eq!(tree.len(), 500);

    // Tear everything down in a scrambled order.
    let mut order: Vec<usize> = (0..items.len()).collect();
    for i in (1..order.len()).rev() {
        let j = (rng.gen::<u64>() as usize) % (i + 1);
        order.swap(i, j);
    }
    for &i in &order {
        let (r, id) = items[i];
        assert_eq!(tree.remove(&r, &id), Some(id));
        if i % 97 == 0 {
            tree.validate().expect("valid mid-teardown");
        }
    }
    tree.validate().expect("valid when empty");
    assert_eq!(tree.len(), 0);
    assert!(tree.is_empty());
    let whole = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([2000.0, 2000.0]));
    assert!(tree.query(&whole).0.is_empty());

    // The emptied arena must be fully reusable.
    for (r, id) in &items {
        tree.insert(*r, *id);
    }
    tree.validate().expect("valid after refill");
    assert_eq!(tree.len(), 500);
    let (hits, _) = tree.query(&whole);
    assert_eq!(hits.len(), 500);
}
