//! Property-based equivalence: the batched group-descent kernel must be
//! observationally identical to the scalar `search` path — same hits, in
//! the same order, with the same per-window *logical* access counts — on
//! any tree, including trees churned through inserts, deletes, and
//! forced reinsertions. The only thing batching may change is the number
//! of *unique physical* node visits, which must never exceed the logical
//! total.

use mar_geom::{Point2, Rect2};
use mar_rtree::{RTree, RTreeConfig, Variant};
use proptest::prelude::*;

fn rect(x: f64, y: f64, w: f64, h: f64) -> Rect2 {
    Rect2::new(Point2::new([x, y]), Point2::new([x + w, y + h]))
}

/// Runs `windows` through both kernels and checks full observational
/// equivalence plus the unique-visit bound and the shared io counter.
fn assert_batch_equals_scalar(tree: &RTree<2, u64>, windows: &[Rect2]) {
    let mut scalar_hits: Vec<Vec<u64>> = Vec::with_capacity(windows.len());
    let mut scalar_io: Vec<u64> = Vec::with_capacity(windows.len());
    for w in windows {
        let mut hits = Vec::new();
        let io = tree.search(w, |_, &t| hits.push(t));
        scalar_hits.push(hits);
        scalar_io.push(io);
    }
    let io_before = tree.io_count();
    let mut batch_hits: Vec<Vec<u64>> = vec![Vec::new(); windows.len()];
    let acc = tree.search_batch(windows, |w, _, &t| batch_hits[w].push(t));
    // Hits match per window — including their order, which the group
    // descent preserves (a window's visits follow its scalar DFS order).
    assert_eq!(batch_hits, scalar_hits, "hit streams diverge");
    // Logical accesses match the scalar counts exactly, window by window.
    assert_eq!(acc.per_window, scalar_io, "logical access counts diverge");
    // Physical sharing can only reduce work, never add it.
    assert!(
        acc.unique <= acc.logical_total(),
        "unique visits {} exceed logical total {}",
        acc.unique,
        acc.logical_total()
    );
    // The tree's cumulative io counter advances by the logical total, so
    // existing I/O accounting cannot observe whether batching happened.
    assert_eq!(tree.io_count() - io_before, acc.logical_total());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_equals_scalar_on_bulk_trees(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..8.0, 0.0f64..8.0), 1..400),
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..45.0, 0.1f64..45.0), 1..90),
    ) {
        let items: Vec<(Rect2, u64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (rect(x, y, w, h), i as u64))
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::paper(), items);
        tree.validate().expect("bulk tree valid");
        let windows: Vec<Rect2> = wins.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
        assert_batch_equals_scalar(&tree, &windows);
    }

    #[test]
    fn batch_equals_scalar_on_incremental_trees(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..6.0, 0.0f64..6.0), 1..250),
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..45.0, 0.1f64..45.0), 1..70),
        guttman in 0usize..2,
    ) {
        // Small capacity forces deep trees with many splits; the R*
        // variant additionally exercises forced reinsertion.
        let variant = if guttman == 1 { Variant::Guttman } else { Variant::RStar };
        let mut tree: RTree<2, u64> = RTree::new(RTreeConfig::new(5, variant));
        for (i, &(x, y, w, h)) in boxes.iter().enumerate() {
            tree.insert(rect(x, y, w, h), i as u64);
        }
        tree.validate().expect("incremental tree valid");
        let windows: Vec<Rect2> = wins.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
        assert_batch_equals_scalar(&tree, &windows);
    }

    #[test]
    fn batch_equals_scalar_on_churned_trees(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..6.0, 0.0f64..6.0), 40..300),
        drop_stride in 2usize..5,
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..45.0, 0.1f64..45.0), 1..70),
    ) {
        // Insert everything, delete a stride of it (condensation +
        // re-insertion of orphans), then refill part of the hole — the
        // tree that results has recycled arena slots, shifted lane
        // entries, and reinserted items.
        let mut tree: RTree<2, u64> = RTree::new(RTreeConfig::new(5, Variant::RStar));
        let items: Vec<(Rect2, u64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (rect(x, y, w, h), i as u64))
            .collect();
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        for &(r, id) in items.iter().step_by(drop_stride) {
            prop_assert_eq!(tree.remove(&r, &id), Some(id));
        }
        for &(r, id) in items.iter().step_by(drop_stride * 2) {
            tree.insert(r, id);
        }
        tree.validate().expect("churned tree valid");
        let windows: Vec<Rect2> = wins.iter().map(|&(x, y, w, h)| rect(x, y, w, h)).collect();
        assert_batch_equals_scalar(&tree, &windows);
    }

    #[test]
    fn duplicate_windows_share_physical_visits(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..8.0, 0.0f64..8.0), 50..400),
        win in (0.0f64..100.0, 0.0f64..100.0, 5.0f64..45.0, 5.0f64..45.0),
        copies in 2usize..64,
    ) {
        // K identical windows in one group must cost exactly one window's
        // physical reads: the strongest form of the sharing guarantee.
        let items: Vec<(Rect2, u64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (rect(x, y, w, h), i as u64))
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::paper(), items);
        let w = rect(win.0, win.1, win.2, win.3);
        let scalar_io = tree.search(&w, |_, _| {});
        let windows = vec![w; copies];
        let acc = tree.search_batch(&windows, |_, _, _| {});
        prop_assert_eq!(acc.unique, scalar_io);
        for per in &acc.per_window {
            prop_assert_eq!(*per, scalar_io);
        }
    }
}
