//! Property-based equivalence for the counting fast path: `count_in`
//! must report exactly the hit count and node-access count the scalar
//! `search` path produces, on any tree and any window. This pins down
//! the three specialised walks — the two-axis elision kernel (windows
//! that span the tree's full extent on the lifted axis), the bounded
//! local-stack walk, and the chunked fallback for nodes wider than one
//! 64-bit mask — against the reference traversal.

use mar_geom::{Point2, Point3, Rect2, Rect3};
use mar_rtree::{RTree, RTreeConfig, Variant};
use proptest::prelude::*;

fn rect2(x: f64, y: f64, w: f64, h: f64) -> Rect2 {
    Rect2::new(Point2::new([x, y]), Point2::new([x + w, y + h]))
}

fn rect3(x: f64, y: f64, z: f64, w: f64, h: f64, d: f64) -> Rect3 {
    Rect3::new(Point3::new([x, y, z]), Point3::new([x + w, y + h, z + d]))
}

/// `count_in` must agree with the scalar search on hits, accesses, and
/// the cumulative io counter.
fn assert_count_equals_search<const N: usize>(tree: &RTree<N, u64>, windows: &[Rect<N>]) {
    for w in windows {
        let mut hits = 0usize;
        let io = tree.search(w, |_, _| hits += 1);
        let before = tree.io_count();
        let (count, accesses) = tree.count_in(w);
        assert_eq!(count, hits, "hit count diverges");
        assert_eq!(accesses, io, "access count diverges");
        assert_eq!(tree.io_count() - before, accesses, "io counter diverges");
    }
}

use mar_geom::Rect;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 3-D trees (the wavelet index layout): full-span windows on the
    /// third axis exercise the elision kernel, narrow ones the full
    /// sweep — both must match the reference walk exactly.
    #[test]
    fn count_equals_search_3d(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1.0, 0.0f64..8.0, 0.0f64..8.0), 1..400),
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..45.0, 0.1f64..45.0, 0usize..2), 1..60),
    ) {
        let items: Vec<(Rect3, u64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, z, w, h))| (rect3(x, y, z, w, h, 0.0), i as u64))
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::paper(), items);
        tree.validate().expect("bulk tree valid");
        let windows: Vec<Rect3> = wins
            .iter()
            .map(|&(x, y, w, h, full)| {
                // `full == 1` spans the whole z extent (elision fires);
                // otherwise a partial band that must keep all three axes.
                let (zlo, zd) = if full == 1 { (-1.0, 4.0) } else { (0.25, 0.5) };
                rect3(x, y, zlo, w, h, zd)
            })
            .collect();
        assert_count_equals_search(&tree, &windows);
    }

    /// Incremental 3-D trees: splits and forced reinsertion shuffle the
    /// lanes; counting must stay equivalent through all of it.
    #[test]
    fn count_equals_search_3d_incremental(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..1.0, 0.0f64..6.0, 0.0f64..6.0), 1..250),
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..45.0, 0.1f64..45.0, 0usize..2), 1..40),
        guttman in 0usize..2,
    ) {
        let variant = if guttman == 1 { Variant::Guttman } else { Variant::RStar };
        let mut tree: RTree<3, u64> = RTree::new(RTreeConfig::new(5, variant));
        for (i, &(x, y, z, w, h)) in boxes.iter().enumerate() {
            tree.insert(rect3(x, y, z, w, h, 0.0), i as u64);
        }
        tree.validate().expect("incremental tree valid");
        let windows: Vec<Rect3> = wins
            .iter()
            .map(|&(x, y, w, h, full)| {
                let (zlo, zd) = if full == 1 { (-1.0, 4.0) } else { (0.25, 0.5) };
                rect3(x, y, zlo, w, h, zd)
            })
            .collect();
        assert_count_equals_search(&tree, &windows);
    }

    /// Wide nodes (capacity beyond one 64-bit mask) take the chunked
    /// fallback; 2-D keeps the tree shallow so most accesses hit the
    /// multi-chunk sweep.
    #[test]
    fn count_equals_search_wide_nodes(
        boxes in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.0f64..8.0, 0.0f64..8.0), 1..400),
        wins in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0.1f64..60.0, 0.1f64..60.0), 1..40),
    ) {
        let items: Vec<(Rect2, u64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (rect2(x, y, w, h), i as u64))
            .collect();
        let tree = RTree::bulk_load(RTreeConfig::new(80, Variant::RStar), items);
        tree.validate().expect("wide-node tree valid");
        let windows: Vec<Rect2> = wins.iter().map(|&(x, y, w, h)| rect2(x, y, w, h)).collect();
        assert_count_equals_search(&tree, &windows);
    }
}
