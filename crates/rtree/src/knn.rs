//! k-nearest-neighbour queries (best-first search, Hjaltason & Samet).
//!
//! Not used by the paper's window-query workloads, but a standard part of
//! any R-tree access method's API — and useful to downstream users of the
//! wavelet index ("the nearest detailed object to the client"). The search
//! expands nodes from a priority queue ordered by minimum distance, which
//! visits the provably minimal set of nodes for a given `k`.

use crate::node::NodeKind;
use crate::RTree;
use mar_geom::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry: either an arena slot to expand or a candidate item.
enum HeapEntry<'a, T> {
    Node(u32),
    Item(&'a T),
}

struct Prioritized<'a, T> {
    dist: f64,
    entry: HeapEntry<'a, T>,
}

impl<T> PartialEq for Prioritized<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T> Eq for Prioritized<'_, T> {}
impl<T> PartialOrd for Prioritized<'_, T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Prioritized<'_, T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison; NaN-free by construction.
        other.dist.total_cmp(&self.dist)
    }
}

impl<const N: usize, T> RTree<N, T> {
    /// Returns the `k` items nearest to `query` (by minimum distance from
    /// the point to the item's rectangle), closest first, with the node
    /// accesses performed. Fewer than `k` results when the tree is small.
    pub fn nearest_neighbors(&self, query: &Point<N>, k: usize) -> (Vec<(f64, &T)>, u64) {
        let mut out = Vec::with_capacity(k);
        let mut accesses = 0u64;
        if k == 0 || self.is_empty() {
            return (out, accesses);
        }
        let mut heap: BinaryHeap<Prioritized<'_, T>> = BinaryHeap::new();
        heap.push(Prioritized {
            dist: 0.0,
            entry: HeapEntry::Node(self.root),
        });
        while let Some(Prioritized { dist, entry }) = heap.pop() {
            match entry {
                HeapEntry::Node(idx) => {
                    accesses += 1;
                    match self.arena.node(idx) {
                        NodeKind::Leaf(node) => {
                            for i in 0..node.len() {
                                heap.push(Prioritized {
                                    dist: node.rect(i).min_distance(query),
                                    entry: HeapEntry::Item(node.item(i)),
                                });
                            }
                        }
                        NodeKind::Internal(node) => {
                            for i in 0..node.len() {
                                heap.push(Prioritized {
                                    dist: node.rect(i).min_distance(query),
                                    entry: HeapEntry::Node(node.child(i)),
                                });
                            }
                        }
                        // Free slots are never reachable from the root.
                        NodeKind::Free => {}
                    }
                }
                HeapEntry::Item(item) => {
                    out.push((dist, item));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        self.io.add(crate::IoKind::Logical, accesses);
        self.io.add(crate::IoKind::Unique, accesses);
        (out, accesses)
    }

    /// Convenience: the single nearest item.
    pub fn nearest(&self, query: &Point<N>) -> Option<(f64, &T)> {
        self.nearest_neighbors(query, 1).0.into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn grid_tree() -> RTree<2, (i32, i32)> {
        let mut t = RTree::new(RTreeConfig::new(8, Variant::RStar));
        for x in 0..15 {
            for y in 0..15 {
                t.insert(pt(x as f64, y as f64), (x, y));
            }
        }
        t
    }

    #[test]
    fn nearest_single() {
        let t = grid_tree();
        let (d, &(x, y)) = t.nearest(&Point2::new([7.2, 7.4])).unwrap();
        assert_eq!((x, y), (7, 7));
        assert!((d - (0.2f64.powi(2) + 0.4f64.powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn knn_matches_bruteforce() {
        let t = grid_tree();
        let q = Point2::new([3.7, 11.2]);
        let (got, io) = t.nearest_neighbors(&q, 10);
        assert_eq!(got.len(), 10);
        assert!(io >= 1);
        // Distances are sorted ascending.
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-12);
        }
        // Brute-force k-th distance must match.
        let mut all: Vec<f64> = (0..15)
            .flat_map(|x| (0..15).map(move |y| (x, y)))
            .map(|(x, y)| q.distance(&Point2::new([x as f64, y as f64])))
            .collect();
        all.sort_by(f64::total_cmp);
        for (i, (d, _)) in got.iter().enumerate() {
            assert!((d - all[i]).abs() < 1e-9, "rank {i}: {d} vs {}", all[i]);
        }
    }

    #[test]
    fn knn_visits_fewer_nodes_than_full_scan() {
        let t = grid_tree();
        let (_, io) = t.nearest_neighbors(&Point2::new([1.0, 1.0]), 3);
        assert!(
            (io as usize) < t.node_count(),
            "best-first must prune: {io} vs {} nodes",
            t.node_count()
        );
    }

    #[test]
    fn empty_and_zero_k() {
        let t: RTree<2, u8> = RTree::new(RTreeConfig::paper());
        assert!(t.nearest(&Point2::new([0.0, 0.0])).is_none());
        let full = grid_tree();
        assert!(full
            .nearest_neighbors(&Point2::new([0.0, 0.0]), 0)
            .0
            .is_empty());
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let mut t: RTree<2, usize> = RTree::new(RTreeConfig::new(4, Variant::Guttman));
        for i in 0..5 {
            t.insert(pt(i as f64, 0.0), i);
        }
        let (got, _) = t.nearest_neighbors(&Point2::new([0.0, 0.0]), 50);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn rectangle_items_use_min_distance() {
        let mut t: RTree<2, &str> = RTree::new(RTreeConfig::new(4, Variant::RStar));
        t.insert(
            Rect2::new(Point2::new([10.0, 0.0]), Point2::new([20.0, 10.0])),
            "box",
        );
        t.insert(pt(5.0, 5.0), "point");
        // Query inside the box: distance 0 beats the point at distance ~5.8.
        let (d, &name) = t.nearest(&Point2::new([12.0, 3.0])).unwrap();
        assert_eq!(name, "box");
        assert_eq!(d, 0.0);
    }
}
