//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The evaluation indexes up to a few million wavelet coefficients per
//! dataset; building that statically with one-at-a-time inserts would
//! dominate experiment time, so the scene loaders use STR: entries are
//! recursively sorted and tiled into slabs so each leaf gets `M`
//! consecutive entries, then parent levels are packed the same way.
//! The resulting tree satisfies exactly the same invariants as an
//! incrementally built one (uniform leaf depth, fill ≥ m except possibly
//! one node per level, correct MBRs). Nodes are allocated into the arena
//! level by level, so each level's pages end up contiguous in memory —
//! the layout a search touches most.

use crate::insert::HasRect;
use crate::node::{Arena, ChildEntry, Entry, InternalNode, LeafNode, NodeKind};
use crate::{RTree, RTreeConfig};
use mar_geom::Rect;
// `std::sync` here serves the deterministic parallel loader only: slabs are
// handed to scoped workers through per-slot mutexes and an atomic work
// counter; none of it influences the produced tree shape.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

impl<const N: usize, T> RTree<N, T> {
    /// Builds a tree from `(rect, item)` pairs using STR packing.
    pub fn bulk_load(config: RTreeConfig, items: Vec<(Rect<N>, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new(config);
        }
        let entries = into_entries(items);
        // Tile leaf entries.
        let mut leaf_groups: Vec<Vec<Entry<N, T>>> = Vec::new();
        str_tile(entries, config.max_entries, 0, &mut leaf_groups);
        Self::assemble(config, leaf_groups, len)
    }

    /// Allocates the tiled leaf groups into an arena and packs upper
    /// levels until a single root remains. The tree is fully determined by
    /// the order and content of `leaf_groups`.
    fn assemble(config: RTreeConfig, leaf_groups: Vec<Vec<Entry<N, T>>>, len: usize) -> Self {
        let mut arena: Arena<N, T> = Arena::new();
        let mut nodes: Vec<(Rect<N>, u32)> = leaf_groups
            .into_iter()
            .map(|g| {
                let mbr = g
                    .iter()
                    .map(|e| e.rect)
                    .reduce(|a, b| a.union(&b))
                    // mar-lint: allow(D004) — grouping emits no empty chunks
                    .expect("non-empty leaf group");
                (mbr, arena.alloc(NodeKind::Leaf(LeafNode::from_entries(g))))
            })
            .collect();
        let mut height = 1usize;
        // Pack upper levels until a single root remains.
        while nodes.len() > 1 {
            let children: Vec<ChildEntry<N>> = nodes
                .into_iter()
                .map(|(rect, child)| ChildEntry { rect, child })
                .collect();
            let mut groups: Vec<Vec<ChildEntry<N>>> = Vec::new();
            str_tile(children, config.max_entries, 0, &mut groups);
            nodes = groups
                .into_iter()
                .map(|g| {
                    let mbr = g
                        .iter()
                        .map(|e| e.rect)
                        .reduce(|a, b| a.union(&b))
                        // mar-lint: allow(D004) — grouping emits no empty chunks
                        .expect("non-empty internal group");
                    (
                        mbr,
                        arena.alloc(NodeKind::Internal(InternalNode::from_entries(g))),
                    )
                })
                .collect();
            height += 1;
        }
        // mar-lint: allow(D004) — the pack loop terminates with exactly one root
        let (_, root) = nodes.pop().expect("at least one node");
        Self {
            config,
            arena,
            root,
            height,
            len,
            io: crate::IoCounters::new(),
        }
    }
}

impl<const N: usize, T: Send> RTree<N, T> {
    /// Parallel STR bulk load: tiles the top-level slabs across up to
    /// `jobs` scoped threads, producing a tree **byte-identical in shape**
    /// to [`RTree::bulk_load`] (pinned by `crates/rtree/tests/arena.rs`).
    ///
    /// Determinism: the serial loader sorts all entries on dimension 0 and
    /// slices them into balanced slabs before recursing per slab — those
    /// per-slab recursions are independent, so this loader performs the
    /// identical dimension-0 sort + split up front and only farms out the
    /// recursions. Leaf groups are concatenated in slab order, so arena
    /// layout, node MBRs and heights all match the serial build exactly.
    ///
    /// `jobs <= 1` (and inputs too small to split) fall back to the serial
    /// path.
    pub fn bulk_load_jobs(config: RTreeConfig, items: Vec<(Rect<N>, T)>, jobs: usize) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new(config);
        }
        let cap = config.max_entries;
        if jobs <= 1 || len <= cap || N == 1 {
            return Self::bulk_load(config, items);
        }
        let mut entries = into_entries(items);
        // The dimension-0 step of `str_tile`, hoisted so the slab
        // recursions can run concurrently: same stable sort, same
        // slab count, same balanced split.
        entries.sort_by(|a, b| center_coord(a.rect(), 0).total_cmp(&center_coord(b.rect(), 0)));
        let pages = len.div_ceil(cap);
        let slabs = ((pages as f64).powf(1.0 / N as f64).ceil() as usize).max(1);
        if slabs <= 1 {
            // One slab: nothing to parallelize. `str_tile` re-sorts the
            // already-sorted entries (a stable no-op) and proceeds serially.
            let mut leaf_groups = Vec::new();
            str_tile(entries, cap, 0, &mut leaf_groups);
            return Self::assemble(config, leaf_groups, len);
        }
        let slots: Vec<Mutex<Option<Vec<Entry<N, T>>>>> = balanced_split(entries, slabs)
            .into_iter()
            .map(|slab| Mutex::new(Some(slab)))
            .collect();
        let outs: Vec<Mutex<Vec<Vec<Entry<N, T>>>>> =
            (0..slots.len()).map(|_| Mutex::new(Vec::new())).collect();
        let next = AtomicUsize::new(0);
        let workers = jobs.min(slots.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let slab = slots[i]
                        .lock()
                        // mar-lint: allow(D004) — poisoning implies a sibling worker panicked; propagate
                        .expect("slab slot poisoned")
                        .take()
                        // mar-lint: allow(D004) — each index is claimed exactly once via fetch_add
                        .expect("slab claimed twice");
                    let mut local = Vec::new();
                    str_tile(slab, cap, 1, &mut local);
                    // mar-lint: allow(D004) — poisoning implies a sibling worker panicked; propagate
                    *outs[i].lock().expect("output slot poisoned") = local;
                });
            }
        });
        let mut leaf_groups: Vec<Vec<Entry<N, T>>> = Vec::new();
        for m in outs {
            // mar-lint: allow(D004) — all workers joined by the scope; poisoning implies one panicked
            leaf_groups.append(&mut m.into_inner().expect("output slot poisoned"));
        }
        Self::assemble(config, leaf_groups, len)
    }
}

/// Wraps raw `(rect, item)` pairs as entries, rejecting non-finite rects.
fn into_entries<const N: usize, T>(items: Vec<(Rect<N>, T)>) -> Vec<Entry<N, T>> {
    items
        .into_iter()
        .map(|(rect, item)| {
            assert!(rect.is_finite(), "cannot index a non-finite rectangle");
            Entry { rect, item }
        })
        .collect()
}

/// Recursively tiles `items` into groups of at most `cap`, sorting by the
/// centre coordinate of dimension `dim` and slicing into
/// `ceil(P^(1/(N-dim)))` *balanced* slabs (sizes differing by at most one),
/// where `P` is the number of pages needed.
///
/// Balanced partitioning (instead of fixed-size runs with a ragged tail)
/// guarantees every emitted group holds at least `⌊n/groups⌋ ≥ cap/2 ≥ m`
/// entries whenever more than one group is produced, so the loaded tree
/// satisfies the minimum-fill invariant without any repair pass.
fn str_tile<const N: usize, R: crate::insert::HasRect<N>>(
    mut items: Vec<R>,
    cap: usize,
    dim: usize,
    out: &mut Vec<Vec<R>>,
) {
    let n = items.len();
    if n == 0 {
        return;
    }
    if n <= cap {
        out.push(items);
        return;
    }
    items.sort_by(|a, b| center_coord(a.rect(), dim).total_cmp(&center_coord(b.rect(), dim)));
    if dim + 1 == N {
        // Last dimension: emit balanced groups of at most `cap`.
        let groups = n.div_ceil(cap);
        for chunk in balanced_split(items, groups) {
            out.push(chunk);
        }
        return;
    }
    let pages = n.div_ceil(cap);
    let remaining_dims = (N - dim) as f64;
    let slabs = ((pages as f64).powf(1.0 / remaining_dims).ceil() as usize).max(1);
    for slab in balanced_split(items, slabs) {
        str_tile(slab, cap, dim + 1, out);
    }
}

/// Splits `items` into exactly `k` chunks whose sizes differ by at most one,
/// preserving order.
fn balanced_split<R>(items: Vec<R>, k: usize) -> Vec<Vec<R>> {
    let n = items.len();
    let k = k.min(n).max(1);
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut it = items.into_iter();
    for i in 0..k {
        let take = base + usize::from(i < extra);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

fn center_coord<const N: usize>(r: &Rect<N>, dim: usize) -> f64 {
    (r.lo[dim] + r.hi[dim]) * 0.5
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Point3, Rect2, Rect3};

    fn scatter(n: usize) -> Vec<(Rect2, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 1000) as f64 * 0.1;
                let y = ((i * 61) % 1000) as f64 * 0.1;
                (Rect2::point(Point2::new([x, y])), i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let t: RTree<2, usize> = RTree::bulk_load(RTreeConfig::paper(), vec![]);
        assert!(t.is_empty());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn bulk_load_single_leaf() {
        let t = RTree::bulk_load(RTreeConfig::paper(), scatter(15));
        assert_eq!(t.height(), 1);
        assert_eq!(t.len(), 15);
        t.validate().expect("valid");
    }

    #[test]
    fn bulk_load_large_is_valid_and_complete() {
        let t = RTree::bulk_load(RTreeConfig::paper(), scatter(10_000));
        assert_eq!(t.len(), 10_000);
        t.validate().expect("valid");
        let mut seen: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 10_000);
        assert_eq!(seen[0], 0);
        assert_eq!(seen[9999], 9999);
    }

    #[test]
    fn bulk_load_queries_match_incremental() {
        let items = scatter(2_000);
        let bulk = RTree::bulk_load(RTreeConfig::paper(), items.clone());
        let mut inc: RTree<2, usize> = RTree::new(RTreeConfig::paper());
        for (r, i) in items {
            inc.insert(r, i);
        }
        for (wx, wy, ww) in [(0.0, 0.0, 20.0), (30.0, 40.0, 15.0), (80.0, 80.0, 40.0)] {
            let w = Rect2::new(Point2::new([wx, wy]), Point2::new([wx + ww, wy + ww]));
            let (mut a, _) = bulk.query(&w);
            let (mut b, _) = inc.query(&w);
            let mut av: Vec<usize> = a.drain(..).copied().collect();
            let mut bv: Vec<usize> = b.drain(..).copied().collect();
            av.sort_unstable();
            bv.sort_unstable();
            assert_eq!(av, bv);
        }
    }

    #[test]
    fn bulk_load_is_better_packed_than_incremental() {
        let items = scatter(5_000);
        let bulk = RTree::bulk_load(RTreeConfig::paper(), items.clone());
        let mut inc: RTree<2, usize> = RTree::new(RTreeConfig::paper());
        for (r, i) in items {
            inc.insert(r, i);
        }
        assert!(bulk.node_count() <= inc.node_count());
    }

    #[test]
    fn bulk_load_3d() {
        let items: Vec<(Rect3, usize)> = (0..3_000)
            .map(|i| {
                let x = ((i * 37) % 100) as f64;
                let y = ((i * 61) % 100) as f64;
                let w = ((i * 17) % 100) as f64 / 100.0;
                (
                    Rect3::new(Point3::new([x, y, w]), Point3::new([x + 1.0, y + 1.0, w])),
                    i,
                )
            })
            .collect();
        let t = RTree::bulk_load(RTreeConfig::new(20, Variant::RStar), items);
        assert_eq!(t.len(), 3_000);
        t.validate().expect("valid");
    }
}
