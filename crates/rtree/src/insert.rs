//! Insertion: subtree choice, node splits (quadratic and R*), forced
//! reinsertion.
//!
//! The two variants follow the published algorithms:
//!
//! * **Guttman** — ChooseLeaf descends by least volume enlargement; an
//!   overflowing node is split with the quadratic PickSeeds/PickNext
//!   heuristic.
//! * **R\*** — ChooseSubtree minimises *overlap* enlargement at the level
//!   above the leaves (ties: volume enlargement, then volume); an
//!   overflowing leaf first triggers a forced reinsertion of the 30 % of
//!   its entries farthest from the node centre (once per top-level insert),
//!   and splits use the margin-driven axis choice followed by the
//!   minimum-overlap distribution. Forced reinsertion is applied at the
//!   leaf level only — the level where it buys nearly all of its packing
//!   benefit — which keeps overflow propagation single-pass.

use crate::node::{Arena, ChildEntry, Entry, InternalNode, LeafNode, NodeKind};
use crate::{RTree, RTreeConfig, Variant};
use mar_geom::{Point, Rect};
use std::cell::Cell;

thread_local! {
    // Reused scratch for forced reinsertion and R* splits (the same
    // take/set pattern as the query traversal stack), so overflow handling
    // on the insert hot path performs no per-call allocation. The two
    // users never nest within one call stack.
    static ORDER_SCRATCH: Cell<Vec<usize>> = const { Cell::new(Vec::new()) };
    static KEY_SCRATCH: Cell<Vec<f64>> = const { Cell::new(Vec::new()) };
}

/// Anything that sits in a node under a rectangle.
pub(crate) trait HasRect<const N: usize> {
    fn rect(&self) -> &Rect<N>;
}

impl<const N: usize, T> HasRect<N> for Entry<N, T> {
    fn rect(&self) -> &Rect<N> {
        &self.rect
    }
}

impl<const N: usize> HasRect<N> for ChildEntry<N> {
    fn rect(&self) -> &Rect<N> {
        &self.rect
    }
}

pub(crate) fn mbr_of<const N: usize, R: HasRect<N>>(items: &[R]) -> Rect<N> {
    items
        .iter()
        .map(|i| *i.rect())
        .reduce(|a, b| a.union(&b))
        // mar-lint: allow(D004) — callers only pass non-empty entry slices
        .expect("mbr of empty set")
}

impl<const N: usize, T> RTree<N, T> {
    /// Inserts `item` under `rect`.
    pub fn insert(&mut self, rect: Rect<N>, item: T) {
        assert!(rect.is_finite(), "cannot index a non-finite rectangle");
        self.len += 1;
        // Forced reinsertion is allowed once per top-level insert.
        let mut allow_reinsert = self.config.variant == Variant::RStar;
        let mut queue: Vec<Entry<N, T>> = vec![Entry { rect, item }];
        // One reinsert buffer for the whole insert: it is empty at the top
        // of every iteration, so draining it into the queue (instead of
        // allocating a fresh vector per pass) changes nothing but the
        // allocation count.
        let mut reinserts: Vec<Entry<N, T>> = Vec::new();
        while let Some(e) = queue.pop() {
            let split = insert_rec(
                &mut self.arena,
                self.root,
                e,
                &self.config,
                &mut allow_reinsert,
                &mut reinserts,
            );
            if let Some((new_rect, new_node)) = split {
                self.grow_root(new_rect, new_node);
            }
            queue.append(&mut reinserts);
        }
    }

    fn grow_root(&mut self, sibling_rect: Rect<N>, sibling: u32) {
        let old_root = self.root;
        let old_rect = self
            .arena
            .mbr(old_root)
            // mar-lint: allow(D004) — a node that just split holds ≥ min_entries
            .expect("split root cannot be empty");
        self.root = self
            .arena
            .alloc(NodeKind::Internal(InternalNode::from_entries(vec![
                ChildEntry {
                    rect: old_rect,
                    child: old_root,
                },
                ChildEntry {
                    rect: sibling_rect,
                    child: sibling,
                },
            ])));
        self.height += 1;
    }
}

/// Recursive insert; returns the `(mbr, slot)` of a new sibling when the
/// visited node split.
fn insert_rec<const N: usize, T>(
    arena: &mut Arena<N, T>,
    node: u32,
    entry: Entry<N, T>,
    config: &RTreeConfig,
    allow_reinsert: &mut bool,
    reinserts: &mut Vec<Entry<N, T>>,
) -> Option<(Rect<N>, u32)> {
    if arena.is_leaf(node) {
        // The no-overflow fast path only appends to the lanes; overflow
        // materialises the entries, runs the unchanged reinsert/split
        // permutation, and rebuilds the lanes in the permuted order — so
        // node contents match the AoS storage byte for byte.
        let (sibling_rect, moved) = match arena.node_mut(node) {
            NodeKind::Leaf(leaf) => {
                leaf.push(entry.rect, entry.item);
                if leaf.len() <= config.max_entries {
                    return None;
                }
                let mut entries = leaf.drain_entries();
                if *allow_reinsert {
                    *allow_reinsert = false;
                    force_reinsert(&mut entries, config, reinserts);
                    leaf.extend_entries(entries);
                    return None;
                }
                let (keep, moved) = split_items(entries, config);
                let sibling_rect = mbr_of(&moved);
                leaf.extend_entries(keep);
                (sibling_rect, moved)
            }
            _ => unreachable!("is_leaf checked above"),
        };
        let sibling = arena.alloc(NodeKind::Leaf(LeafNode::from_entries(moved)));
        return Some((sibling_rect, sibling));
    }
    let (idx, child) = {
        let inode = arena.internal(node);
        let child_is_leaf = inode.len() > 0 && arena.is_leaf(inode.child(0));
        let idx = choose_subtree(inode, &entry.rect, config, child_is_leaf);
        (idx, inode.child(idx))
    };
    let split = insert_rec(arena, child, entry, config, allow_reinsert, reinserts);
    let child_mbr = arena
        .mbr(child)
        // mar-lint: allow(D004) — insertion only ever adds entries
        .expect("child emptied during insert");
    let overflow = {
        let inode = arena.internal_mut(node);
        inode.set_rect(idx, &child_mbr);
        match split {
            Some((rect, child)) => {
                inode.push(rect, child);
                if inode.len() > config.max_entries {
                    let (keep, moved) = split_items(inode.drain_entries(), config);
                    let sibling_rect = mbr_of(&moved);
                    inode.extend_entries(keep);
                    Some((sibling_rect, moved))
                } else {
                    None
                }
            }
            None => None,
        }
    };
    if let Some((sibling_rect, moved)) = overflow {
        let sibling = arena.alloc(NodeKind::Internal(InternalNode::from_entries(moved)));
        return Some((sibling_rect, sibling));
    }
    None
}

/// R* forced reinsertion: removes the `p` entries whose centres are
/// farthest from the node's centre and queues them for reinsertion
/// (in increasing distance — "close reinsert").
fn force_reinsert<const N: usize, T>(
    entries: &mut Vec<Entry<N, T>>,
    config: &RTreeConfig,
    reinserts: &mut Vec<Entry<N, T>>,
) {
    let node_center = mbr_of(entries).center();
    let p = config
        .reinsert_count()
        .min(entries.len() - config.min_entries);
    let mut order = ORDER_SCRATCH.take();
    let mut dist = KEY_SCRATCH.take();
    dist.clear();
    dist.extend(
        entries
            .iter()
            .map(|e| e.rect.center().distance(&node_center)),
    );
    order.clear();
    order.extend(0..entries.len());
    // Unstable sort with an index tiebreak reproduces the stable
    // descending-distance order over the ascending index sequence exactly.
    order.sort_unstable_by(|&a, &b| dist[b].total_cmp(&dist[a]).then(a.cmp(&b)));
    order.truncate(p);
    order.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
    let start = reinserts.len();
    for &i in &order {
        reinserts.push(entries.swap_remove(i));
    }
    // Close reinsert: nearest first => reinsert queue is processed LIFO by
    // the caller, so order farthest first. At most `p` (≤ 0.3·M) elements:
    // the stable sort stays in its allocation-free insertion regime.
    reinserts[start..].sort_by(|a, b| {
        let da = a.rect.center().distance(&node_center);
        let db = b.rect.center().distance(&node_center);
        db.total_cmp(&da)
    });
    ORDER_SCRATCH.set(order);
    KEY_SCRATCH.set(dist);
}

/// Picks the child to descend into.
fn choose_subtree<const N: usize>(
    node: &InternalNode<N>,
    rect: &Rect<N>,
    config: &RTreeConfig,
    child_is_leaf: bool,
) -> usize {
    if config.variant == Variant::RStar && child_is_leaf {
        // Minimise overlap enlargement (R* §4.1), ties by volume
        // enlargement, then by volume.
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for i in 0..node.len() {
            let r = node.rect(i);
            let enlarged = r.union(rect);
            let mut overlap_before = 0.0;
            let mut overlap_after = 0.0;
            for j in 0..node.len() {
                if i == j {
                    continue;
                }
                let o = node.rect(j);
                overlap_before += r.overlap_volume(&o);
                overlap_after += enlarged.overlap_volume(&o);
            }
            let key = (
                overlap_after - overlap_before,
                r.enlargement(rect),
                r.volume(),
            );
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    } else {
        // Least volume enlargement, ties by volume.
        let mut best = 0;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for i in 0..node.len() {
            let r = node.rect(i);
            let key = (r.enlargement(rect), r.volume());
            if key < best_key {
                best_key = key;
                best = i;
            }
        }
        best
    }
}

/// Splits an overfull set of items into two groups per the configured
/// algorithm.
pub(crate) fn split_items<const N: usize, R: HasRect<N>>(
    items: Vec<R>,
    config: &RTreeConfig,
) -> (Vec<R>, Vec<R>) {
    match config.variant {
        Variant::Guttman => quadratic_split(items, config),
        Variant::RStar => rstar_split(items, config),
    }
}

/// Guttman's quadratic split.
fn quadratic_split<const N: usize, R: HasRect<N>>(
    mut items: Vec<R>,
    config: &RTreeConfig,
) -> (Vec<R>, Vec<R>) {
    let m = config.min_entries;
    // PickSeeds: the pair wasting the most area together.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let d = items[i].rect().union(items[j].rect()).volume()
                - items[i].rect().volume()
                - items[j].rect().volume();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let (hi, lo) = if s1 > s2 { (s1, s2) } else { (s2, s1) };
    let seed_b = items.swap_remove(hi);
    let seed_a = items.swap_remove(lo);
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = *group_a[0].rect();
    let mut mbr_b = *group_b[0].rect();

    while !items.is_empty() {
        // If one group must absorb all remaining to reach m, do it.
        let remaining = items.len();
        if group_a.len() + remaining == m {
            for it in items.drain(..) {
                mbr_a = mbr_a.union(it.rect());
                group_a.push(it);
            }
            break;
        }
        if group_b.len() + remaining == m {
            for it in items.drain(..) {
                mbr_b = mbr_b.union(it.rect());
                group_b.push(it);
            }
            break;
        }
        // PickNext: max preference difference.
        let (mut pick, mut pref) = (0, f64::NEG_INFINITY);
        for (i, it) in items.iter().enumerate() {
            let da = mbr_a.enlargement(it.rect());
            let db = mbr_b.enlargement(it.rect());
            let d = (da - db).abs();
            if d > pref {
                pref = d;
                pick = i;
            }
        }
        let it = items.swap_remove(pick);
        let da = mbr_a.enlargement(it.rect());
        let db = mbr_b.enlargement(it.rect());
        let to_a = match da.total_cmp(&db) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                // Ties: smaller volume, then fewer entries.
                (mbr_a.volume(), group_a.len()) <= (mbr_b.volume(), group_b.len())
            }
        };
        if to_a {
            mbr_a = mbr_a.union(it.rect());
            group_a.push(it);
        } else {
            mbr_b = mbr_b.union(it.rect());
            group_b.push(it);
        }
    }
    (group_a, group_b)
}

/// R* split: choose the axis with the least total margin over all
/// distributions, then the distribution with least overlap (ties: least
/// combined volume).
fn rstar_split<const N: usize, R: HasRect<N>>(
    items: Vec<R>,
    config: &RTreeConfig,
) -> (Vec<R>, Vec<R>) {
    let m = config.min_entries;
    let total = items.len();
    debug_assert!(total >= 2 * m);

    let mut order = ORDER_SCRATCH.take();
    let mut suffix = KEY_SCRATCH.take();
    order.clear();
    order.extend(0..total);
    // Unstable sort with an index tiebreak: reproduces the stable sort of
    // the ascending index sequence exactly, so the chosen axis, split
    // point and group order are identical to the original formulation.
    let sort_on = |order: &mut Vec<usize>, items: &[R], axis: usize| {
        order.sort_unstable_by(|&a, &b| {
            let ra = items[a].rect();
            let rb = items[b].rect();
            ra.lo[axis]
                .total_cmp(&rb.lo[axis])
                .then(ra.hi[axis].total_cmp(&rb.hi[axis]))
                .then(a.cmp(&b))
        });
    };

    // Choose split axis by minimum margin sum. Each distribution's left
    // MBR grows incrementally and its right MBR comes from a precomputed
    // suffix array, so one axis pass costs O(n) unions instead of O(n²).
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..N {
        sort_on(&mut order, &items, axis);
        build_suffix_mbrs(&items, &order, &mut suffix);
        let mut left = mbr_of_indices(&items, &order[..m]);
        let mut margin_sum = 0.0;
        for k in m..=(total - m) {
            let right = read_rect::<N>(&suffix, k);
            margin_sum += left.margin() + right.margin();
            left = left.union(items[order[k]].rect());
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Choose the distribution along the best axis.
    sort_on(&mut order, &items, best_axis);
    build_suffix_mbrs(&items, &order, &mut suffix);
    let mut left = mbr_of_indices(&items, &order[..m]);
    let mut best_k = m;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in m..=(total - m) {
        let right = read_rect::<N>(&suffix, k);
        let key = (left.overlap_volume(&right), left.volume() + right.volume());
        if key < best_key {
            best_key = key;
            best_k = k;
        }
        left = left.union(items[order[k]].rect());
    }

    // Materialise the two groups preserving the chosen order.
    let mut slots: Vec<Option<R>> = items.into_iter().map(Some).collect();
    let left: Vec<R> = order[..best_k]
        .iter()
        // mar-lint: allow(D004) — `order` is a permutation; each index once
        .map(|&i| slots[i].take().expect("index used twice"))
        .collect();
    let right: Vec<R> = order[best_k..]
        .iter()
        // mar-lint: allow(D004) — `order` is a permutation; each index once
        .map(|&i| slots[i].take().expect("index used twice"))
        .collect();
    KEY_SCRATCH.set(suffix);
    ORDER_SCRATCH.set(order);
    (left, right)
}

/// Fills `suffix` (a flat scratch of `2·N` floats per slot — `lo` then
/// `hi`) so slot `k` holds the MBR of `order[k..]`. Built back to front;
/// `union` is an elementwise min/max, so the accumulation direction yields
/// bit-identical MBRs to a left-to-right fold.
fn build_suffix_mbrs<const N: usize, R: HasRect<N>>(
    items: &[R],
    order: &[usize],
    suffix: &mut Vec<f64>,
) {
    let total = order.len();
    suffix.clear();
    suffix.resize(total * 2 * N, 0.0);
    let mut acc = *items[order[total - 1]].rect();
    write_rect(suffix, total - 1, &acc);
    for k in (0..total - 1).rev() {
        acc = items[order[k]].rect().union(&acc);
        write_rect(suffix, k, &acc);
    }
}

fn write_rect<const N: usize>(buf: &mut [f64], k: usize, r: &Rect<N>) {
    let base = k * 2 * N;
    for d in 0..N {
        buf[base + d] = r.lo[d];
        buf[base + N + d] = r.hi[d];
    }
}

fn read_rect<const N: usize>(buf: &[f64], k: usize) -> Rect<N> {
    let base = k * 2 * N;
    // `Rect::new` normalises corners via min/max — the identity here,
    // because what was stored is already a well-formed MBR.
    Rect::new(
        Point::new(std::array::from_fn(|d| buf[base + d])),
        Point::new(std::array::from_fn(|d| buf[base + N + d])),
    )
}

fn mbr_of_indices<const N: usize, R: HasRect<N>>(items: &[R], idx: &[usize]) -> Rect<N> {
    idx.iter()
        .map(|&i| *items[i].rect())
        .reduce(|a, b| a.union(&b))
        // mar-lint: allow(D004) — split distributions are never empty (k ≥ m)
        .expect("mbr of empty slice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn build(variant: Variant, n: usize, cap: usize) -> RTree<2, usize> {
        let mut t = RTree::new(RTreeConfig::new(cap, variant));
        for i in 0..n {
            // Deterministic scatter with some duplicates and clusters.
            let x = ((i * 37) % 100) as f64 + (i % 7) as f64 * 0.1;
            let y = ((i * 61) % 100) as f64 + (i % 5) as f64 * 0.1;
            t.insert(pt(x, y), i);
        }
        t
    }

    #[test]
    fn guttman_insert_keeps_invariants() {
        let t = build(Variant::Guttman, 500, 8);
        assert_eq!(t.len(), 500);
        t.validate().expect("valid tree");
    }

    #[test]
    fn rstar_insert_keeps_invariants() {
        let t = build(Variant::RStar, 500, 8);
        assert_eq!(t.len(), 500);
        t.validate().expect("valid tree");
    }

    #[test]
    fn paper_capacity_large_insert() {
        let t = build(Variant::RStar, 3000, 20);
        assert_eq!(t.len(), 3000);
        t.validate().expect("valid tree");
        assert!(t.height() >= 3);
    }

    #[test]
    fn rectangles_not_just_points() {
        let mut t: RTree<2, usize> = RTree::new(RTreeConfig::paper());
        for i in 0..200 {
            let x = ((i * 13) % 90) as f64;
            let y = ((i * 29) % 90) as f64;
            let r = Rect2::new(
                Point2::new([x, y]),
                Point2::new([x + 1.0 + (i % 9) as f64, y + 1.0 + (i % 4) as f64]),
            );
            t.insert(r, i);
        }
        t.validate().expect("valid tree");
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn duplicate_rects_allowed() {
        let mut t: RTree<2, usize> = RTree::new(RTreeConfig::new(4, Variant::RStar));
        for i in 0..50 {
            t.insert(pt(1.0, 1.0), i);
        }
        assert_eq!(t.len(), 50);
        t.validate().expect("valid tree");
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let items: Vec<Entry<2, usize>> = (0..9)
            .map(|i| Entry {
                rect: pt(i as f64, 0.0),
                item: i,
            })
            .collect();
        let cfg = RTreeConfig::new(8, Variant::Guttman);
        let (a, b) = quadratic_split(items, &cfg);
        assert_eq!(a.len() + b.len(), 9);
        assert!(a.len() >= cfg.min_entries);
        assert!(b.len() >= cfg.min_entries);
    }

    #[test]
    fn rstar_split_separates_line_cleanly() {
        // Points on a line must split into contiguous halves.
        let items: Vec<Entry<2, usize>> = (0..9)
            .map(|i| Entry {
                rect: pt(i as f64, 0.0),
                item: i,
            })
            .collect();
        let cfg = RTreeConfig::new(8, Variant::RStar);
        let (a, b) = rstar_split(items, &cfg);
        assert_eq!(a.len() + b.len(), 9);
        let max_a = a.iter().map(|e| e.item).max().unwrap();
        let min_b = b.iter().map(|e| e.item).min().unwrap();
        assert!(max_a < min_b, "groups must not interleave along the axis");
    }

    #[test]
    fn rstar_beats_or_matches_guttman_on_node_count() {
        // R* packing should not be wildly worse than Guttman; this is a
        // smoke regression, not a benchmark.
        let g = build(Variant::Guttman, 2000, 16);
        let r = build(Variant::RStar, 2000, 16);
        assert!(r.node_count() as f64 <= g.node_count() as f64 * 1.5);
    }
}
