//! Structural statistics: node fill, per-level shape, overlap.
//!
//! The paper reports I/O, which is a function of tree *shape*; these
//! statistics expose that shape directly. They drive the index-construction
//! ablation (`abl_index`) and give downstream users the numbers that
//! explain why one build strategy out-queries another: average node fill
//! (space utilisation) and sibling overlap (the R\*-tree's target metric).

use crate::node::{Arena, NodeKind};
use crate::RTree;

/// Aggregate statistics of one tree level (root = level 0).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// Nodes on this level.
    pub nodes: usize,
    /// Total entries across the level's nodes.
    pub entries: usize,
    /// Mean fill factor: entries / (nodes × max_entries).
    pub fill: f64,
    /// Total pairwise overlap volume between sibling MBRs, summed over
    /// every node of this level (0 for leaves' contents).
    pub sibling_overlap: f64,
}

/// Whole-tree structural statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Per-level statistics, root first.
    pub levels: Vec<LevelStats>,
    /// Total nodes.
    pub nodes: usize,
    /// Mean leaf fill factor.
    pub leaf_fill: f64,
}

impl<const N: usize, T> RTree<N, T> {
    /// Computes structural statistics.
    pub fn stats(&self) -> TreeStats {
        let mut per_level: Vec<(usize, usize, f64)> = Vec::new(); // nodes, entries, overlap
        collect(&self.arena, self.root, 0, &mut per_level);
        let levels: Vec<LevelStats> = per_level
            .iter()
            .map(|&(nodes, entries, sibling_overlap)| LevelStats {
                nodes,
                entries,
                fill: entries as f64 / (nodes as f64 * self.config.max_entries as f64),
                sibling_overlap,
            })
            .collect();
        let nodes = levels.iter().map(|l| l.nodes).sum();
        let leaf_fill = levels.last().map(|l| l.fill).unwrap_or(0.0);
        TreeStats {
            levels,
            nodes,
            leaf_fill,
        }
    }
}

fn collect<const N: usize, T>(
    arena: &Arena<N, T>,
    idx: u32,
    level: usize,
    out: &mut Vec<(usize, usize, f64)>,
) {
    if out.len() <= level {
        out.push((0, 0, 0.0));
    }
    out[level].0 += 1;
    out[level].1 += arena.entry_count(idx);
    if let NodeKind::Internal(node) = arena.node(idx) {
        // Pairwise overlap between this node's children.
        let mut overlap = 0.0;
        for i in 0..node.len() {
            let ri = node.rect(i);
            for j in (i + 1)..node.len() {
                overlap += ri.overlap_volume(&node.rect(j));
            }
        }
        out[level].2 += overlap;
        for &child in node.children() {
            collect(arena, child, level + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn scatter(n: usize) -> Vec<(Rect2, usize)> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 1000) as f64 * 0.1;
                let y = ((i * 61) % 1000) as f64 * 0.1;
                (Rect2::point(Point2::new([x, y])), i)
            })
            .collect()
    }

    #[test]
    fn stats_counts_match_tree() {
        let t = RTree::bulk_load(RTreeConfig::paper(), scatter(2000));
        let s = t.stats();
        assert_eq!(s.nodes, t.node_count());
        assert_eq!(s.levels.len(), t.height());
        // Leaf entries sum to the item count.
        assert_eq!(s.levels.last().unwrap().entries, t.len());
        // Every internal level's entries equal the next level's node count.
        for w in s.levels.windows(2) {
            assert_eq!(w[0].entries, w[1].nodes);
        }
    }

    #[test]
    fn bulk_load_fill_beats_min_fraction() {
        let t = RTree::bulk_load(RTreeConfig::paper(), scatter(5000));
        let s = t.stats();
        // STR packs leaves near-full.
        assert!(s.leaf_fill > 0.8, "leaf fill {}", s.leaf_fill);
    }

    #[test]
    fn incremental_fill_within_legal_bounds() {
        let mut t: RTree<2, usize> = RTree::new(RTreeConfig::new(10, Variant::RStar));
        for (r, i) in scatter(2000) {
            t.insert(r, i);
        }
        let s = t.stats();
        // Non-root fill can never drop below m/M.
        let min_fill = t.config().min_entries as f64 / t.config().max_entries as f64;
        for (lvl, l) in s.levels.iter().enumerate().skip(1) {
            assert!(
                l.fill >= min_fill - 1e-9,
                "level {lvl} fill {} below {min_fill}",
                l.fill
            );
        }
    }

    #[test]
    fn rstar_overlap_not_worse_than_guttman() {
        // The R* split minimises sibling overlap; across a sizeable build
        // it should not lose to the quadratic split.
        let items = scatter(3000);
        let mut g: RTree<2, usize> = RTree::new(RTreeConfig::new(10, Variant::Guttman));
        let mut r: RTree<2, usize> = RTree::new(RTreeConfig::new(10, Variant::RStar));
        for (rect, i) in items {
            g.insert(rect, i);
            r.insert(rect, i);
        }
        let og: f64 = g.stats().levels.iter().map(|l| l.sibling_overlap).sum();
        let or: f64 = r.stats().levels.iter().map(|l| l.sibling_overlap).sum();
        assert!(
            or <= og * 1.1,
            "R* overlap {or} should not exceed Guttman {og} by >10%"
        );
    }

    #[test]
    fn empty_tree_stats() {
        let t: RTree<2, u8> = RTree::new(RTreeConfig::paper());
        let s = t.stats();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaf_fill, 0.0);
    }
}
