//! Arena node storage (struct-of-arrays MBR lanes) and structural
//! validation.
//!
//! Nodes live in one contiguous `Vec` and reference each other by `u32`
//! slot index instead of `Box` pointers. Search then walks a flat array —
//! child hops are index arithmetic into memory the allocator laid out
//! contiguously — and dropping a tree is one `Vec` deallocation instead of
//! a pointer chase. Slots freed by deletion are recycled through a free
//! list, so long-lived trees under churn do not grow without bound.
//!
//! Within a node, entry MBRs are stored **struct-of-arrays**: one
//! contiguous `lo` lane and one `hi` lane per axis ([`Lanes`]), with the
//! payloads (items or child slots) in a parallel array. A window test
//! against a whole node is then a branchless sweep over `2·N` flat `f64`
//! lanes producing a hit bitmask ([`Lanes::match_bits`]) — the shape
//! stable Rust auto-vectorizes without `unsafe` or intrinsics. The
//! AoS [`Entry`]/[`ChildEntry`] types survive as the *transient*
//! representation used by split and reinsert algorithms, which drain a
//! node to entry vectors, permute them, and rebuild lanes; the common
//! no-overflow paths never materialise them.

use crate::RTreeConfig;
use mar_geom::{Point, Rect};

/// A leaf entry: one stored item under its rectangle.
#[derive(Debug, Clone)]
pub struct Entry<const N: usize, T> {
    /// Bounding rectangle of the item.
    pub rect: Rect<N>,
    /// The stored item.
    pub item: T,
}

/// An internal entry: an arena slot index under the child's MBR.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChildEntry<const N: usize> {
    /// MBR of everything under `child`.
    pub rect: Rect<N>,
    /// Arena slot of the child node.
    pub child: u32,
}

/// Lane chunk width: window tests always sweep whole 8-entry blocks,
/// so the compiler sees fixed trip counts and emits straight-line SIMD.
pub(crate) const CHUNK: usize = 8;

/// Padding value for slots past `len`: NaN compares false against every
/// window bound on both sides of the interval test, so padded slots can
/// be swept unconditionally without ever matching.
const PAD: f64 = f64::NAN;

/// Struct-of-arrays rectangle storage: per-axis contiguous `lo`/`hi`
/// coordinate lanes, all packed into **one** backing allocation. Lane
/// `d`'s `lo` values occupy `buf[2d·cap .. 2d·cap + len]` and its `hi`
/// values the next stride, so entry `i`'s MBR is spread across the
/// lanes at index `i`. A single allocation keeps every lane of a node
/// within one ~1 KiB contiguous block the hardware prefetcher streams
/// through — six independent heap vectors cost a cache miss per lane
/// per node, which dominates the window-test time.
///
/// The stride is always a multiple of [`CHUNK`] and slots past `len`
/// hold NaN padding, so the window-test kernels sweep full fixed-width
/// chunks with no length-dependent control flow and no scalar tail.
#[derive(Debug, Clone)]
pub(crate) struct Lanes<const N: usize> {
    /// `2·N` lanes of `cap` slots each; slots past `len` are NaN padding.
    buf: Vec<f64>,
    len: usize,
    /// Stride between consecutive lanes in `buf`; a multiple of [`CHUNK`].
    cap: usize,
}

impl<const N: usize> Default for Lanes<N> {
    fn default() -> Self {
        Self::new()
    }
}

/// Rounds a capacity up to a whole number of chunks.
fn round_chunks(cap: usize) -> usize {
    cap.div_ceil(CHUNK) * CHUNK
}

impl<const N: usize> Lanes<N> {
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            len: 0,
            cap: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        let cap = round_chunks(cap);
        Self {
            buf: vec![PAD; 2 * N * cap],
            len: 0,
            cap,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Repacks into a buffer with a larger stride. Growth is exact (the
    /// next chunk multiple, not doubling): the sweep kernels walk every
    /// slot up to `cap`, so slack capacity is not free here — it is paid
    /// for on every window test against the node. Nodes are bounded by
    /// the split threshold, so a fill costs at most a handful of repacks.
    fn grow(&mut self, min_cap: usize) {
        let new_cap = round_chunks(min_cap);
        let mut buf = vec![PAD; 2 * N * new_cap];
        for lane in 0..2 * N {
            let src = lane * self.cap;
            let dst = lane * new_cap;
            buf[dst..dst + self.len].copy_from_slice(&self.buf[src..src + self.len]);
        }
        self.buf = buf;
        self.cap = new_cap;
    }

    #[inline]
    pub fn push(&mut self, r: &Rect<N>) {
        if self.len == self.cap {
            self.grow(self.len + 1);
        }
        for d in 0..N {
            self.buf[2 * d * self.cap + self.len] = r.lo[d];
            self.buf[(2 * d + 1) * self.cap + self.len] = r.hi[d];
        }
        self.len += 1;
    }

    /// Materialises entry `i`'s rectangle from the lanes.
    #[inline]
    pub fn rect(&self, i: usize) -> Rect<N> {
        debug_assert!(i < self.len);
        Rect::from_corners(
            Point::new(std::array::from_fn(|d| self.buf[2 * d * self.cap + i])),
            Point::new(std::array::from_fn(|d| {
                self.buf[(2 * d + 1) * self.cap + i]
            })),
        )
    }

    #[inline]
    pub fn set(&mut self, i: usize, r: &Rect<N>) {
        debug_assert!(i < self.len);
        for d in 0..N {
            self.buf[2 * d * self.cap + i] = r.lo[d];
            self.buf[(2 * d + 1) * self.cap + i] = r.hi[d];
        }
    }

    /// Order-preserving removal (shifts each lane's tail left), mirroring
    /// `Vec::remove` so deletion produces the same node layouts as the
    /// AoS storage did. The vacated last slot is re-padded.
    pub fn remove(&mut self, i: usize) -> Rect<N> {
        let r = self.rect(i);
        for lane in 0..2 * N {
            let off = lane * self.cap;
            self.buf.copy_within(off + i + 1..off + self.len, off + i);
            self.buf[off + self.len - 1] = PAD;
        }
        self.len -= 1;
        r
    }

    pub fn clear(&mut self) {
        for lane in 0..2 * N {
            let off = lane * self.cap;
            self.buf[off..off + self.len].fill(PAD);
        }
        self.len = 0;
    }

    /// MBR of all stored rectangles, folded in entry order exactly like
    /// the AoS `reduce(union)` did.
    pub fn mbr(&self) -> Option<Rect<N>> {
        (0..self.len())
            .map(|i| self.rect(i))
            .reduce(|a, b| a.union(&b))
    }

    /// Tests up to 64 entries starting at `start` against `window` and
    /// returns `(hit_mask, tested)`: bit `j` of the mask is set iff entry
    /// `start + j` intersects `window` (closed intervals, exactly
    /// [`Rect::intersects`]). The per-axis sweeps over contiguous lanes
    /// are branchless bitmask arithmetic that auto-vectorizes.
    #[inline(always)]
    pub fn match_bits(&self, window: &Rect<N>, start: usize) -> (u64, usize) {
        debug_assert_eq!(start % CHUNK, 0);
        let n = (self.len - start).min(64);
        if self.cap <= 64 {
            // cap ≤ 64 ⇒ the whole node fits one mask and `start` is 0.
            debug_assert_eq!(start, 0);
            (self.sweep(window), n)
        } else {
            let mut mask = 0u64;
            let mut o = start;
            while o < start + n {
                mask |= u64::from(self.chunk_bits(window, o)) << (o - start);
                o += CHUNK;
            }
            (mask, n)
        }
    }

    /// Full-node hit mask for strides up to 64: dispatches the runtime
    /// stride onto a monomorphized constant-stride sweep, so the hot
    /// kernel always runs with compile-time trip counts and offsets.
    #[inline(always)]
    pub(crate) fn sweep(&self, window: &Rect<N>) -> u64 {
        match self.cap {
            0 => 0,
            8 => self.sweep_const::<8>(window),
            16 => self.sweep_const::<16>(window),
            24 => self.sweep_const::<24>(window),
            32 => self.sweep_const::<32>(window),
            40 => self.sweep_const::<40>(window),
            48 => self.sweep_const::<48>(window),
            56 => self.sweep_const::<56>(window),
            64 => self.sweep_const::<64>(window),
            other => unreachable!("stride {other} is not a chunk multiple ≤ 64"),
        }
    }

    /// Sweeps all `C` slots of every lane (live entries and NaN padding
    /// alike — padding fails both interval compares, so bits at and past
    /// `len` are always zero) and returns the hit bitmask. `C` is a
    /// compile-time constant, so each arm below is straight-line
    /// branchless compare/mask arithmetic the compiler auto-vectorizes;
    /// the common dimensions get hand-fused lane expressions because the
    /// optimizer will not unroll a nested runtime-`d` loop into the same
    /// shape. Window bounds go through slice views so the dead arms of
    /// the `N` dispatch compile for every `N`.
    #[inline(always)]
    fn sweep_const<const C: usize>(&self, window: &Rect<N>) -> u64 {
        debug_assert_eq!(self.cap, C);
        let b: &[f64] = &self.buf;
        let wlo: &[f64] = &window.lo.coords;
        let whi: &[f64] = &window.hi.coords;
        if N == 2 {
            let (l0, h0) = (&b[0..C], &b[C..2 * C]);
            let (l1, h1) = (&b[2 * C..3 * C], &b[3 * C..4 * C]);
            let mut m = 0u64;
            for k in 0..C {
                let ok =
                    (l0[k] <= whi[0]) & (wlo[0] <= h0[k]) & (l1[k] <= whi[1]) & (wlo[1] <= h1[k]);
                m |= u64::from(ok) << k;
            }
            m
        } else if N == 3 {
            let (l0, h0) = (&b[0..C], &b[C..2 * C]);
            let (l1, h1) = (&b[2 * C..3 * C], &b[3 * C..4 * C]);
            let (l2, h2) = (&b[4 * C..5 * C], &b[5 * C..6 * C]);
            let mut m = 0u64;
            for k in 0..C {
                let ok = (l0[k] <= whi[0])
                    & (wlo[0] <= h0[k])
                    & (l1[k] <= whi[1])
                    & (wlo[1] <= h1[k])
                    & (l2[k] <= whi[2])
                    & (wlo[2] <= h2[k]);
                m |= u64::from(ok) << k;
            }
            m
        } else if N == 4 {
            let (l0, h0) = (&b[0..C], &b[C..2 * C]);
            let (l1, h1) = (&b[2 * C..3 * C], &b[3 * C..4 * C]);
            let (l2, h2) = (&b[4 * C..5 * C], &b[5 * C..6 * C]);
            let (l3, h3) = (&b[6 * C..7 * C], &b[7 * C..8 * C]);
            let mut m = 0u64;
            for k in 0..C {
                let ok = (l0[k] <= whi[0])
                    & (wlo[0] <= h0[k])
                    & (l1[k] <= whi[1])
                    & (wlo[1] <= h1[k])
                    & (l2[k] <= whi[2])
                    & (wlo[2] <= h2[k])
                    & (l3[k] <= whi[3])
                    & (wlo[3] <= h3[k]);
                m |= u64::from(ok) << k;
            }
            m
        } else {
            // Exotic dimensions: per-axis masks, AND-combined. Still
            // constant trip counts, just not hand-fused.
            let mut m = if C >= 64 { u64::MAX } else { (1u64 << C) - 1 };
            for d in 0..N {
                let lo = &b[2 * d * C..2 * d * C + C];
                let hi = &b[(2 * d + 1) * C..(2 * d + 1) * C + C];
                let mut md = 0u64;
                for k in 0..C {
                    md |= u64::from((lo[k] <= whi[d]) & (wlo[d] <= hi[k])) << k;
                }
                m &= md;
            }
            m
        }
    }

    /// Bounds of one axis — `(min lo, max hi)` over the live entries —
    /// folded straight off the lanes without materialising rectangles.
    /// `None` when empty. NaN padding is never read (the folds stop at
    /// `len`).
    pub(crate) fn axis_bounds(&self, d: usize) -> Option<(f64, f64)> {
        if self.len == 0 {
            return None;
        }
        let lo = &self.buf[2 * d * self.cap..2 * d * self.cap + self.len];
        let hi = &self.buf[(2 * d + 1) * self.cap..(2 * d + 1) * self.cap + self.len];
        let min = lo.iter().copied().fold(f64::INFINITY, f64::min);
        let max = hi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }

    /// Hit mask over the **first two axes only** — the axis-elision
    /// kernel. Valid when the caller has proved the window spans the
    /// whole tree on every axis ≥ 2 (then those compares cannot reject
    /// any stored rectangle, because each is contained in the root MBR
    /// and the intervals are closed). NaN padding still fails the two
    /// swept axes, so bits at and past `len` stay zero. Two thirds of
    /// the compares and lane traffic of the full sweep.
    #[inline(always)]
    pub(crate) fn sweep_front(&self, window: &Rect<N>) -> u64 {
        match self.cap {
            0 => 0,
            8 => self.sweep_front_const::<8>(window),
            16 => self.sweep_front_const::<16>(window),
            24 => self.sweep_front_const::<24>(window),
            32 => self.sweep_front_const::<32>(window),
            40 => self.sweep_front_const::<40>(window),
            48 => self.sweep_front_const::<48>(window),
            56 => self.sweep_front_const::<56>(window),
            64 => self.sweep_front_const::<64>(window),
            other => unreachable!("stride {other} is not a chunk multiple ≤ 64"),
        }
    }

    /// Constant-stride body of [`Lanes::sweep_front`].
    #[inline(always)]
    fn sweep_front_const<const C: usize>(&self, window: &Rect<N>) -> u64 {
        debug_assert_eq!(self.cap, C);
        let b: &[f64] = &self.buf;
        let wlo: &[f64] = &window.lo.coords;
        let whi: &[f64] = &window.hi.coords;
        let (l0, h0) = (&b[0..C], &b[C..2 * C]);
        let (l1, h1) = (&b[2 * C..3 * C], &b[3 * C..4 * C]);
        let mut m = 0u64;
        for k in 0..C {
            let ok = (l0[k] <= whi[0]) & (wlo[0] <= h0[k]) & (l1[k] <= whi[1]) & (wlo[1] <= h1[k]);
            m |= u64::from(ok) << k;
        }
        m
    }

    /// Hit bitmask of one chunk at chunk-aligned offset `o`; only used
    /// for nodes too large for a single 64-bit sweep.
    #[inline]
    fn chunk_bits(&self, window: &Rect<N>, o: usize) -> u32 {
        let cap = self.cap;
        let los: [&[f64]; N] = std::array::from_fn(|d| {
            let off = 2 * d * cap + o;
            &self.buf[off..off + CHUNK]
        });
        let his: [&[f64]; N] = std::array::from_fn(|d| {
            let off = (2 * d + 1) * cap + o;
            &self.buf[off..off + CHUNK]
        });
        let mut m = 0u32;
        for k in 0..CHUNK {
            let mut ok = true;
            for d in 0..N {
                ok &= (los[d][k] <= window.hi[d]) & (window.lo[d] <= his[d][k]);
            }
            m |= u32::from(ok) << k;
        }
        m
    }

    /// Number of entries intersecting `window`: a pure lane reduction
    /// with no per-entry control flow and no per-hit work, so counting
    /// queries never materialise rectangles at all.
    #[inline(always)]
    pub fn count_matches(&self, window: &Rect<N>) -> usize {
        if self.cap <= 64 {
            return self.sweep(window).count_ones() as usize;
        }
        let mut cnt = 0usize;
        let mut start = 0;
        while start < self.len {
            let (mask, n) = self.match_bits(window, start);
            cnt += mask.count_ones() as usize;
            start += n;
        }
        cnt
    }
}

/// A leaf page: MBR lanes plus the stored items in a parallel array.
#[derive(Debug, Clone)]
pub(crate) struct LeafNode<const N: usize, T> {
    pub lanes: Lanes<N>,
    items: Vec<T>,
}

impl<const N: usize, T> LeafNode<N, T> {
    pub fn new() -> Self {
        Self {
            lanes: Lanes::new(),
            items: Vec::new(),
        }
    }

    pub fn from_entries(entries: Vec<Entry<N, T>>) -> Self {
        let mut node = Self {
            lanes: Lanes::with_capacity(entries.len()),
            items: Vec::with_capacity(entries.len()),
        };
        for e in entries {
            node.push(e.rect, e.item);
        }
        node
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn push(&mut self, rect: Rect<N>, item: T) {
        self.lanes.push(&rect);
        self.items.push(item);
    }

    #[inline]
    pub fn rect(&self, i: usize) -> Rect<N> {
        self.lanes.rect(i)
    }

    #[inline]
    pub fn item(&self, i: usize) -> &T {
        &self.items[i]
    }

    /// Order-preserving removal, mirroring `Vec::remove`.
    pub fn remove(&mut self, i: usize) -> Entry<N, T> {
        let rect = self.lanes.remove(i);
        Entry {
            rect,
            item: self.items.remove(i),
        }
    }

    /// Drains the node into AoS entries (same order), leaving it empty.
    /// Overflow handling materialises through here, runs the split or
    /// reinsert permutation, and rebuilds via [`LeafNode::extend_entries`].
    pub fn drain_entries(&mut self) -> Vec<Entry<N, T>> {
        let rects: Vec<Rect<N>> = (0..self.len()).map(|i| self.rect(i)).collect();
        self.lanes.clear();
        rects
            .into_iter()
            .zip(self.items.drain(..))
            .map(|(rect, item)| Entry { rect, item })
            .collect()
    }

    pub fn extend_entries(&mut self, entries: Vec<Entry<N, T>>) {
        for e in entries {
            self.push(e.rect, e.item);
        }
    }

    pub fn into_entries(mut self) -> Vec<Entry<N, T>> {
        self.drain_entries()
    }
}

/// An internal page: MBR lanes plus the child slots in a parallel array.
#[derive(Debug, Clone)]
pub(crate) struct InternalNode<const N: usize> {
    pub lanes: Lanes<N>,
    children: Vec<u32>,
}

impl<const N: usize> InternalNode<N> {
    pub fn from_entries(entries: Vec<ChildEntry<N>>) -> Self {
        let mut node = Self {
            lanes: Lanes::with_capacity(entries.len()),
            children: Vec::with_capacity(entries.len()),
        };
        for e in entries {
            node.push(e.rect, e.child);
        }
        node
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.children.len()
    }

    #[inline]
    pub fn push(&mut self, rect: Rect<N>, child: u32) {
        self.lanes.push(&rect);
        self.children.push(child);
    }

    #[inline]
    pub fn rect(&self, i: usize) -> Rect<N> {
        self.lanes.rect(i)
    }

    #[inline]
    pub fn child(&self, i: usize) -> u32 {
        self.children[i]
    }

    #[inline]
    pub fn children(&self) -> &[u32] {
        &self.children
    }

    #[inline]
    pub fn set_rect(&mut self, i: usize, r: &Rect<N>) {
        self.lanes.set(i, r);
    }

    /// Order-preserving removal, mirroring `Vec::remove`.
    pub fn remove(&mut self, i: usize) -> ChildEntry<N> {
        let rect = self.lanes.remove(i);
        ChildEntry {
            rect,
            child: self.children.remove(i),
        }
    }

    pub fn pop(&mut self) -> Option<ChildEntry<N>> {
        let child = self.children.pop()?;
        let i = self.children.len();
        let rect = self.lanes.remove(i);
        Some(ChildEntry { rect, child })
    }

    /// Drains the node into AoS entries (same order), leaving it empty.
    pub fn drain_entries(&mut self) -> Vec<ChildEntry<N>> {
        let out: Vec<ChildEntry<N>> = (0..self.len())
            .map(|i| ChildEntry {
                rect: self.rect(i),
                child: self.children[i],
            })
            .collect();
        self.lanes.clear();
        self.children.clear();
        out
    }

    pub fn extend_entries(&mut self, entries: Vec<ChildEntry<N>>) {
        for e in entries {
            self.push(e.rect, e.child);
        }
    }
}

/// One page of the tree, stored in an arena slot.
#[derive(Debug, Clone)]
pub(crate) enum NodeKind<const N: usize, T> {
    /// A leaf page holding items.
    Leaf(LeafNode<N, T>),
    /// An internal page holding child slots.
    Internal(InternalNode<N>),
    /// A recycled slot on the free list.
    Free,
}

/// Flat node storage: a slab of nodes plus a free list of recycled slots.
#[derive(Debug, Clone)]
pub(crate) struct Arena<const N: usize, T> {
    nodes: Vec<NodeKind<N, T>>,
    free: Vec<u32>,
}

impl<const N: usize, T> Arena<N, T> {
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `kind` in a recycled or fresh slot and returns its index.
    pub fn alloc(&mut self, kind: NodeKind<N, T>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = kind;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < u32::MAX, "arena exhausted u32 slot space");
            self.nodes.push(kind);
            idx
        }
    }

    /// Moves the node out of its slot, leaving the slot on the free list.
    pub fn take(&mut self, idx: u32) -> NodeKind<N, T> {
        let kind = std::mem::replace(&mut self.nodes[idx as usize], NodeKind::Free);
        self.free.push(idx);
        kind
    }

    /// Recycles a slot without inspecting its contents.
    pub fn release(&mut self, idx: u32) {
        self.nodes[idx as usize] = NodeKind::Free;
        self.free.push(idx);
    }

    pub fn node(&self, idx: u32) -> &NodeKind<N, T> {
        &self.nodes[idx as usize]
    }

    pub fn node_mut(&mut self, idx: u32) -> &mut NodeKind<N, T> {
        &mut self.nodes[idx as usize]
    }

    /// The internal node at `idx`; must only be called on a slot known to
    /// hold an internal node.
    pub fn internal(&self, idx: u32) -> &InternalNode<N> {
        match &self.nodes[idx as usize] {
            NodeKind::Internal(node) => node,
            _ => unreachable!("slot {idx} is not an internal node"),
        }
    }

    /// Mutable twin of [`Arena::internal`].
    pub fn internal_mut(&mut self, idx: u32) -> &mut InternalNode<N> {
        match &mut self.nodes[idx as usize] {
            NodeKind::Internal(node) => node,
            _ => unreachable!("slot {idx} is not an internal node"),
        }
    }

    pub fn is_leaf(&self, idx: u32) -> bool {
        matches!(self.nodes[idx as usize], NodeKind::Leaf(_))
    }

    /// Number of entries in the node at `idx` (0 for a free slot).
    pub fn entry_count(&self, idx: u32) -> usize {
        match &self.nodes[idx as usize] {
            NodeKind::Leaf(node) => node.len(),
            NodeKind::Internal(node) => node.len(),
            NodeKind::Free => 0,
        }
    }

    /// MBR of all entries of the node at `idx`, or `None` when empty.
    pub fn mbr(&self, idx: u32) -> Option<Rect<N>> {
        match &self.nodes[idx as usize] {
            NodeKind::Leaf(node) => node.lanes.mbr(),
            NodeKind::Internal(node) => node.lanes.mbr(),
            NodeKind::Free => None,
        }
    }

    /// Total node count of the subtree rooted at `idx` (including itself).
    pub fn count_nodes(&self, idx: u32) -> usize {
        let mut count = 0usize;
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            count += 1;
            if let NodeKind::Internal(node) = self.node(i) {
                stack.extend_from_slice(node.children());
            }
        }
        count
    }

    /// Total slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    /// Slots currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Checks the free list against the slot states: every listed slot is
    /// in bounds and marked `Free`, and every `Free` slot is listed exactly
    /// once (counting both ways rules out duplicates).
    pub fn validate_free_list(&self) -> Result<(), String> {
        for &idx in &self.free {
            match self.nodes.get(idx as usize) {
                Some(NodeKind::Free) => {}
                Some(_) => return Err(format!("free-list slot {idx} holds a live node")),
                None => return Err(format!("free-list slot {idx} out of bounds")),
            }
        }
        let marked = self
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Free))
            .count();
        if marked != self.free.len() {
            return Err(format!(
                "{marked} slots marked free but free list holds {}",
                self.free.len()
            ));
        }
        Ok(())
    }

    /// Recursively checks structural invariants of the subtree at `idx`.
    /// `depth_left` is the expected remaining height (1 at leaves); `total`
    /// accumulates the item count and `live` the reachable node count.
    pub fn validate(
        &self,
        idx: u32,
        config: &RTreeConfig,
        depth_left: usize,
        is_root: bool,
        total: &mut usize,
        live: &mut usize,
    ) -> Result<(), String> {
        *live += 1;
        let count = self.entry_count(idx);
        if count > config.max_entries {
            return Err(format!("node overflow: {count} > {}", config.max_entries));
        }
        if !is_root && count < config.min_entries {
            return Err(format!("node underflow: {count} < {}", config.min_entries));
        }
        match self.node(idx) {
            NodeKind::Leaf(node) => {
                if depth_left != 1 {
                    return Err(format!("leaf at wrong depth ({depth_left} levels left)"));
                }
                // Items and lanes must stay parallel.
                if node.lanes.len() != node.len() {
                    return Err(format!(
                        "leaf lane/item length mismatch: {} vs {}",
                        node.lanes.len(),
                        node.len()
                    ));
                }
                *total += node.len();
                Ok(())
            }
            NodeKind::Internal(node) => {
                if depth_left <= 1 {
                    return Err("internal node at leaf depth".into());
                }
                if is_root && node.len() < 2 {
                    return Err("internal root must have at least 2 children".into());
                }
                if node.lanes.len() != node.len() {
                    return Err(format!(
                        "internal lane/child length mismatch: {} vs {}",
                        node.lanes.len(),
                        node.len()
                    ));
                }
                for i in 0..node.len() {
                    let stored = node.rect(i);
                    let child = node.child(i);
                    let child_mbr = self
                        .mbr(child)
                        .ok_or_else(|| "empty child node".to_string())?;
                    if !rects_equal(&stored, &child_mbr) {
                        return Err(format!(
                            "stale MBR: stored {stored:?}, actual {child_mbr:?}"
                        ));
                    }
                    self.validate(child, config, depth_left - 1, false, total, live)?;
                }
                Ok(())
            }
            NodeKind::Free => Err(format!("free slot {idx} reachable from the root")),
        }
    }
}

fn rects_equal<const N: usize>(a: &Rect<N>, b: &Rect<N>) -> bool {
    (0..N).all(|i| (a.lo[i] - b.lo[i]).abs() < 1e-9 && (a.hi[i] - b.hi[i]).abs() < 1e-9)
}
