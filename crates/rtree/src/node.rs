//! Arena node storage and structural validation.
//!
//! Nodes live in one contiguous `Vec` and reference each other by `u32`
//! slot index instead of `Box` pointers. Search then walks a flat array —
//! child hops are index arithmetic into memory the allocator laid out
//! contiguously — and dropping a tree is one `Vec` deallocation instead of
//! a pointer chase. Slots freed by deletion are recycled through a free
//! list, so long-lived trees under churn do not grow without bound.

use crate::RTreeConfig;
use mar_geom::Rect;

/// A leaf entry: one stored item under its rectangle.
#[derive(Debug, Clone)]
pub struct Entry<const N: usize, T> {
    /// Bounding rectangle of the item.
    pub rect: Rect<N>,
    /// The stored item.
    pub item: T,
}

/// An internal entry: an arena slot index under the child's MBR.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChildEntry<const N: usize> {
    /// MBR of everything under `child`.
    pub rect: Rect<N>,
    /// Arena slot of the child node.
    pub child: u32,
}

/// One page of the tree, stored in an arena slot.
#[derive(Debug, Clone)]
pub(crate) enum NodeKind<const N: usize, T> {
    /// A leaf page holding items.
    Leaf(Vec<Entry<N, T>>),
    /// An internal page holding child slots.
    Internal(Vec<ChildEntry<N>>),
    /// A recycled slot on the free list.
    Free,
}

/// Flat node storage: a slab of nodes plus a free list of recycled slots.
#[derive(Debug, Clone)]
pub(crate) struct Arena<const N: usize, T> {
    nodes: Vec<NodeKind<N, T>>,
    free: Vec<u32>,
}

impl<const N: usize, T> Arena<N, T> {
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `kind` in a recycled or fresh slot and returns its index.
    pub fn alloc(&mut self, kind: NodeKind<N, T>) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = kind;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx < u32::MAX, "arena exhausted u32 slot space");
            self.nodes.push(kind);
            idx
        }
    }

    /// Moves the node out of its slot, leaving the slot on the free list.
    pub fn take(&mut self, idx: u32) -> NodeKind<N, T> {
        let kind = std::mem::replace(&mut self.nodes[idx as usize], NodeKind::Free);
        self.free.push(idx);
        kind
    }

    /// Recycles a slot without inspecting its contents.
    pub fn release(&mut self, idx: u32) {
        self.nodes[idx as usize] = NodeKind::Free;
        self.free.push(idx);
    }

    pub fn node(&self, idx: u32) -> &NodeKind<N, T> {
        &self.nodes[idx as usize]
    }

    pub fn node_mut(&mut self, idx: u32) -> &mut NodeKind<N, T> {
        &mut self.nodes[idx as usize]
    }

    /// The internal entry list of `idx`; must only be called on a slot
    /// known to hold an internal node.
    pub fn internal(&self, idx: u32) -> &Vec<ChildEntry<N>> {
        match &self.nodes[idx as usize] {
            NodeKind::Internal(entries) => entries,
            _ => unreachable!("slot {idx} is not an internal node"),
        }
    }

    /// Mutable twin of [`Arena::internal`].
    pub fn internal_mut(&mut self, idx: u32) -> &mut Vec<ChildEntry<N>> {
        match &mut self.nodes[idx as usize] {
            NodeKind::Internal(entries) => entries,
            _ => unreachable!("slot {idx} is not an internal node"),
        }
    }

    pub fn is_leaf(&self, idx: u32) -> bool {
        matches!(self.nodes[idx as usize], NodeKind::Leaf(_))
    }

    /// Number of entries in the node at `idx` (0 for a free slot).
    pub fn entry_count(&self, idx: u32) -> usize {
        match &self.nodes[idx as usize] {
            NodeKind::Leaf(entries) => entries.len(),
            NodeKind::Internal(entries) => entries.len(),
            NodeKind::Free => 0,
        }
    }

    /// MBR of all entries of the node at `idx`, or `None` when empty.
    pub fn mbr(&self, idx: u32) -> Option<Rect<N>> {
        match &self.nodes[idx as usize] {
            NodeKind::Leaf(entries) => entries.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
            NodeKind::Internal(entries) => {
                entries.iter().map(|e| e.rect).reduce(|a, b| a.union(&b))
            }
            NodeKind::Free => None,
        }
    }

    /// Total node count of the subtree rooted at `idx` (including itself).
    pub fn count_nodes(&self, idx: u32) -> usize {
        let mut count = 0usize;
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            count += 1;
            if let NodeKind::Internal(entries) = self.node(i) {
                for e in entries {
                    stack.push(e.child);
                }
            }
        }
        count
    }

    /// Total slots ever allocated (live + free).
    pub fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    /// Slots currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Checks the free list against the slot states: every listed slot is
    /// in bounds and marked `Free`, and every `Free` slot is listed exactly
    /// once (counting both ways rules out duplicates).
    pub fn validate_free_list(&self) -> Result<(), String> {
        for &idx in &self.free {
            match self.nodes.get(idx as usize) {
                Some(NodeKind::Free) => {}
                Some(_) => return Err(format!("free-list slot {idx} holds a live node")),
                None => return Err(format!("free-list slot {idx} out of bounds")),
            }
        }
        let marked = self
            .nodes
            .iter()
            .filter(|n| matches!(n, NodeKind::Free))
            .count();
        if marked != self.free.len() {
            return Err(format!(
                "{marked} slots marked free but free list holds {}",
                self.free.len()
            ));
        }
        Ok(())
    }

    /// Recursively checks structural invariants of the subtree at `idx`.
    /// `depth_left` is the expected remaining height (1 at leaves); `total`
    /// accumulates the item count and `live` the reachable node count.
    pub fn validate(
        &self,
        idx: u32,
        config: &RTreeConfig,
        depth_left: usize,
        is_root: bool,
        total: &mut usize,
        live: &mut usize,
    ) -> Result<(), String> {
        *live += 1;
        let count = self.entry_count(idx);
        if count > config.max_entries {
            return Err(format!("node overflow: {count} > {}", config.max_entries));
        }
        if !is_root && count < config.min_entries {
            return Err(format!("node underflow: {count} < {}", config.min_entries));
        }
        match self.node(idx) {
            NodeKind::Leaf(entries) => {
                if depth_left != 1 {
                    return Err(format!("leaf at wrong depth ({depth_left} levels left)"));
                }
                *total += entries.len();
                Ok(())
            }
            NodeKind::Internal(entries) => {
                if depth_left <= 1 {
                    return Err("internal node at leaf depth".into());
                }
                if is_root && entries.len() < 2 {
                    return Err("internal root must have at least 2 children".into());
                }
                for e in entries {
                    let child_mbr = self
                        .mbr(e.child)
                        .ok_or_else(|| "empty child node".to_string())?;
                    if !rects_equal(&e.rect, &child_mbr) {
                        return Err(format!(
                            "stale MBR: stored {:?}, actual {:?}",
                            e.rect, child_mbr
                        ));
                    }
                    self.validate(e.child, config, depth_left - 1, false, total, live)?;
                }
                Ok(())
            }
            NodeKind::Free => Err(format!("free slot {idx} reachable from the root")),
        }
    }
}

fn rects_equal<const N: usize>(a: &Rect<N>, b: &Rect<N>) -> bool {
    (0..N).all(|i| (a.lo[i] - b.lo[i]).abs() < 1e-9 && (a.hi[i] - b.hi[i]).abs() < 1e-9)
}
