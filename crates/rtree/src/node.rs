//! Tree nodes and structural validation.

use crate::RTreeConfig;
use mar_geom::Rect;

/// A leaf entry: one stored item under its rectangle.
#[derive(Debug, Clone)]
pub struct Entry<const N: usize, T> {
    /// Bounding rectangle of the item.
    pub rect: Rect<N>,
    /// The stored item.
    pub item: T,
}

/// An internal entry: a child node under its MBR.
#[derive(Debug, Clone)]
pub struct ChildEntry<const N: usize, T> {
    /// MBR of everything under `child`.
    pub rect: Rect<N>,
    /// The child node.
    pub child: Box<Node<N, T>>,
}

/// One page of the tree.
#[derive(Debug, Clone)]
pub enum Node<const N: usize, T> {
    /// A leaf page holding items.
    Leaf {
        /// The stored entries.
        entries: Vec<Entry<N, T>>,
    },
    /// An internal page holding children.
    Internal {
        /// The child entries.
        entries: Vec<ChildEntry<N, T>>,
    },
}

impl<const N: usize, T> Node<N, T> {
    /// An empty leaf.
    pub fn new_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// Number of entries in this node.
    pub fn entry_count(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Internal { entries } => entries.len(),
        }
    }

    /// True for leaf pages.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// MBR of all entries, or `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect<N>> {
        match self {
            Node::Leaf { entries } => entries.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
            Node::Internal { entries } => entries.iter().map(|e| e.rect).reduce(|a, b| a.union(&b)),
        }
    }

    /// Total node count of the subtree (including `self`).
    pub fn count_nodes(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal { entries } => {
                1 + entries.iter().map(|e| e.child.count_nodes()).sum::<usize>()
            }
        }
    }

    /// Recursively checks structural invariants. `depth_left` is the
    /// expected remaining height (1 at leaves); `total` accumulates the
    /// item count.
    pub fn validate(
        &self,
        config: &RTreeConfig,
        depth_left: usize,
        is_root: bool,
        total: &mut usize,
    ) -> Result<(), String> {
        let count = self.entry_count();
        if count > config.max_entries {
            return Err(format!("node overflow: {count} > {}", config.max_entries));
        }
        if !is_root && count < config.min_entries {
            return Err(format!("node underflow: {count} < {}", config.min_entries));
        }
        match self {
            Node::Leaf { entries } => {
                if depth_left != 1 {
                    return Err(format!("leaf at wrong depth ({depth_left} levels left)"));
                }
                *total += entries.len();
                Ok(())
            }
            Node::Internal { entries } => {
                if depth_left <= 1 {
                    return Err("internal node at leaf depth".into());
                }
                if is_root && entries.len() < 2 {
                    return Err("internal root must have at least 2 children".into());
                }
                for e in entries {
                    let child_mbr = e
                        .child
                        .mbr()
                        .ok_or_else(|| "empty child node".to_string())?;
                    if !rects_equal(&e.rect, &child_mbr) {
                        return Err(format!(
                            "stale MBR: stored {:?}, actual {:?}",
                            e.rect, child_mbr
                        ));
                    }
                    e.child.validate(config, depth_left - 1, false, total)?;
                }
                Ok(())
            }
        }
    }
}

fn rects_equal<const N: usize>(a: &Rect<N>, b: &Rect<N>) -> bool {
    (0..N).all(|i| (a.lo[i] - b.lo[i]).abs() < 1e-9 && (a.hi[i] - b.hi[i]).abs() < 1e-9)
}
