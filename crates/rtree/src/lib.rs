//! # mar-rtree — N-dimensional R-tree / R*-tree with I/O accounting
//!
//! A from-scratch in-memory implementation of Guttman's R-tree \[16\] and
//! the R*-tree of Beckmann et al. \[24\], the two access methods the paper
//! builds its wavelet index on (§VI). Being in-memory, "I/O cost" is
//! measured the way the paper reports it: as the number of **node (page)
//! accesses** a query performs — that number depends only on tree geometry
//! and the search algorithm, not on a physical disk.
//!
//! Features:
//! * arbitrary dimension via const generics (`RTree<3, T>` is the paper's
//!   experimental `x-y-w` tree, `RTree<4, T>` the full `x-y-z-w` design);
//! * flat arena storage: nodes live in one `Vec` addressed by `u32` slot
//!   indices, so search walks contiguous memory instead of chasing
//!   `Box` pointers, and the query hot path performs no allocation (the
//!   traversal stack is a reusable thread-local scratch buffer);
//! * insertion with either Guttman's quadratic split or the R\* split with
//!   forced reinsertion (selectable via [`RTreeConfig`]);
//! * Sort-Tile-Recursive (STR) bulk loading for building large static
//!   indexes quickly;
//! * window (range) queries with per-query and cumulative node-access
//!   counters;
//! * deletion with tree condensation;
//! * a structural [`RTree::validate`] (tree shape **and** arena/free-list
//!   invariants) used heavily by the test suite.
//!
//! The page geometry of the evaluation (4 KB pages, node capacity 20) is
//! [`RTreeConfig::paper`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod counters;
mod delete;
mod insert;
mod knn;
mod node;
mod pages;
mod query;
mod stats;

pub use counters::{IoCounters, IoKind, IoSnapshot};
pub use node::Entry;
pub use pages::{NodePage, PageExport, PagedNodeKind};
pub use query::BatchAccesses;
pub use stats::{LevelStats, TreeStats};

use mar_geom::Rect;
use node::{Arena, LeafNode, NodeKind};

/// Which insertion/split algorithm the tree uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Guttman's original R-tree: least-enlargement subtree choice,
    /// quadratic split.
    Guttman,
    /// R*-tree: overlap-aware subtree choice, margin-driven split, forced
    /// reinsertion at the leaf level.
    RStar,
}

/// Tree parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`).
    pub max_entries: usize,
    /// Minimum entries per non-root node (`m`), `2 ≤ m ≤ M/2`.
    pub min_entries: usize,
    /// Algorithm variant.
    pub variant: Variant,
}

impl RTreeConfig {
    /// Creates a config with `m = max(2, ⌊0.4·M⌋)` (the R*-tree paper's
    /// recommended fill).
    pub fn new(max_entries: usize, variant: Variant) -> Self {
        assert!(max_entries >= 4, "node capacity must be at least 4");
        Self {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2),
            variant,
        }
    }

    /// The evaluation's page geometry: 4 KB pages with node capacity 20
    /// (§VII-D), R*-tree variant.
    pub fn paper() -> Self {
        Self::new(20, Variant::RStar)
    }

    /// Number of entries the R* forced-reinsert removes on first overflow
    /// (30 % of M, the original paper's `p`).
    pub(crate) fn reinsert_count(&self) -> usize {
        (self.max_entries * 3 / 10).max(1)
    }
}

/// An N-dimensional R-tree over items of type `T`.
///
/// Each item is stored under an axis-aligned rectangle (possibly
/// degenerate, for point data). The tree never inspects `T` except for
/// equality during deletion.
///
/// ```
/// use mar_rtree::{RTree, RTreeConfig};
/// use mar_geom::{Point2, Rect2};
/// let mut tree: RTree<2, &str> = RTree::new(RTreeConfig::paper());
/// tree.insert(Rect2::point(Point2::new([1.0, 1.0])), "kiosk");
/// tree.insert(Rect2::point(Point2::new([8.0, 8.0])), "tower");
/// let window = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([2.0, 2.0]));
/// let (hits, node_accesses) = tree.query(&window);
/// assert_eq!(hits, vec![&"kiosk"]);
/// assert!(node_accesses >= 1); // the paper's I/O metric
/// ```
#[derive(Debug)]
pub struct RTree<const N: usize, T> {
    pub(crate) config: RTreeConfig,
    /// Flat node storage; `root` indexes into it.
    pub(crate) arena: Arena<N, T>,
    pub(crate) root: u32,
    /// Height of the tree: 1 for a single leaf node.
    pub(crate) height: usize,
    pub(crate) len: usize,
    /// Cumulative node-access counters across all queries since the last
    /// reset (see [`IoCounters`]). Atomics (not `Cell`s) so a read-only
    /// tree can be shared across threads: queries take `&self` yet still
    /// tally the paper's I/O metric.
    pub(crate) io: IoCounters,
}

impl<const N: usize, T: Clone> Clone for RTree<N, T> {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            arena: self.arena.clone(),
            root: self.root,
            height: self.height,
            len: self.len,
            io: self.io.clone(),
        }
    }
}

impl<const N: usize, T> RTree<N, T> {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        let mut arena = Arena::new();
        let root = arena.alloc(NodeKind::Leaf(LeafNode::new()));
        Self {
            config,
            arena,
            root,
            height: 1,
            len: 0,
            io: IoCounters::new(),
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The tree's configuration.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Total number of nodes (pages) in the tree.
    pub fn node_count(&self) -> usize {
        self.arena.count_nodes(self.root)
    }

    /// MBR of everything stored, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect<N>> {
        self.arena.mbr(self.root)
    }

    /// Cumulative **logical** node accesses performed by queries since
    /// the last [`RTree::reset_io`] — the paper's §VI metric. See
    /// [`RTree::io_snapshot`] for the unique/physical companions.
    pub fn io_count(&self) -> u64 {
        self.io.get(IoKind::Logical)
    }

    /// Snapshot of all three node-access counters.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    /// The live counters (so an out-of-core wrapper can account its page
    /// faults through the same structure queries tally into).
    pub fn io_counters(&self) -> &IoCounters {
        &self.io
    }

    /// Resets all cumulative node-access counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Checks every structural invariant (entry counts, MBR containment,
    /// uniform leaf depth, length bookkeeping) plus the arena invariants:
    /// every slot is either reachable from the root or on the free list,
    /// and the free list is consistent with the slot states. Intended for
    /// tests; returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0usize;
        let mut live = 0usize;
        self.arena.validate(
            self.root,
            &self.config,
            self.height,
            true,
            &mut total,
            &mut live,
        )?;
        if total != self.len {
            return Err(format!("len {} but counted {}", self.len, total));
        }
        self.arena.validate_free_list()?;
        if live + self.arena.free_count() != self.arena.slot_count() {
            return Err(format!(
                "arena leak: {live} reachable + {} free != {} slots",
                self.arena.free_count(),
                self.arena.slot_count()
            ));
        }
        Ok(())
    }

    /// Iterates over every `(rect, item)` in the tree (arbitrary order).
    /// Rectangles are materialised by value from the node's coordinate
    /// lanes.
    pub fn iter(&self) -> impl Iterator<Item = (Rect<N>, &T)> {
        let mut stack = vec![self.root];
        let mut leaf_items: Vec<(Rect<N>, &T)> = Vec::new();
        while let Some(idx) = stack.pop() {
            match self.arena.node(idx) {
                NodeKind::Leaf(node) => {
                    for i in 0..node.len() {
                        leaf_items.push((node.rect(i), node.item(i)));
                    }
                }
                NodeKind::Internal(node) => {
                    stack.extend_from_slice(node.children());
                }
                NodeKind::Free => {}
            }
        }
        leaf_items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    #[test]
    fn empty_tree_basics() {
        let t: RTree<2, u32> = RTree::new(RTreeConfig::paper());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        assert!(t.bounding_rect().is_none());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn paper_config_geometry() {
        let c = RTreeConfig::paper();
        assert_eq!(c.max_entries, 20);
        assert_eq!(c.min_entries, 8);
        assert_eq!(c.variant, Variant::RStar);
        assert_eq!(c.reinsert_count(), 6);
    }

    #[test]
    fn iter_visits_everything() {
        let mut t: RTree<2, usize> = RTree::new(RTreeConfig::new(4, Variant::Guttman));
        for i in 0..50 {
            t.insert(pt(i as f64, (i * 7 % 13) as f64), i);
        }
        let mut seen: Vec<usize> = t.iter().map(|(_, &i)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }
}
