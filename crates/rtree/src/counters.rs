//! Unified node-access accounting.
//!
//! The paper's I/O metric started as a single cumulative counter, then
//! grew ad-hoc companions: the batched descent's *unique* physical
//! visits were tallied by callers by hand, and the out-of-core backend
//! needed a third number — real page faults. [`IoCounters`] replaces the
//! scattered `AtomicU64`s with one structure holding all three, each
//! addressed by an [`IoKind`]:
//!
//! * [`IoKind::Logical`] — per-query node accesses as K independent
//!   scalar descents would report them (the paper's §VI metric; what
//!   [`crate::RTree::io_count`] has always returned).
//! * [`IoKind::Unique`] — distinct node visits the grouped descent
//!   actually performed (a node shared by several windows of a batch
//!   counts once).
//! * [`IoKind::Physical`] — page-cache faults: reads that went to the
//!   page file instead of the buffer pool. Always zero for the all-in-RAM
//!   backend.
//!
//! Counters are atomics so a read-only tree can be shared across
//! threads; queries take `&self` yet still tally.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which node-access counter a read accounts against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Per-window logical node accesses (the paper's §VI metric).
    Logical,
    /// Distinct node visits of a grouped descent.
    Unique,
    /// Real page-file reads (out-of-core backend only).
    Physical,
}

/// Plain-value snapshot of the three counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Cumulative logical node accesses.
    pub logical: u64,
    /// Cumulative unique (physical-visit) node accesses.
    pub unique: u64,
    /// Cumulative page faults.
    pub physical: u64,
}

/// Cumulative node-access counters, shared-readable across threads.
#[derive(Debug, Default)]
pub struct IoCounters {
    logical: AtomicU64,
    unique: AtomicU64,
    physical: AtomicU64,
}

impl IoCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, kind: IoKind) -> &AtomicU64 {
        match kind {
            IoKind::Logical => &self.logical,
            IoKind::Unique => &self.unique,
            IoKind::Physical => &self.physical,
        }
    }

    /// Adds `n` accesses of the given kind.
    pub fn add(&self, kind: IoKind, n: u64) {
        self.cell(kind).fetch_add(n, Ordering::Relaxed);
    }

    /// Reads one counter.
    pub fn get(&self, kind: IoKind) -> u64 {
        self.cell(kind).load(Ordering::Relaxed)
    }

    /// Reads all three counters at once (each individually `Relaxed`).
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical: self.logical.load(Ordering::Relaxed),
            unique: self.unique.load(Ordering::Relaxed),
            physical: self.physical.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all three counters.
    pub fn reset(&self) {
        self.logical.store(0, Ordering::Relaxed);
        self.unique.store(0, Ordering::Relaxed);
        self.physical.store(0, Ordering::Relaxed);
    }
}

impl Clone for IoCounters {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        Self {
            logical: AtomicU64::new(s.logical),
            unique: AtomicU64::new(s.unique),
            physical: AtomicU64::new(s.physical),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_independent() {
        let c = IoCounters::new();
        c.add(IoKind::Logical, 5);
        c.add(IoKind::Unique, 3);
        c.add(IoKind::Physical, 1);
        c.add(IoKind::Logical, 2);
        assert_eq!(c.get(IoKind::Logical), 7);
        assert_eq!(c.get(IoKind::Unique), 3);
        assert_eq!(c.get(IoKind::Physical), 1);
        assert_eq!(
            c.snapshot(),
            IoSnapshot {
                logical: 7,
                unique: 3,
                physical: 1
            }
        );
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn clone_carries_values() {
        let c = IoCounters::new();
        c.add(IoKind::Unique, 9);
        let d = c.clone();
        c.add(IoKind::Unique, 1);
        assert_eq!(d.get(IoKind::Unique), 9);
        assert_eq!(c.get(IoKind::Unique), 10);
    }
}
