//! Window queries with node-access accounting.
//!
//! The search is iterative over arena slot indices and performs no
//! allocation on the hot path: the traversal stack is a thread-local
//! scratch buffer of `u32` slots that is taken for the duration of one
//! search and handed back (grown) afterwards, so steady-state queries
//! reuse the same capacity forever. A `Cell` (take/replace) rather than a
//! `RefCell` keeps re-entrant searches safe: a query issued from inside a
//! visitor simply starts from a fresh empty stack.

use crate::node::NodeKind;
use crate::RTree;
use mar_geom::Rect;
use std::cell::Cell;

thread_local! {
    /// Reusable traversal stack shared by every tree on this thread; slot
    /// indices are plain `u32`s, so one buffer serves all `N`/`T`.
    static SEARCH_STACK: Cell<Vec<u32>> = const { Cell::new(Vec::new()) };
}

impl<const N: usize, T> RTree<N, T> {
    /// Visits every `(rect, item)` whose rectangle intersects `window`,
    /// returning the number of node (page) accesses the search performed.
    /// The cumulative [`RTree::io_count`] is incremented by the same
    /// amount.
    pub fn search<'a>(
        &'a self,
        window: &Rect<N>,
        mut visit: impl FnMut(&'a Rect<N>, &'a T),
    ) -> u64 {
        let mut stack = SEARCH_STACK.with(Cell::take);
        stack.clear();
        let mut accesses = 0u64;
        stack.push(self.root);
        while let Some(idx) = stack.pop() {
            accesses += 1;
            match self.arena.node(idx) {
                NodeKind::Leaf(entries) => {
                    for e in entries {
                        if e.rect.intersects(window) {
                            visit(&e.rect, &e.item);
                        }
                    }
                }
                NodeKind::Internal(entries) => {
                    for e in entries {
                        if e.rect.intersects(window) {
                            stack.push(e.child);
                        }
                    }
                }
                // Free slots are never reachable from the root.
                NodeKind::Free => {}
            }
        }
        SEARCH_STACK.with(|cell| cell.set(stack));
        self.io
            .fetch_add(accesses, std::sync::atomic::Ordering::Relaxed);
        accesses
    }

    /// Collects every item intersecting `window`; returns the items and the
    /// node accesses.
    pub fn query(&self, window: &Rect<N>) -> (Vec<&T>, u64) {
        let mut out = Vec::new();
        let io = self.search(window, |_, item| out.push(item));
        (out, io)
    }

    /// Counts items intersecting `window` without materialising them.
    pub fn count_in(&self, window: &Rect<N>) -> (usize, u64) {
        let mut n = 0usize;
        let io = self.search(window, |_, _| n += 1);
        (n, io)
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn grid_tree(variant: Variant) -> RTree<2, (i32, i32)> {
        let mut t = RTree::new(RTreeConfig::new(8, variant));
        for x in 0..20 {
            for y in 0..20 {
                t.insert(pt(x as f64, y as f64), (x, y));
            }
        }
        t
    }

    #[test]
    fn window_query_matches_bruteforce() {
        for variant in [Variant::Guttman, Variant::RStar] {
            let t = grid_tree(variant);
            let w = Rect2::new(Point2::new([3.5, 2.5]), Point2::new([8.5, 6.5]));
            let (mut got, io) = t.query(&w);
            assert!(io >= 1);
            let mut items: Vec<(i32, i32)> = got.drain(..).copied().collect();
            items.sort_unstable();
            let mut expect = Vec::new();
            for x in 4..=8 {
                for y in 3..=6 {
                    expect.push((x, y));
                }
            }
            assert_eq!(items, expect);
        }
    }

    #[test]
    fn boundary_inclusive() {
        let t = grid_tree(Variant::RStar);
        // A degenerate window exactly on a point.
        let w = Rect2::point(Point2::new([5.0, 5.0]));
        let (got, _) = t.query(&w);
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0], (5, 5));
    }

    #[test]
    fn empty_window_returns_nothing() {
        let t = grid_tree(Variant::RStar);
        let w = Rect2::new(Point2::new([100.0, 100.0]), Point2::new([110.0, 110.0]));
        let (got, io) = t.query(&w);
        assert!(got.is_empty());
        assert_eq!(io, 1, "only the root should be touched");
    }

    #[test]
    fn io_counter_accumulates_and_resets() {
        let t = grid_tree(Variant::RStar);
        t.reset_io();
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let (_, io1) = t.query(&w);
        let (_, io2) = t.query(&w);
        assert_eq!(io1, io2);
        assert_eq!(t.io_count(), io1 + io2);
        t.reset_io();
        assert_eq!(t.io_count(), 0);
        // A full scan must touch every node.
        assert_eq!(io1 as usize, t.node_count());
    }

    #[test]
    fn smaller_windows_cost_fewer_accesses() {
        let t = grid_tree(Variant::RStar);
        let small = Rect2::new(Point2::new([5.0, 5.0]), Point2::new([6.0, 6.0]));
        let big = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let (_, io_small) = t.query(&small);
        let (_, io_big) = t.query(&big);
        assert!(io_small < io_big);
    }

    #[test]
    fn count_matches_query_len() {
        let t = grid_tree(Variant::Guttman);
        let w = Rect2::new(Point2::new([2.0, 2.0]), Point2::new([10.0, 4.0]));
        let (items, _) = t.query(&w);
        let (n, _) = t.count_in(&w);
        assert_eq!(items.len(), n);
    }

    #[test]
    fn reentrant_search_from_visitor() {
        // A query issued from inside a visitor must not corrupt the
        // thread-local scratch stack of the outer search.
        let t = grid_tree(Variant::RStar);
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let mut outer = 0usize;
        let mut inner_total = 0usize;
        t.search(&w, |_, _| {
            outer += 1;
            let small = Rect2::point(Point2::new([5.0, 5.0]));
            let (n, _) = t.count_in(&small);
            inner_total += n;
        });
        assert_eq!(outer, 400);
        assert_eq!(inner_total, 400);
    }
}
