//! Window queries with node-access accounting: a branchless scalar
//! search and a batched multi-window group descent.
//!
//! Both searches are iterative over arena slot indices and perform no
//! allocation on the hot path: the traversal stacks are thread-local
//! scratch buffers that are taken for the duration of one search and
//! handed back (grown) afterwards, so steady-state queries reuse the same
//! capacity forever. A `Cell` (take/replace) rather than a `RefCell`
//! keeps re-entrant searches safe: a query issued from inside a visitor
//! simply starts from a fresh empty stack.
//!
//! Node tests run through [`Lanes::match_bits`]: one sweep over the
//! node's contiguous per-axis `lo`/`hi` lanes produces a hit bitmask for
//! up to 64 entries at a time, which iterates by `trailing_zeros`. The
//! visit order (and therefore every access count) is identical to the
//! classic one-rect-at-a-time loop; only the comparison shape changes.
//!
//! [`RTree::search_batch`] extends this to K windows at once: the stack
//! carries `(node, window_bitmask)` pairs, so a node shared by several
//! windows is *physically* visited once per group while the per-window
//! **logical** access counts (what K independent scalar descents would
//! have reported, and what the cumulative [`RTree::io_count`] tallies)
//! are still attributed exactly. The physical visit count — the improved
//! node-access metric batching buys — is returned alongside.

use crate::node::NodeKind;
use crate::{IoKind, RTree};
use mar_geom::Rect;
use std::cell::Cell;

thread_local! {
    /// Reusable traversal stack shared by every tree on this thread; slot
    /// indices are plain `u32`s, so one buffer serves all `N`/`T`.
    static SEARCH_STACK: Cell<Vec<u32>> = const { Cell::new(Vec::new()) };
    /// Reusable `(slot, window-bitmask)` stack for the batched descent.
    static BATCH_STACK: Cell<Vec<(u32, u64)>> = const { Cell::new(Vec::new()) };
}

/// Access accounting of one [`RTree::search_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAccesses {
    /// Logical node accesses per window — exactly what a scalar
    /// [`RTree::search`] of the same window would have returned. These are
    /// what the cumulative [`RTree::io_count`] is incremented by, so
    /// existing I/O accounting is batch-invariant.
    pub per_window: Vec<u64>,
    /// Distinct node visits the grouped descent actually performed (a
    /// node shared by several windows of a 64-wide group counts once).
    /// `max(per_window) <= unique <= sum(per_window)`.
    pub unique: u64,
}

impl BatchAccesses {
    /// Sum of the per-window logical accesses (what K scalar searches
    /// would have cost).
    pub fn logical_total(&self) -> u64 {
        self.per_window.iter().sum()
    }
}

impl<const N: usize, T> RTree<N, T> {
    /// Visits every `(rect, item)` whose rectangle intersects `window`,
    /// returning the number of node (page) accesses the search performed.
    /// The cumulative [`RTree::io_count`] is incremented by the same
    /// amount.
    pub fn search<'a>(&'a self, window: &Rect<N>, mut visit: impl FnMut(Rect<N>, &'a T)) -> u64 {
        let mut stack = SEARCH_STACK.with(Cell::take);
        stack.clear();
        let mut accesses = 0u64;
        stack.push(self.root);
        while let Some(idx) = stack.pop() {
            accesses += 1;
            match self.arena.node(idx) {
                NodeKind::Leaf(node) => {
                    let mut start = 0;
                    while start < node.len() {
                        let (mut mask, n) = node.lanes.match_bits(window, start);
                        while mask != 0 {
                            let j = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            visit(node.rect(start + j), node.item(start + j));
                        }
                        start += n;
                    }
                }
                NodeKind::Internal(node) => {
                    let mut start = 0;
                    while start < node.len() {
                        let (mut mask, n) = node.lanes.match_bits(window, start);
                        while mask != 0 {
                            let j = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            stack.push(node.child(start + j));
                        }
                        start += n;
                    }
                }
                // Free slots are never reachable from the root.
                NodeKind::Free => {}
            }
        }
        SEARCH_STACK.with(|cell| cell.set(stack));
        self.io.add(IoKind::Logical, accesses);
        self.io.add(IoKind::Unique, accesses);
        accesses
    }

    /// Searches `K` windows in one grouped descent. `visit` receives
    /// `(window_index, rect, item)` for every window/item intersection —
    /// per window, exactly the hit set the scalar [`RTree::search`] of
    /// that window produces (emission order may interleave windows).
    ///
    /// Windows are grouped 64 at a time (one bitmask lane each); within a
    /// group every tree node is physically visited at most once, while
    /// logical per-window accesses — and through them the cumulative
    /// [`RTree::io_count`] — are attributed exactly as K scalar searches
    /// would have. See [`BatchAccesses`].
    pub fn search_batch<'a>(
        &'a self,
        windows: &[Rect<N>],
        mut visit: impl FnMut(usize, Rect<N>, &'a T),
    ) -> BatchAccesses {
        let mut per_window = vec![0u64; windows.len()];
        let mut unique = 0u64;
        for (chunk_idx, chunk) in windows.chunks(64).enumerate() {
            unique += self.search_group(chunk, chunk_idx * 64, &mut per_window, &mut visit);
        }
        let total: u64 = per_window.iter().sum();
        self.io.add(IoKind::Logical, total);
        self.io.add(IoKind::Unique, unique);
        BatchAccesses { per_window, unique }
    }

    /// One ≤64-window group descent; returns the physical node visits.
    fn search_group<'a>(
        &'a self,
        windows: &[Rect<N>],
        base: usize,
        per_window: &mut [u64],
        visit: &mut impl FnMut(usize, Rect<N>, &'a T),
    ) -> u64 {
        if windows.is_empty() {
            return 0;
        }
        let all = if windows.len() == 64 {
            u64::MAX
        } else {
            (1u64 << windows.len()) - 1
        };
        let mut stack = BATCH_STACK.with(Cell::take);
        stack.clear();
        let mut unique = 0u64;
        stack.push((self.root, all));
        while let Some((idx, group)) = stack.pop() {
            unique += 1;
            // Logical attribution: every window whose bit is set "visits"
            // this node, exactly as its own scalar descent would have.
            let mut g = group;
            while g != 0 {
                let w = g.trailing_zeros() as usize;
                g &= g - 1;
                per_window[base + w] += 1;
            }
            match self.arena.node(idx) {
                NodeKind::Leaf(node) => {
                    let mut g = group;
                    while g != 0 {
                        let w = g.trailing_zeros() as usize;
                        g &= g - 1;
                        let window = &windows[w];
                        let mut start = 0;
                        while start < node.len() {
                            let (mut mask, n) = node.lanes.match_bits(window, start);
                            while mask != 0 {
                                let j = mask.trailing_zeros() as usize;
                                mask &= mask - 1;
                                visit(base + w, node.rect(start + j), node.item(start + j));
                            }
                            start += n;
                        }
                    }
                }
                NodeKind::Internal(node) => {
                    // Transpose window×entry hits into per-child window
                    // masks, then push surviving children in entry order.
                    let mut start = 0;
                    while start < node.len() {
                        let n = (node.len() - start).min(64);
                        let mut child_masks = [0u64; 64];
                        let mut g = group;
                        while g != 0 {
                            let w = g.trailing_zeros() as usize;
                            g &= g - 1;
                            let (mut mask, _) = node.lanes.match_bits(&windows[w], start);
                            while mask != 0 {
                                let j = mask.trailing_zeros() as usize;
                                mask &= mask - 1;
                                child_masks[j] |= 1u64 << w;
                            }
                        }
                        for (j, &cm) in child_masks[..n].iter().enumerate() {
                            if cm != 0 {
                                stack.push((node.child(start + j), cm));
                            }
                        }
                        start += n;
                    }
                }
                NodeKind::Free => {}
            }
        }
        BATCH_STACK.with(|cell| cell.set(stack));
        unique
    }

    /// Collects every item intersecting `window`; returns the items and the
    /// node accesses.
    pub fn query(&self, window: &Rect<N>) -> (Vec<&T>, u64) {
        let mut out = Vec::new();
        let io = self.search(window, |_, item| out.push(item));
        (out, io)
    }

    /// Counts items intersecting `window` without materialising them.
    ///
    /// Visits exactly the nodes [`RTree::search`] would (same order, same
    /// access count), but leaf hits are tallied straight off the match
    /// bitmask with a popcount — no per-hit rectangle or item access — so
    /// counting is pure lane arithmetic.
    pub fn count_in(&self, window: &Rect<N>) -> (usize, u64) {
        // Node capacities are bounded by the split threshold, so any
        // configuration up to 56 entries per node (the paper's page
        // geometry holds 20) guarantees every node fits a single 64-bit
        // sweep and the whole walk runs mask-at-a-time.
        if self.config.max_entries > 56 {
            return self.count_in_chunked(window);
        }
        // Axis elision: a full-band query (§VI-B) lifts the region by
        // the entire magnitude range, so the window spans every stored
        // rectangle on the lifted axes — those compares cannot reject
        // anything and the kernels may sweep the two spatial axes only.
        // Exact because stored rects lie inside the root MBR and the
        // interval compares are closed.
        let elide_tail = N == 3
            && match self.arena.node(self.root) {
                NodeKind::Leaf(node) => node.lanes.axis_bounds(2),
                NodeKind::Internal(node) => node.lanes.axis_bounds(2),
                NodeKind::Free => None,
            }
            .is_some_and(|(lo, hi)| window.lo[2] <= lo && hi <= window.hi[2]);
        if elide_tail {
            self.count_walk::<true>(window)
        } else {
            self.count_walk::<false>(window)
        }
    }

    /// Mask-at-a-time counting walk. Counting observes only totals —
    /// the hit count and the number of node accesses are both invariant
    /// under traversal order — so this walk is free to use a bounded
    /// local stack (no thread-local round-trip) and pop in whatever
    /// order falls out; the totals still equal [`RTree::search`]'s.
    fn count_walk<const ELIDE: bool>(&self, window: &Rect<N>) -> (usize, u64) {
        let mut buf = [0u32; 128];
        let mut top = 1usize;
        buf[0] = self.root;
        let mut spill: Vec<u32> = Vec::new();
        let mut accesses = 0u64;
        let mut hits = 0usize;
        loop {
            let idx = if top > 0 {
                top -= 1;
                buf[top]
            } else if let Some(i) = spill.pop() {
                i
            } else {
                break;
            };
            accesses += 1;
            match self.arena.node(idx) {
                NodeKind::Leaf(node) => {
                    let m = if ELIDE {
                        node.lanes.sweep_front(window)
                    } else {
                        node.lanes.sweep(window)
                    };
                    hits += m.count_ones() as usize;
                }
                NodeKind::Internal(node) => {
                    let mut mask = if ELIDE {
                        node.lanes.sweep_front(window)
                    } else {
                        node.lanes.sweep(window)
                    };
                    while mask != 0 {
                        let j = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let child = node.child(j);
                        if top < buf.len() {
                            buf[top] = child;
                            top += 1;
                        } else {
                            spill.push(child);
                        }
                    }
                }
                NodeKind::Free => {}
            }
        }
        self.io.add(IoKind::Logical, accesses);
        self.io.add(IoKind::Unique, accesses);
        (hits, accesses)
    }

    /// Chunked fallback for configurations whose nodes exceed one
    /// 64-entry mask; traversal and totals match [`RTree::search`].
    fn count_in_chunked(&self, window: &Rect<N>) -> (usize, u64) {
        let mut stack = SEARCH_STACK.with(Cell::take);
        stack.clear();
        let mut accesses = 0u64;
        let mut hits = 0usize;
        stack.push(self.root);
        while let Some(idx) = stack.pop() {
            accesses += 1;
            match self.arena.node(idx) {
                NodeKind::Leaf(node) => {
                    hits += node.lanes.count_matches(window);
                }
                NodeKind::Internal(node) => {
                    let mut start = 0;
                    while start < node.len() {
                        let (mut mask, n) = node.lanes.match_bits(window, start);
                        while mask != 0 {
                            let j = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            stack.push(node.child(start + j));
                        }
                        start += n;
                    }
                }
                NodeKind::Free => {}
            }
        }
        SEARCH_STACK.with(|cell| cell.set(stack));
        self.io.add(IoKind::Logical, accesses);
        self.io.add(IoKind::Unique, accesses);
        (hits, accesses)
    }
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn grid_tree(variant: Variant) -> RTree<2, (i32, i32)> {
        let mut t = RTree::new(RTreeConfig::new(8, variant));
        for x in 0..20 {
            for y in 0..20 {
                t.insert(pt(x as f64, y as f64), (x, y));
            }
        }
        t
    }

    #[test]
    fn window_query_matches_bruteforce() {
        for variant in [Variant::Guttman, Variant::RStar] {
            let t = grid_tree(variant);
            let w = Rect2::new(Point2::new([3.5, 2.5]), Point2::new([8.5, 6.5]));
            let (mut got, io) = t.query(&w);
            assert!(io >= 1);
            let mut items: Vec<(i32, i32)> = got.drain(..).copied().collect();
            items.sort_unstable();
            let mut expect = Vec::new();
            for x in 4..=8 {
                for y in 3..=6 {
                    expect.push((x, y));
                }
            }
            assert_eq!(items, expect);
        }
    }

    #[test]
    fn boundary_inclusive() {
        let t = grid_tree(Variant::RStar);
        // A degenerate window exactly on a point.
        let w = Rect2::point(Point2::new([5.0, 5.0]));
        let (got, _) = t.query(&w);
        assert_eq!(got.len(), 1);
        assert_eq!(*got[0], (5, 5));
    }

    #[test]
    fn empty_window_returns_nothing() {
        let t = grid_tree(Variant::RStar);
        let w = Rect2::new(Point2::new([100.0, 100.0]), Point2::new([110.0, 110.0]));
        let (got, io) = t.query(&w);
        assert!(got.is_empty());
        assert_eq!(io, 1, "only the root should be touched");
    }

    #[test]
    fn io_counter_accumulates_and_resets() {
        let t = grid_tree(Variant::RStar);
        t.reset_io();
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let (_, io1) = t.query(&w);
        let (_, io2) = t.query(&w);
        assert_eq!(io1, io2);
        assert_eq!(t.io_count(), io1 + io2);
        t.reset_io();
        assert_eq!(t.io_count(), 0);
        // A full scan must touch every node.
        assert_eq!(io1 as usize, t.node_count());
    }

    #[test]
    fn smaller_windows_cost_fewer_accesses() {
        let t = grid_tree(Variant::RStar);
        let small = Rect2::new(Point2::new([5.0, 5.0]), Point2::new([6.0, 6.0]));
        let big = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let (_, io_small) = t.query(&small);
        let (_, io_big) = t.query(&big);
        assert!(io_small < io_big);
    }

    #[test]
    fn count_matches_query_len() {
        let t = grid_tree(Variant::Guttman);
        let w = Rect2::new(Point2::new([2.0, 2.0]), Point2::new([10.0, 4.0]));
        let (items, _) = t.query(&w);
        let (n, _) = t.count_in(&w);
        assert_eq!(items.len(), n);
    }

    #[test]
    fn reentrant_search_from_visitor() {
        // A query issued from inside a visitor must not corrupt the
        // thread-local scratch stack of the outer search.
        let t = grid_tree(Variant::RStar);
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0]));
        let mut outer = 0usize;
        let mut inner_total = 0usize;
        t.search(&w, |_, _| {
            outer += 1;
            let small = Rect2::point(Point2::new([5.0, 5.0]));
            let (n, _) = t.count_in(&small);
            inner_total += n;
        });
        assert_eq!(outer, 400);
        assert_eq!(inner_total, 400);
    }

    #[test]
    fn batch_matches_scalar_hits_and_counts() {
        let t = grid_tree(Variant::RStar);
        let windows = [
            Rect2::new(Point2::new([3.5, 2.5]), Point2::new([8.5, 6.5])),
            Rect2::point(Point2::new([5.0, 5.0])),
            Rect2::new(Point2::new([100.0, 100.0]), Point2::new([110.0, 110.0])),
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([19.0, 19.0])),
        ];
        let mut batch_hits: Vec<Vec<(i32, i32)>> = vec![Vec::new(); windows.len()];
        let acc = t.search_batch(&windows, |w, _, &item| batch_hits[w].push(item));
        assert_eq!(acc.per_window.len(), windows.len());
        let mut logical_sum = 0;
        let mut max_logical = 0;
        for (w, window) in windows.iter().enumerate() {
            let (mut scalar, io) = t.query(window);
            let mut scalar: Vec<(i32, i32)> = scalar.drain(..).copied().collect();
            scalar.sort_unstable();
            batch_hits[w].sort_unstable();
            assert_eq!(batch_hits[w], scalar, "window {w} hit set");
            assert_eq!(acc.per_window[w], io, "window {w} logical accesses");
            logical_sum += io;
            max_logical = max_logical.max(io);
        }
        assert!(acc.unique >= max_logical);
        assert!(acc.unique <= logical_sum);
        assert_eq!(acc.logical_total(), logical_sum);
    }

    #[test]
    fn batch_shares_node_visits_across_duplicate_windows() {
        let t = grid_tree(Variant::RStar);
        let w = Rect2::new(Point2::new([2.0, 2.0]), Point2::new([10.0, 10.0]));
        let (_, scalar_io) = t.query(&w);
        let windows = vec![w; 16];
        let acc = t.search_batch(&windows, |_, _, _| {});
        // Every window is the same, so the group descends each shared node
        // exactly once: unique == one scalar descent.
        assert_eq!(acc.unique, scalar_io);
        assert!(acc.per_window.iter().all(|&io| io == scalar_io));
    }

    #[test]
    fn batch_io_counter_uses_logical_total() {
        let t = grid_tree(Variant::RStar);
        t.reset_io();
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([9.0, 9.0]));
        let acc = t.search_batch(&[w, w, w], |_, _, _| {});
        assert_eq!(t.io_count(), acc.logical_total());
    }

    #[test]
    fn batch_handles_more_than_64_windows() {
        let t = grid_tree(Variant::RStar);
        let windows: Vec<Rect2> = (0..150)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                Rect2::new(Point2::new([x, y]), Point2::new([x + 1.5, y + 1.5]))
            })
            .collect();
        let mut batch_counts = vec![0usize; windows.len()];
        let acc = t.search_batch(&windows, |w, _, _| batch_counts[w] += 1);
        for (w, window) in windows.iter().enumerate() {
            let (n, io) = t.count_in(window);
            assert_eq!(batch_counts[w], n, "window {w} count");
            assert_eq!(acc.per_window[w], io, "window {w} accesses");
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let t = grid_tree(Variant::RStar);
        t.reset_io();
        let acc = t.search_batch(&[], |_, _, _| {});
        assert!(acc.per_window.is_empty());
        assert_eq!(acc.unique, 0);
        assert_eq!(t.io_count(), 0);
    }
}
