//! Deletion with tree condensation.
//!
//! Follows Guttman's Delete/CondenseTree: the leaf entry is located by
//! rectangle + item equality, removed, and any node left underfull on the
//! path is dissolved — its remaining items are collected and re-inserted,
//! and its arena slots are recycled through the free list. When the root
//! becomes a single-child internal node the tree shrinks.

use crate::node::{Arena, NodeKind};
use crate::RTree;
use mar_geom::Rect;

impl<const N: usize, T: PartialEq> RTree<N, T> {
    /// Removes one entry matching `rect` (exactly) and `item` (by
    /// equality). Returns the removed item, or `None` when no such entry
    /// exists.
    pub fn remove(&mut self, rect: &Rect<N>, item: &T) -> Option<T> {
        let mut orphans: Vec<(Rect<N>, T)> = Vec::new();
        let removed = remove_rec(
            &mut self.arena,
            self.root,
            rect,
            item,
            &mut orphans,
            &self.config,
        )?;
        self.len -= 1;
        // Shrink the root while it is an internal node with one child.
        loop {
            let shrink = match self.arena.node_mut(self.root) {
                NodeKind::Internal(node) if node.len() == 1 => {
                    // mar-lint: allow(D004) — `node.len() == 1` matched above
                    Some(node.pop().expect("single child").child)
                }
                _ => None,
            };
            match shrink {
                Some(child) => {
                    self.arena.release(self.root);
                    self.root = child;
                    self.height -= 1;
                }
                None => break,
            }
        }
        // Re-insert orphaned items (len is restored by insert).
        self.len -= orphans.len();
        for (r, it) in orphans {
            self.insert(r, it);
        }
        Some(removed)
    }

    /// Removes every entry whose rectangle intersects `window` and
    /// satisfies `pred`, returning the removed items. Implemented as
    /// repeated single deletions to reuse the condensation logic (deletion
    /// is not on any experiment's hot path).
    pub fn remove_where(
        &mut self,
        window: &Rect<N>,
        mut pred: impl FnMut(&Rect<N>, &T) -> bool,
    ) -> Vec<(Rect<N>, T)>
    where
        T: Clone,
    {
        let mut victims: Vec<(Rect<N>, T)> = Vec::new();
        self.search(window, |r, t| {
            if pred(&r, t) {
                victims.push((r, t.clone()));
            }
        });
        let mut out = Vec::with_capacity(victims.len());
        for (r, t) in victims {
            if let Some(item) = self.remove(&r, &t) {
                out.push((r, item));
            }
        }
        out
    }
}

fn remove_rec<const N: usize, T: PartialEq>(
    arena: &mut Arena<N, T>,
    node: u32,
    rect: &Rect<N>,
    item: &T,
    orphans: &mut Vec<(Rect<N>, T)>,
    config: &crate::RTreeConfig,
) -> Option<T> {
    if arena.is_leaf(node) {
        let leaf = match arena.node_mut(node) {
            NodeKind::Leaf(leaf) => leaf,
            _ => unreachable!("is_leaf checked above"),
        };
        let pos =
            (0..leaf.len()).find(|&i| rects_match(&leaf.rect(i), rect) && leaf.item(i) == item)?;
        // Order-preserving removal: the surviving entries keep their
        // relative order exactly as `Vec::remove` kept it in AoS storage.
        return Some(leaf.remove(pos).item);
    }
    let mut removed = None;
    let mut touched = 0usize;
    let count = arena.internal(node).len();
    for i in 0..count {
        let (e_rect, e_child) = {
            let inode = arena.internal(node);
            (inode.rect(i), inode.child(i))
        };
        if e_rect.contains_rect(rect) || e_rect.intersects(rect) {
            if let Some(it) = remove_rec(arena, e_child, rect, item, orphans, config) {
                removed = Some(it);
                touched = i;
                break;
            }
        }
    }
    let removed = removed?;
    let child = arena.internal(node).child(touched);
    if arena.entry_count(child) < config.min_entries {
        // Dissolve the underfull child; orphan its leaf items.
        arena.internal_mut(node).remove(touched);
        collect_items(arena, child, orphans);
    } else {
        let child_mbr = arena
            .mbr(child)
            // mar-lint: allow(D004) — child holds ≥ min_entries per the branch above
            .expect("non-empty child");
        arena.internal_mut(node).set_rect(touched, &child_mbr);
    }
    Some(removed)
}

/// Collects every leaf item of a subtree, recycling its arena slots.
fn collect_items<const N: usize, T>(
    arena: &mut Arena<N, T>,
    node: u32,
    out: &mut Vec<(Rect<N>, T)>,
) {
    match arena.take(node) {
        NodeKind::Leaf(leaf) => {
            out.extend(leaf.into_entries().into_iter().map(|e| (e.rect, e.item)));
        }
        NodeKind::Internal(inode) => {
            for &child in inode.children() {
                collect_items(arena, child, out);
            }
        }
        NodeKind::Free => {}
    }
}

fn rects_match<const N: usize>(a: &Rect<N>, b: &Rect<N>) -> bool {
    (0..N).all(|i| a.lo[i] == b.lo[i] && a.hi[i] == b.hi[i])
}

#[cfg(test)]
mod tests {
    use crate::{RTree, RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn build(n: usize) -> RTree<2, usize> {
        let mut t = RTree::new(RTreeConfig::new(6, Variant::RStar));
        for i in 0..n {
            t.insert(pt((i % 31) as f64, (i / 31) as f64), i);
        }
        t
    }

    #[test]
    fn remove_existing_item() {
        let mut t = build(100);
        let r = pt(5.0, 0.0);
        assert_eq!(t.remove(&r, &5), Some(5));
        assert_eq!(t.len(), 99);
        t.validate().expect("valid after remove");
        let (found, _) = t.query(&r);
        assert!(!found.contains(&&5));
    }

    #[test]
    fn remove_missing_item_is_none() {
        let mut t = build(50);
        assert_eq!(t.remove(&pt(999.0, 999.0), &1), None);
        assert_eq!(t.remove(&pt(5.0, 0.0), &9999), None);
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn remove_everything_one_by_one() {
        let mut t = build(300);
        for i in 0..300 {
            let r = pt((i % 31) as f64, (i / 31) as f64);
            assert_eq!(t.remove(&r, &i), Some(i), "failed to remove {i}");
            t.validate()
                .unwrap_or_else(|e| panic!("invalid after removing {i}: {e}"));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn tree_shrinks_after_mass_deletion() {
        let mut t = build(500);
        let h_before = t.height();
        for i in 0..450 {
            let r = pt((i % 31) as f64, (i / 31) as f64);
            t.remove(&r, &i);
        }
        assert!(t.height() <= h_before);
        assert_eq!(t.len(), 50);
        t.validate().expect("valid");
        // Remaining items still findable.
        let (found, _) = t.query(&Rect2::new(
            Point2::new([0.0, 0.0]),
            Point2::new([31.0, 31.0]),
        ));
        assert_eq!(found.len(), 50);
    }

    #[test]
    fn remove_where_bulk() {
        let mut t = build(200);
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([10.0, 10.0]));
        let removed = t.remove_where(&w, |_, &i| i % 2 == 0);
        assert!(!removed.is_empty());
        t.validate().expect("valid");
        let (left, _) = t.query(&w);
        assert!(left.iter().all(|&&i| i % 2 == 1));
    }

    #[test]
    fn duplicate_items_removed_one_at_a_time() {
        let mut t: RTree<2, u8> = RTree::new(RTreeConfig::new(4, Variant::Guttman));
        for _ in 0..5 {
            t.insert(pt(1.0, 1.0), 7);
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.remove(&pt(1.0, 1.0), &7), Some(7));
        assert_eq!(t.len(), 4);
        t.validate().expect("valid");
    }

    #[test]
    fn deletion_recycles_arena_slots() {
        // Insert/delete churn must not grow the arena without bound: after
        // deleting most items the number of live nodes shrinks, and the
        // freed slots are reused by subsequent inserts (validated by the
        // leak check inside `validate`).
        let mut t = build(400);
        for i in 0..380 {
            let r = pt((i % 31) as f64, (i / 31) as f64);
            assert_eq!(t.remove(&r, &i), Some(i));
        }
        t.validate().expect("valid after churn");
        for i in 0..380 {
            t.insert(pt((i % 31) as f64, (i / 31) as f64), i);
        }
        t.validate().expect("valid after refill");
        assert_eq!(t.len(), 400);
    }
}
