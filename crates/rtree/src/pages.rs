//! Fixed-stride page images of an arena tree (the out-of-core format).
//!
//! [`RTree::export_pages`] serializes every node into a self-contained
//! little-endian page payload, numbering nodes breadth-first from the
//! root (**page 0**), so internal entries reference children by page id
//! rather than arena slot. The images slot directly into `mar-store`'s
//! fixed-size page file; [`NodePage`] is the zero-copy decoder the paged
//! descent reads them back through.
//!
//! Page payload layout (all integers little-endian):
//!
//! ```text
//! [0]       node kind: 1 = leaf, 2 = internal
//! [1]       zero padding
//! [2..4)    entry count `len` (u16)
//! [4..8)    reserved, zero
//! [8..)     len × 2N f64: entry i's lo[0..N] then hi[0..N]
//! then      internal: len × u32 child page ids
//!           leaf:     len × item_size bytes (caller-encoded items)
//! ```
//!
//! The paper's page geometry (4 KB pages, capacity 20, `N = 3`) needs
//! `8 + 20·48 + 20·8 = 1128` bytes — comfortably inside one page.

use crate::node::NodeKind;
use crate::RTree;
use mar_geom::{Point, Rect};
use std::collections::VecDeque;

/// Byte offset where the rectangle lanes start.
const HEADER: usize = 8;
const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

/// Result of [`RTree::export_pages`]: one payload and one MBR per page,
/// indexed by page id (root = page 0, breadth-first).
#[derive(Debug, Clone)]
pub struct PageExport<const N: usize> {
    /// Serialized page payloads.
    pub pages: Vec<Vec<u8>>,
    /// MBR of each page's subtree — the geometry the motion-aware cache
    /// maps to heat. An empty root exports a degenerate rect at the
    /// origin.
    pub regions: Vec<Rect<N>>,
}

impl<const N: usize, T> RTree<N, T> {
    /// Serializes the tree into fixed-stride page images, breadth-first
    /// from the root (page 0). `encode_item` appends exactly `item_size`
    /// bytes per leaf item (checked per entry).
    pub fn export_pages(
        &self,
        item_size: usize,
        mut encode_item: impl FnMut(&T, &mut Vec<u8>),
    ) -> PageExport<N> {
        // First pass: BFS numbering of arena slots.
        let mut order: Vec<u32> = Vec::new();
        let mut page_of: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        queue.push_back(self.root);
        page_of.insert(self.root, 0);
        while let Some(slot) = queue.pop_front() {
            order.push(slot);
            if let NodeKind::Internal(node) = self.arena.node(slot) {
                for &child in node.children() {
                    let id = page_of.len() as u32;
                    page_of.insert(child, id);
                    queue.push_back(child);
                }
            }
        }
        // Second pass: serialize each node in page-id order.
        let mut pages = Vec::with_capacity(order.len());
        let mut regions = Vec::with_capacity(order.len());
        for &slot in &order {
            let mut buf: Vec<u8> = Vec::new();
            match self.arena.node(slot) {
                NodeKind::Leaf(node) => {
                    write_header(&mut buf, KIND_LEAF, node.len());
                    for i in 0..node.len() {
                        write_rect(&mut buf, &node.rect(i));
                    }
                    for i in 0..node.len() {
                        let before = buf.len();
                        encode_item(node.item(i), &mut buf);
                        assert_eq!(
                            buf.len() - before,
                            item_size,
                            "encode_item must append exactly item_size bytes"
                        );
                    }
                }
                NodeKind::Internal(node) => {
                    write_header(&mut buf, KIND_INTERNAL, node.len());
                    for i in 0..node.len() {
                        write_rect(&mut buf, &node.rect(i));
                    }
                    for i in 0..node.len() {
                        // BFS numbered every reachable child above.
                        let id = page_of.get(&node.child(i)).copied().unwrap_or(u32::MAX);
                        buf.extend_from_slice(&id.to_le_bytes());
                    }
                }
                NodeKind::Free => {
                    // Free slots are unreachable from the root; BFS never
                    // enqueues one.
                }
            }
            regions.push(
                self.arena
                    .mbr(slot)
                    .unwrap_or_else(|| Rect::point(Point::new([0.0; N]))),
            );
            pages.push(buf);
        }
        PageExport { pages, regions }
    }
}

fn write_header(buf: &mut Vec<u8>, kind: u8, len: usize) {
    buf.push(kind);
    buf.push(0);
    buf.extend_from_slice(&(len as u16).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]);
}

fn write_rect<const N: usize>(buf: &mut Vec<u8>, r: &Rect<N>) {
    for d in 0..N {
        buf.extend_from_slice(&r.lo[d].to_le_bytes());
    }
    for d in 0..N {
        buf.extend_from_slice(&r.hi[d].to_le_bytes());
    }
}

/// Kind of a decoded node page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagedNodeKind {
    /// Leaf page: entries carry items.
    Leaf,
    /// Internal page: entries carry child page ids.
    Internal,
}

/// Zero-copy view of one exported node page.
#[derive(Debug, Clone, Copy)]
pub struct NodePage<'a, const N: usize> {
    bytes: &'a [u8],
    kind: PagedNodeKind,
    len: usize,
    item_size: usize,
}

fn read_f64(b: &[u8], o: usize) -> f64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[o..o + 8]);
    f64::from_le_bytes(a)
}

fn read_u32(b: &[u8], o: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[o..o + 4]);
    u32::from_le_bytes(a)
}

impl<'a, const N: usize> NodePage<'a, N> {
    /// Parses a page payload, validating the header and that every
    /// entry's rect and payload lie inside `bytes`. `item_size` is the
    /// per-item byte width leaf pages were exported with (ignored for
    /// internal pages). Returns `None` on any structural mismatch.
    pub fn parse(bytes: &'a [u8], item_size: usize) -> Option<Self> {
        if bytes.len() < HEADER {
            return None;
        }
        let kind = match bytes[0] {
            KIND_LEAF => PagedNodeKind::Leaf,
            KIND_INTERNAL => PagedNodeKind::Internal,
            _ => return None,
        };
        let len = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        let entry_size = match kind {
            PagedNodeKind::Leaf => item_size,
            PagedNodeKind::Internal => 4,
        };
        let need = HEADER + len * (16 * N) + len * entry_size;
        if bytes.len() < need {
            return None;
        }
        Some(Self {
            bytes,
            kind,
            len,
            item_size,
        })
    }

    /// The page's node kind.
    pub fn kind(&self) -> PagedNodeKind {
        self.kind
    }

    /// Entries stored in the page.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the page holds no entries (an empty root leaf).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entry `i`'s rectangle.
    pub fn rect(&self, i: usize) -> Rect<N> {
        debug_assert!(i < self.len);
        let o = HEADER + i * 16 * N;
        Rect::from_corners(
            Point::new(std::array::from_fn(|d| read_f64(self.bytes, o + 8 * d))),
            Point::new(std::array::from_fn(|d| {
                read_f64(self.bytes, o + 8 * (N + d))
            })),
        )
    }

    /// Entry `i`'s child page id (internal pages only).
    pub fn child(&self, i: usize) -> u32 {
        debug_assert!(self.kind == PagedNodeKind::Internal && i < self.len);
        let o = HEADER + self.len * 16 * N + i * 4;
        read_u32(self.bytes, o)
    }

    /// Entry `i`'s encoded item bytes (leaf pages only).
    pub fn item_bytes(&self, i: usize) -> &'a [u8] {
        debug_assert!(self.kind == PagedNodeKind::Leaf && i < self.len);
        let o = HEADER + self.len * 16 * N + i * self.item_size;
        &self.bytes[o..o + self.item_size]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTreeConfig, Variant};
    use mar_geom::{Point2, Rect2};

    fn pt(x: f64, y: f64) -> Rect2 {
        Rect2::point(Point2::new([x, y]))
    }

    fn build(n: usize) -> RTree<2, u32> {
        let mut t = RTree::new(RTreeConfig::new(8, Variant::RStar));
        for i in 0..n {
            let x = (i % 23) as f64;
            let y = (i * 7 % 19) as f64;
            t.insert(pt(x, y), i as u32);
        }
        t
    }

    fn export(t: &RTree<2, u32>) -> PageExport<2> {
        t.export_pages(4, |item, buf| buf.extend_from_slice(&item.to_le_bytes()))
    }

    /// Scalar descent over decoded pages, mirroring `RTree::search`.
    fn paged_search(pages: &[Vec<u8>], window: &Rect2) -> (Vec<u32>, u64) {
        let mut hits = Vec::new();
        let mut accesses = 0u64;
        let mut stack = vec![0u32];
        while let Some(id) = stack.pop() {
            accesses += 1;
            let page = NodePage::<2>::parse(&pages[id as usize], 4).expect("valid page");
            match page.kind() {
                PagedNodeKind::Leaf => {
                    for i in 0..page.len() {
                        if page.rect(i).intersects(window) {
                            let b = page.item_bytes(i);
                            hits.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                        }
                    }
                }
                PagedNodeKind::Internal => {
                    for i in 0..page.len() {
                        if page.rect(i).intersects(window) {
                            stack.push(page.child(i));
                        }
                    }
                }
            }
        }
        (hits, accesses)
    }

    #[test]
    fn root_is_page_zero_and_count_matches() {
        let t = build(300);
        let ex = export(&t);
        assert_eq!(ex.pages.len(), t.node_count());
        assert_eq!(ex.regions.len(), ex.pages.len());
        let root = NodePage::<2>::parse(&ex.pages[0], 4).expect("root page");
        if t.height() > 1 {
            assert_eq!(root.kind(), PagedNodeKind::Internal);
        }
    }

    #[test]
    fn paged_search_matches_in_ram_search() {
        let t = build(500);
        let ex = export(&t);
        for window in [
            Rect2::new(Point2::new([2.0, 3.0]), Point2::new([9.0, 11.0])),
            Rect2::point(Point2::new([4.0, 9.0])),
            Rect2::new(Point2::new([-5.0, -5.0]), Point2::new([50.0, 50.0])),
            Rect2::new(Point2::new([100.0, 100.0]), Point2::new([110.0, 110.0])),
        ] {
            let mut ram: Vec<u32> = Vec::new();
            let io = t.search(&window, |_, &item| ram.push(item));
            let (mut paged, accesses) = paged_search(&ex.pages, &window);
            ram.sort_unstable();
            paged.sort_unstable();
            assert_eq!(paged, ram, "hit set for {window:?}");
            assert_eq!(accesses, io, "node accesses for {window:?}");
        }
    }

    #[test]
    fn regions_cover_their_subtrees() {
        let t = build(200);
        let ex = export(&t);
        // Page 0's region is the tree's bounding rect.
        let root_mbr = t.bounding_rect().expect("non-empty");
        assert_eq!(ex.regions[0].lo, root_mbr.lo);
        assert_eq!(ex.regions[0].hi, root_mbr.hi);
    }

    #[test]
    fn empty_tree_exports_one_empty_leaf() {
        let t: RTree<2, u32> = RTree::new(RTreeConfig::paper());
        let ex = export(&t);
        assert_eq!(ex.pages.len(), 1);
        let page = NodePage::<2>::parse(&ex.pages[0], 4).expect("page");
        assert_eq!(page.kind(), PagedNodeKind::Leaf);
        assert!(page.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(NodePage::<2>::parse(&[], 4).is_none());
        assert!(NodePage::<2>::parse(&[9, 0, 0, 0, 0, 0, 0, 0], 4).is_none());
        // Truncated: claims 3 entries but has no lane bytes.
        assert!(NodePage::<2>::parse(&[1, 0, 3, 0, 0, 0, 0, 0], 4).is_none());
    }
}
