//! The serving layer's concurrency contract (DESIGN.md §10): K sessions
//! driven concurrently from K threads against one shared `Server` must
//! observe exactly what they observe when replayed one at a time against
//! a fresh server. Session filter state is keyed per session, the index
//! is immutable and shared, so interleaving must be unobservable.

use mar_core::{IncrementalClient, LinearSpeedMap, QueryRegion, QueryResult, Server, SessionError};
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use mar_workload::{Scene, SceneConfig};

const SESSIONS: usize = 8;
const TICKS: usize = 25;

fn server() -> Server {
    let mut cfg = SceneConfig::paper(24, 33);
    cfg.levels = 3;
    cfg.target_bytes = 1_000_000.0;
    Server::new(&Scene::generate(cfg))
}

/// Session `k`'s deterministic tour: a diagonal drift across the space,
/// phase-shifted per session so the sessions touch overlapping but
/// distinct regions, at a per-session speed.
fn frame(k: usize, tick: usize) -> Rect2 {
    // Wrap so every session stays inside the 1000×1000 space for the
    // whole replay.
    let x = (40.0 * k as f64 + 18.0 * tick as f64) % 600.0;
    let y = (25.0 * k as f64 + 12.0 * tick as f64) % 600.0;
    Rect2::new(Point2::new([x, y]), Point2::new([x + 400.0, y + 400.0]))
}

fn speed(k: usize, tick: usize) -> f64 {
    [0.1, 0.3, 0.5, 0.7, 0.9][(k + tick) % 5]
}

/// Drives one session for `TICKS` ticks and returns its per-tick results.
fn drive(server: &Server, k: usize) -> Vec<QueryResult> {
    let mut client = IncrementalClient::connect(server, LinearSpeedMap);
    (0..TICKS)
        .map(|t| client.tick(server, frame(k, t), speed(k, t)))
        .collect()
}

#[test]
fn concurrent_sessions_match_serial_replay() {
    // Reference: one session at a time, fresh server.
    let reference: Vec<Vec<QueryResult>> = {
        let srv = server();
        (0..SESSIONS).map(|k| drive(&srv, k)).collect()
    };

    // Concurrent: all sessions at once on one shared server, each from
    // its own thread.
    let srv = server();
    let concurrent: Vec<Vec<QueryResult>> = std::thread::scope(|scope| {
        let srv = &srv;
        let handles: Vec<_> = (0..SESSIONS)
            .map(|k| scope.spawn(move || drive(srv, k)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });

    assert_eq!(reference.len(), concurrent.len());
    for (k, (want, got)) in reference.iter().zip(&concurrent).enumerate() {
        assert_eq!(
            want, got,
            "session {k}: concurrent results differ from serial replay"
        );
    }
    // Every session retrieved something, so the comparison is not vacuous.
    for (k, results) in concurrent.iter().enumerate() {
        let bytes: f64 = results.iter().map(|r| r.bytes).sum();
        assert!(bytes > 0.0, "session {k} retrieved nothing");
    }
}

#[test]
fn concurrent_churn_leaves_no_filter_state() {
    // Sessions connect, query, and disconnect concurrently; afterwards the
    // server must hold zero resident filter entries.
    let srv = server();
    std::thread::scope(|scope| {
        for k in 0..SESSIONS {
            let srv = &srv;
            scope.spawn(move || {
                for round in 0..3 {
                    let mut client = IncrementalClient::connect(srv, LinearSpeedMap);
                    for t in 0..5 {
                        client.tick(srv, frame(k, round * 5 + t), speed(k, t));
                    }
                    srv.disconnect(client.session())
                        .expect("session was connected above");
                }
            });
        }
    });
    assert_eq!(srv.session_count(), 0);
    assert_eq!(
        srv.resident_filter_entries(),
        0,
        "disconnect must release per-session filter state"
    );
}

#[test]
fn stale_session_ids_error_instead_of_panicking() {
    // A client that raced a disconnect (or resumed with a token the server
    // already evicted) must get a typed error back — never a panic, never
    // freshly minted state.
    let srv = server();
    let live = srv.connect();
    // The token must be fetched while the session is live; after the
    // disconnect both the session and its capability are gone.
    let stale_token = srv.session_token(live).expect("session is live");
    srv.disconnect(live).expect("just connected");
    let stale = live;
    let region = QueryRegion {
        region: frame(0, 0),
        band: ResolutionBand::FULL,
    };
    assert_eq!(
        srv.query(stale, &[region]),
        Err(SessionError::UnknownSession(stale))
    );
    assert_eq!(
        srv.fetch_block(stale, &frame(0, 0), ResolutionBand::FULL),
        Err(SessionError::UnknownSession(stale))
    );
    assert_eq!(
        srv.disconnect(stale),
        Err(SessionError::UnknownSession(stale))
    );
    assert_eq!(
        srv.session_token(stale),
        Err(SessionError::UnknownSession(stale)),
        "a disconnected session has no token to look up"
    );
    assert_eq!(
        srv.resume(stale_token),
        Err(SessionError::UnknownToken(stale_token))
    );
    assert_eq!(
        srv.resume(stale),
        Err(SessionError::UnknownToken(stale)),
        "a raw session id is not a resume token"
    );
    assert_eq!(srv.session_count(), 0, "error paths must not mint sessions");
    assert_eq!(srv.resident_filter_entries(), 0);
    // The errors carry the offending id/token and render them.
    let msg = SessionError::UnknownSession(stale).to_string();
    assert!(msg.contains(&stale.to_string()));
    let msg = SessionError::UnknownToken(stale_token).to_string();
    assert!(msg.contains(&format!("{stale_token:#018x}")));
}

#[test]
fn concurrent_resume_and_query_agree_with_serial() {
    // Transport drops mid-tour are harmless to the server: resuming the
    // token from any thread reports the retained filter and repeat queries
    // send nothing, even while other sessions churn.
    let srv = server();
    let concurrent: Vec<Vec<QueryResult>> = std::thread::scope(|scope| {
        let srv = &srv;
        let handles: Vec<_> = (0..SESSIONS)
            .map(|k| {
                scope.spawn(move || {
                    let mut client = IncrementalClient::connect(srv, LinearSpeedMap);
                    (0..TICKS)
                        .map(|t| {
                            let r = client.tick(srv, frame(k, t), speed(k, t));
                            // Simulated drop + resume between every tick.
                            let token = srv
                                .session_token(client.session())
                                .expect("session is live");
                            let info = srv.resume(token).expect("session is live");
                            assert_eq!(info.session, client.session());
                            assert_eq!(info.retained_coeffs, srv.session_sent(client.session()));
                            r
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    assert_eq!(
        srv.session_count(),
        SESSIONS,
        "resume must not mint sessions"
    );
    // Interleaved resumes are unobservable: results equal the serial replay.
    let fresh = server();
    for (k, got) in concurrent.iter().enumerate() {
        let want = drive(&fresh, k);
        assert_eq!(&want, got, "session {k}: resume changed what was sent");
        assert!(want.iter().map(|r| r.coeffs).sum::<usize>() > 0, "vacuous");
    }
}
