//! The disk-backed server answers byte-identically to the in-RAM one —
//! the tentpole guarantee of the out-of-core backend: same coefficients,
//! same `f64` byte totals, same logical I/O, under a buffer pool dozens
//! of times smaller than the store file.

use mar_core::server::{QueryRegion, Server, ServerCore};
use mar_core::{CachePolicy, SceneIndexData, WaveletIndex};
use mar_geom::{Point2, Rect2};
use mar_mesh::ResolutionBand;
use mar_workload::{Scene, SceneConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mar-core-paged-server-tests");
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(format!(
        "{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn scene() -> Scene {
    let mut cfg = SceneConfig::paper(8, 17);
    cfg.levels = 3;
    cfg.target_bytes = 2_000_000.0;
    Scene::generate(cfg)
}

/// A small touring workload: each session's window walks a diagonal.
fn tour(session: usize, tick: usize) -> Vec<QueryRegion> {
    let x = 40.0 * session as f64 + 12.0 * tick as f64;
    let y = 25.0 * session as f64 + 9.0 * tick as f64;
    vec![
        QueryRegion {
            region: Rect2::new(Point2::new([x, y]), Point2::new([x + 220.0, y + 180.0])),
            band: ResolutionBand::FULL,
        },
        QueryRegion {
            region: Rect2::new(Point2::new([x, y]), Point2::new([x + 420.0, y + 340.0])),
            band: ResolutionBand::new(0.4, 1.0),
        },
    ]
}

fn run_workload(server: &Server) -> Vec<(usize, usize, mar_core::server::QueryResult)> {
    let sessions: Vec<u64> = (0..4).map(|_| server.connect()).collect();
    let mut log = Vec::new();
    for tick in 0..12 {
        for (s, &c) in sessions.iter().enumerate() {
            let r = server.query(c, &tour(s, tick)).expect("query");
            log.push((s, tick, r));
        }
    }
    // And a few block fetches (the buffered-client path).
    let block = Rect2::new(Point2::new([300.0, 300.0]), Point2::new([520.0, 480.0]));
    for (s, &c) in sessions.iter().enumerate() {
        let r = server
            .fetch_block(c, &block, ResolutionBand::new(0.2, 1.0))
            .expect("fetch");
        log.push((s, 999, r));
    }
    for &c in &sessions {
        server.disconnect(c).expect("disconnect");
    }
    log
}

#[test]
fn paged_server_is_byte_identical_to_ram_server() {
    let sc = scene();
    let ram = Server::new(&sc);
    for policy in [CachePolicy::Lru, CachePolicy::MotionAware] {
        let path = tmp(&format!("{}.pages", policy.name()));
        // A deliberately starved pool: 2 pages (8 KiB).
        let budget = 2 * 4096;
        let core = ServerCore::new_paged(&sc, &path, budget, policy).expect("paged core");
        let file_bytes = core.index().paged().expect("paged").file_bytes();
        assert!(
            file_bytes >= 50 * budget as u64,
            "store must dwarf the pool: {file_bytes} vs budget {budget}"
        );
        let paged = Server::from_core(core);
        let want = run_workload(&ram);
        let got = run_workload(&paged);
        // QueryResult derives PartialEq over usize/f64/u64 — equality here
        // is bit-for-bit on the byte totals.
        assert_eq!(got, want, "policy {}", policy.name());
        let stats = paged.index().cache_stats().expect("paged index has a pool");
        assert!(stats.faults > 0, "a starved pool must fault");
        assert!(stats.evictions > 0 || stats.bypasses > 0);
        assert_eq!(
            paged.index().io_snapshot().physical,
            stats.faults,
            "every pool miss is a physical access"
        );
    }
}

#[test]
fn paged_batch_query_matches_scalar_across_backends() {
    let sc = scene();
    let path = tmp("batch.pages");
    let core =
        ServerCore::new_paged(&sc, &path, 16 * 4096, CachePolicy::MotionAware).expect("paged core");
    let batched = Server::from_core(core);
    let scalar = Server::new(&sc);
    let sa: Vec<u64> = (0..5).map(|_| scalar.connect()).collect();
    let sb: Vec<u64> = (0..5).map(|_| batched.connect()).collect();
    for tick in 0..6 {
        let regions: Vec<Vec<QueryRegion>> = (0..5).map(|s| tour(s, tick)).collect();
        let want: Vec<_> = sa
            .iter()
            .enumerate()
            .map(|(s, &c)| scalar.query(c, &regions[s]).expect("scalar"))
            .collect();
        let batch: Vec<(u64, &[QueryRegion])> = sb
            .iter()
            .enumerate()
            .map(|(s, &c)| (c, regions[s].as_slice()))
            .collect();
        let (got, unique) = batched.query_batch(&batch);
        assert!(unique > 0);
        for (s, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.as_ref().expect("ok"), w, "tick {tick} session {s}");
        }
    }
}

#[test]
fn disconnect_clears_motion_state() {
    let sc = scene();
    let path = tmp("motion.pages");
    let core = ServerCore::new_paged(&sc, &path, 8 * 4096, CachePolicy::MotionAware).expect("core");
    let server = Server::from_core(core);
    let c = server.connect();
    server.query(c, &tour(0, 0)).expect("query");
    server.query(c, &tour(0, 1)).expect("query");
    let paged = server.index().paged().expect("paged");
    assert_eq!(paged.motion_sessions(), 1);
    server.disconnect(c).expect("disconnect");
    assert_eq!(paged.motion_sessions(), 0);
}

#[test]
fn stale_store_round_trips_through_plain_open() {
    // `open_paged` consumes exactly what `write_store` produced — and the
    // WaveletIndex front door agrees with the raw index on everything.
    let sc = scene();
    let data = SceneIndexData::build(&sc);
    let ram = WaveletIndex::build(&data);
    let path = tmp("front.pages");
    mar_core::write_store_with(&path, &data, &ram).expect("write");
    let paged = WaveletIndex::open_paged(&path, 64 * 4096, CachePolicy::Lru).expect("open");
    assert!(paged.is_paged() && !ram.is_paged());
    assert_eq!(paged.len(), ram.len());
    assert_eq!(paged.node_count(), ram.node_count());
    assert!(paged.validate().is_ok());
    let region = Rect2::new(Point2::new([100.0, 100.0]), Point2::new([700.0, 650.0]));
    for band in [ResolutionBand::FULL, ResolutionBand::new(0.3, 0.8)] {
        let (hits_ram, io_ram) = ram.query(&region, band);
        let (hits_paged, io_paged) = paged.query(&region, band);
        assert_eq!(hits_paged, hits_ram);
        assert_eq!(io_paged, io_ram);
        let (n_ram, cio_ram) = ram.count_in(&region, band);
        let (n_paged, cio_paged) = paged.count_in(&region, band);
        assert_eq!((n_paged, cio_paged), (n_ram, cio_ram));
    }
}
