//! The efficient wavelet index (§VI-B).
//!
//! A 3-D R*-tree over `(x, y, w)`: the spatial dimensions hold the MBR of
//! each coefficient's **support region**, the third holds the coefficient's
//! (degenerate, point-valued) normalised magnitude. The experimental setup
//! of §VII-D — the paper implements exactly this "3D (x−y−w) R*-tree" with
//! 4 KB pages and node capacity 20.
//!
//! A window query `Q(R, w_max, w_min)` lifts `R` by the band
//! `[w_min, w_max]` and runs a single tree search: because support regions
//! are indexed (not vertex positions), every coefficient that contributes
//! any detail inside `R` intersects the lifted window — no neighbour
//! chasing, no second pass, and by the §VI-B minimality argument nothing
//! retrieved can be dropped without losing detail inside `R`.

use crate::coeff::{CoeffRef, SceneIndexData};
use crate::paged::PagedIndex;
use mar_geom::{Point2, Rect2, Rect3};
use mar_mesh::ResolutionBand;
use mar_rtree::{BatchAccesses, IoSnapshot, RTree, RTreeConfig};
use mar_store::{CachePolicy, PageCacheStats, StoreError};
use std::path::Path;

/// Where the index's nodes live: the flat in-RAM arena, or a page file
/// read through the motion-aware buffer pool. Both backends run the same
/// descent algorithms, so query answers are byte-identical (pinned by
/// `crates/core/src/paged.rs` and the serve fingerprint tests).
#[derive(Debug)]
enum Backend {
    Ram(RTree<3, CoeffRef>),
    Paged(PagedIndex),
}

/// The support-region index.
#[derive(Debug)]
pub struct WaveletIndex {
    backend: Backend,
}

impl WaveletIndex {
    /// Bulk-loads the index from scene data with the paper's page
    /// geometry.
    pub fn build(data: &SceneIndexData) -> Self {
        Self::build_with(data, RTreeConfig::paper())
    }

    /// Bulk-loads with a custom tree configuration.
    pub fn build_with(data: &SceneIndexData, config: RTreeConfig) -> Self {
        Self {
            backend: Backend::Ram(RTree::bulk_load(config, Self::items(data))),
        }
    }

    /// Bulk-loads across up to `jobs` threads via the deterministic
    /// parallel STR loader — the produced tree is identical in shape to
    /// [`WaveletIndex::build`] (see [`RTree::bulk_load_jobs`]).
    pub fn build_jobs(data: &SceneIndexData, jobs: usize) -> Self {
        Self {
            backend: Backend::Ram(RTree::bulk_load_jobs(
                RTreeConfig::paper(),
                Self::items(data),
                jobs,
            )),
        }
    }

    fn items(data: &SceneIndexData) -> Vec<(Rect3, CoeffRef)> {
        data.records
            .iter()
            .map(|r| (r.support_xy.lift(r.w, r.w), r.id))
            .collect()
    }

    /// Wraps an externally built tree (e.g. one filled by incremental
    /// insertion) — used by the index-construction ablation.
    pub fn from_tree(tree: RTree<3, CoeffRef>) -> Self {
        Self {
            backend: Backend::Ram(tree),
        }
    }

    /// Opens a disk-backed index over the store image at `path` (written
    /// by [`crate::store::write_store`]), reading node and payload pages
    /// through a buffer pool of `budget_bytes` with the given eviction
    /// policy. Query answers are byte-identical to the in-RAM build the
    /// store was exported from.
    pub fn open_paged(
        path: &Path,
        budget_bytes: usize,
        policy: CachePolicy,
    ) -> Result<Self, StoreError> {
        Ok(Self {
            backend: Backend::Paged(PagedIndex::open(path, budget_bytes, policy)?),
        })
    }

    /// True when this index reads pages from disk.
    pub fn is_paged(&self) -> bool {
        matches!(self.backend, Backend::Paged(_))
    }

    /// The in-RAM tree, when this index has one (store export needs it).
    pub(crate) fn ram_tree(&self) -> Option<&RTree<3, CoeffRef>> {
        match &self.backend {
            Backend::Ram(tree) => Some(tree),
            Backend::Paged(_) => None,
        }
    }

    /// The paged backend, when this index has one.
    pub fn paged(&self) -> Option<&PagedIndex> {
        match &self.backend {
            Backend::Ram(_) => None,
            Backend::Paged(p) => Some(p),
        }
    }

    /// Number of indexed coefficients.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Ram(tree) => tree.len(),
            Backend::Paged(p) => p.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tree nodes (pages).
    pub fn node_count(&self) -> usize {
        match &self.backend {
            Backend::Ram(tree) => tree.node_count(),
            Backend::Paged(p) => p.node_count(),
        }
    }

    /// Executes `Q(R, w_max, w_min)` as a visitor: `visit` is called once
    /// per matching coefficient, in index search order, without
    /// materialising a hit vector. Returns the node accesses (I/O).
    ///
    /// This is the single query path — [`WaveletIndex::query`] and
    /// [`WaveletIndex::count_in`] (and through them every server entry
    /// point, session-filtered or stateless) route here, so the answers
    /// cannot drift apart.
    pub fn for_each(
        &self,
        region: &Rect2,
        band: ResolutionBand,
        mut visit: impl FnMut(CoeffRef),
    ) -> u64 {
        let window: Rect3 = region.lift(band.w_min, band.w_max);
        match &self.backend {
            Backend::Ram(tree) => tree.search(&window, |_, id| visit(*id)),
            Backend::Paged(p) => p.for_each(&window, visit),
        }
    }

    /// Executes a batch of window queries in one grouped descent: every
    /// tree node shared by several of the `queries` is visited once
    /// physically, while the returned [`BatchAccesses`] still reports the
    /// per-query *logical* accesses — exactly what [`WaveletIndex::for_each`]
    /// would have counted query by query. `visit(q, id)` receives the
    /// query's index within `queries` plus the matching coefficient; for
    /// any single `q` the visit order equals the scalar search order.
    pub fn for_each_batch(
        &self,
        queries: &[(Rect2, ResolutionBand)],
        mut visit: impl FnMut(usize, CoeffRef),
    ) -> BatchAccesses {
        let windows: Vec<Rect3> = queries
            .iter()
            .map(|(region, band)| region.lift(band.w_min, band.w_max))
            .collect();
        match &self.backend {
            Backend::Ram(tree) => tree.search_batch(&windows, |q, _, id| visit(q, *id)),
            Backend::Paged(p) => p.for_each_batch(&windows, visit),
        }
    }

    /// Executes `Q(R, w_max, w_min)`: every coefficient whose support
    /// region intersects `region` and whose magnitude lies in `band`.
    /// Returns the hits and the node accesses (I/O).
    pub fn query(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        let mut hits = Vec::new();
        let io = self.for_each(region, band, |id| hits.push(id));
        (hits, io)
    }

    /// Counts the coefficients `Q(R, w_max, w_min)` would return without
    /// materialising them. Returns the count and the node accesses.
    ///
    /// Uses [`RTree::count_in`], the popcount fast path: the same descent
    /// and the same pruning kernel as [`WaveletIndex::for_each`] (so the
    /// I/O tally is identical), but leaf matches are counted straight off
    /// the test bitmask instead of being replayed one hit at a time.
    pub fn count_in(&self, region: &Rect2, band: ResolutionBand) -> (usize, u64) {
        let window: Rect3 = region.lift(band.w_min, band.w_max);
        match &self.backend {
            Backend::Ram(tree) => tree.count_in(&window),
            Backend::Paged(p) => p.count_in(&window),
        }
    }

    /// Cumulative I/O across queries (see [`mar_rtree::RTree::io_count`]).
    pub fn io_count(&self) -> u64 {
        match &self.backend {
            Backend::Ram(tree) => tree.io_count(),
            Backend::Paged(p) => p.io_count(),
        }
    }

    /// Snapshot of the logical / unique / physical access counters. The
    /// RAM backend never performs a physical read (`physical` stays 0).
    pub fn io_snapshot(&self) -> IoSnapshot {
        match &self.backend {
            Backend::Ram(tree) => tree.io_snapshot(),
            Backend::Paged(p) => p.io_snapshot(),
        }
    }

    /// Resets the cumulative I/O counters.
    pub fn reset_io(&self) {
        match &self.backend {
            Backend::Ram(tree) => tree.reset_io(),
            Backend::Paged(p) => p.reset_io(),
        }
    }

    /// Touches the payload page holding `id`'s coefficient record — the
    /// disk trip transmitting a hit performs. A no-op on the RAM backend,
    /// where payloads live in [`SceneIndexData`].
    pub fn touch_payload(&self, id: CoeffRef) {
        if let Backend::Paged(p) = &self.backend {
            p.touch_payload(id);
        }
    }

    /// Feeds a session's current window centre into the Eq. 2 heat field
    /// ranking the buffer pool. A no-op on the RAM backend.
    pub fn observe_motion(&self, session: u64, pos: Point2) {
        if let Backend::Paged(p) = &self.backend {
            p.observe_motion(session, pos);
        }
    }

    /// Drops a session's heat contribution. A no-op on the RAM backend.
    pub fn forget_motion(&self, session: u64) {
        if let Backend::Paged(p) = &self.backend {
            p.forget_motion(session);
        }
    }

    /// Buffer-pool counters, when this index reads through a pool.
    pub fn cache_stats(&self) -> Option<PageCacheStats> {
        self.paged().map(PagedIndex::cache_stats)
    }

    /// Validates the underlying backend (tests).
    pub fn validate(&self) -> Result<(), String> {
        match &self.backend {
            Backend::Ram(tree) => tree.validate(),
            Backend::Paged(p) => p.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn data() -> SceneIndexData {
        let mut cfg = SceneConfig::paper(6, 3);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        SceneIndexData::build(&Scene::generate(cfg))
    }

    fn brute(data: &SceneIndexData, region: &Rect2, band: ResolutionBand) -> Vec<CoeffRef> {
        let mut v: Vec<CoeffRef> = data
            .records
            .iter()
            .filter(|r| r.support_xy.intersects(region) && band.contains(r.w))
            .map(|r| r.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn index_holds_every_coefficient() {
        let d = data();
        let idx = WaveletIndex::build(&d);
        assert_eq!(idx.len(), d.len());
        idx.validate().expect("valid tree");
    }

    #[test]
    fn query_matches_bruteforce_over_bands_and_windows() {
        let d = data();
        let idx = WaveletIndex::build(&d);
        let windows = [
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
            Rect2::new(Point2::new([100.0, 100.0]), Point2::new([400.0, 350.0])),
            Rect2::new(Point2::new([700.0, 600.0]), Point2::new([760.0, 690.0])),
        ];
        let bands = [
            ResolutionBand::FULL,
            ResolutionBand::new(0.5, 1.0),
            ResolutionBand::new(0.2, 0.7),
            ResolutionBand::COARSEST,
        ];
        for w in &windows {
            for b in &bands {
                let (mut got, io) = idx.query(w, *b);
                got.sort_unstable();
                assert!(io >= 1);
                assert_eq!(got, brute(&d, w, *b), "window {w:?} band {b:?}");
            }
        }
    }

    #[test]
    fn narrower_bands_cost_less_io() {
        let d = data();
        let idx = WaveletIndex::build(&d);
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        let (_, io_full) = idx.query(&w, ResolutionBand::FULL);
        let (_, io_top) = idx.query(&w, ResolutionBand::COARSEST);
        assert!(
            io_top < io_full,
            "coarsest band {io_top} must beat full {io_full}"
        );
    }

    #[test]
    fn empty_region_returns_nothing() {
        let d = data();
        let idx = WaveletIndex::build(&d);
        let w = Rect2::new(Point2::new([-500.0, -500.0]), Point2::new([-400.0, -400.0]));
        let (got, _) = idx.query(&w, ResolutionBand::FULL);
        assert!(got.is_empty());
    }
}

/// The paper's complete §VI-B design: a **4-D** R*-tree over
/// `(x, y, z, w)` — the full 3-D MBB of each support region plus the
/// coefficient magnitude. The evaluation projects to `x-y-w` (see
/// [`WaveletIndex`]) because the experimental data space is a ground
/// plane; this variant serves true volumetric view frusta (a client
/// looking *up* at a building's interior needs the z extent).
#[derive(Debug)]
pub struct WaveletIndex4 {
    tree: RTree<4, CoeffRef>,
}

impl WaveletIndex4 {
    /// Bulk-loads the 4-D index with the paper's page geometry.
    pub fn build(data: &crate::coeff::SceneIndexData) -> Self {
        Self::build_with(data, RTreeConfig::paper())
    }

    /// Bulk-loads with a custom tree configuration.
    pub fn build_with(data: &crate::coeff::SceneIndexData, config: RTreeConfig) -> Self {
        let items: Vec<(mar_geom::Rect4, CoeffRef)> = data
            .records
            .iter()
            .map(|r| (r.support_xyz.lift(r.w, r.w), r.id))
            .collect();
        Self {
            tree: RTree::bulk_load(config, items),
        }
    }

    /// Number of indexed coefficients.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Executes `Q(R, w_max, w_min)` over a 3-D region of interest.
    pub fn query(&self, region: &mar_geom::Rect3, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        let window: mar_geom::Rect4 = region.lift(band.w_min, band.w_max);
        let mut hits = Vec::new();
        let io = self.tree.search(&window, |_, id| hits.push(*id));
        (hits, io)
    }

    /// Validates the underlying tree (tests).
    pub fn validate(&self) -> Result<(), String> {
        self.tree.validate()
    }
}

#[cfg(test)]
mod tests4 {
    use super::*;
    use crate::coeff::SceneIndexData;
    use mar_geom::{Point3, Rect3};
    use mar_workload::{Scene, SceneConfig};

    fn data() -> SceneIndexData {
        let mut cfg = SceneConfig::paper(6, 5);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        SceneIndexData::build(&Scene::generate(cfg))
    }

    #[test]
    fn four_d_index_matches_bruteforce() {
        let d = data();
        let idx = WaveletIndex4::build(&d);
        idx.validate().expect("valid tree");
        assert_eq!(idx.len(), d.len());
        let regions = [
            Rect3::new(
                Point3::new([0.0, 0.0, 0.0]),
                Point3::new([1000.0, 1000.0, 100.0]),
            ),
            Rect3::new(
                Point3::new([200.0, 200.0, 5.0]),
                Point3::new([600.0, 500.0, 20.0]),
            ),
        ];
        for region in &regions {
            for band in [ResolutionBand::FULL, ResolutionBand::new(0.4, 1.0)] {
                let (mut got, _) = idx.query(region, band);
                got.sort_unstable();
                let mut expect: Vec<CoeffRef> = d
                    .records
                    .iter()
                    .filter(|r| r.support_xyz.intersects(region) && band.contains(r.w))
                    .map(|r| r.id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "region {region:?} band {band:?}");
            }
        }
    }

    #[test]
    fn z_slab_filters_tall_objects() {
        // A thin slab near the ground excludes coefficients whose support
        // sits higher up a building — the capability the 3-D projection
        // cannot offer.
        let d = data();
        let idx = WaveletIndex4::build(&d);
        let ground = Rect3::new(
            Point3::new([0.0, 0.0, 0.0]),
            Point3::new([1000.0, 1000.0, 3.0]),
        );
        let everything = Rect3::new(
            Point3::new([0.0, 0.0, -100.0]),
            Point3::new([1000.0, 1000.0, 100.0]),
        );
        let (g, _) = idx.query(&ground, ResolutionBand::FULL);
        let (all, _) = idx.query(&everything, ResolutionBand::FULL);
        assert!(
            g.len() < all.len(),
            "ground slab {} vs all {}",
            g.len(),
            all.len()
        );
        assert_eq!(all.len(), d.len());
    }

    #[test]
    fn projection_is_superset_of_slab_queries() {
        // The 2-D (x-y-w) index answers the projected query; the 4-D index
        // restricted to the full z range must agree with it exactly.
        let d = data();
        let idx3 = crate::index::WaveletIndex::build(&d);
        let idx4 = WaveletIndex4::build(&d);
        let xy = mar_geom::Rect2::new(
            mar_geom::Point2::new([100.0, 100.0]),
            mar_geom::Point2::new([700.0, 700.0]),
        );
        let xyz = Rect3::new(
            Point3::new([100.0, 100.0, -1e6]),
            Point3::new([700.0, 700.0, 1e6]),
        );
        let band = ResolutionBand::new(0.2, 1.0);
        let (mut a, _) = idx3.query(&xy, band);
        let (mut b, _) = idx4.query(&xyz, band);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
