//! Measured quantities for every experiment family.

/// Per-tour aggregates of the incremental retrieval client (Figs. 8–9).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RetrievalMetrics {
    /// Ticks simulated.
    pub ticks: usize,
    /// Total payload bytes retrieved.
    pub bytes: f64,
    /// Total coefficients retrieved.
    pub coeffs: usize,
    /// Total index node accesses.
    pub io: u64,
    /// Per-tick bytes (for distribution-shape assertions).
    pub bytes_per_tick: Vec<f64>,
}

impl RetrievalMetrics {
    /// Mean bytes per query frame.
    pub fn mean_bytes(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.bytes / self.ticks as f64
        }
    }

    /// Mean index I/O per query frame.
    pub fn mean_io(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.io as f64 / self.ticks as f64
        }
    }
}

/// Buffer-management metrics (Figs. 10–11).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BufferMetrics {
    /// Frame-block lookups.
    pub lookups: u64,
    /// Cache hits among them.
    pub hits: u64,
    /// Blocks prefetched.
    pub prefetched: u64,
    /// Prefetched blocks later used.
    pub prefetched_used: u64,
    /// Bytes fetched on demand misses.
    pub demand_bytes: f64,
    /// Bytes spent prefetching.
    pub prefetch_bytes: f64,
    /// Blocks fetched at each local cache miss — the `N(j)` series of the
    /// §V-A cost model (Eq. 1): one entry per tick that contacted the
    /// server, holding the demand + prefetch block count of that contact.
    pub blocks_per_miss: Vec<u64>,
}

impl BufferMetrics {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Data utilization: used fraction of prefetched blocks.
    pub fn utilization(&self) -> f64 {
        if self.prefetched == 0 {
            1.0
        } else {
            self.prefetched_used as f64 / self.prefetched as f64
        }
    }

    /// Number of server contacts (the `M` of Eq. 1).
    pub fn miss_count(&self) -> u64 {
        self.blocks_per_miss.len() as u64
    }

    /// Evaluates the §V-A transfer cost model (Eq. 1,
    /// `C = Σⱼ C_c + C_t·B·N(j)`) over the recorded misses.
    pub fn eq1_cost(&self, model: &mar_link::TransferCostModel) -> f64 {
        model.query_cost(&self.blocks_per_miss)
    }
}

/// End-to-end system metrics (Figs. 14–15).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemMetrics {
    /// Ticks simulated.
    pub ticks: usize,
    /// Per-tick query response time (seconds; 0 when served locally).
    pub response_times: Vec<f64>,
    /// Total bytes over the wireless link.
    pub bytes: f64,
    /// Total server index I/O.
    pub io: u64,
    /// Total simulated time, advanced by `max(tick duration, response)`
    /// per frame — the wall-clock a user would experience.
    pub sim_time_s: f64,
    /// Frames whose response exceeded the tick duration (visible stalls).
    pub late_frames: usize,
}

impl SystemMetrics {
    /// Mean response time per query frame.
    pub fn mean_response(&self) -> f64 {
        if self.response_times.is_empty() {
            0.0
        } else {
            self.response_times.iter().sum::<f64>() / self.response_times.len() as f64
        }
    }

    /// Maximum single-frame response time.
    pub fn max_response(&self) -> f64 {
        self.response_times.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of frames that blew their deadline (visible stalls) —
    /// §I's "the results in the query window have to be retrieved at a
    /// high rate", as a number.
    pub fn late_frame_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.late_frames as f64 / self.ticks as f64
        }
    }

    /// The p-th percentile (0–100) of response times.
    pub fn percentile_response(&self, p: f64) -> f64 {
        if self.response_times.is_empty() {
            return 0.0;
        }
        let mut v = self.response_times.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieval_means() {
        let m = RetrievalMetrics {
            ticks: 4,
            bytes: 400.0,
            coeffs: 10,
            io: 8,
            bytes_per_tick: vec![100.0; 4],
        };
        assert_eq!(m.mean_bytes(), 100.0);
        assert_eq!(m.mean_io(), 2.0);
        assert_eq!(RetrievalMetrics::default().mean_bytes(), 0.0);
    }

    #[test]
    fn buffer_rates() {
        let m = BufferMetrics {
            lookups: 10,
            hits: 7,
            prefetched: 4,
            prefetched_used: 1,
            ..Default::default()
        };
        assert!((m.hit_rate() - 0.7).abs() < 1e-12);
        assert!((m.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(BufferMetrics::default().hit_rate(), 1.0);
    }

    #[test]
    fn system_percentiles() {
        let m = SystemMetrics {
            ticks: 5,
            response_times: vec![0.1, 0.5, 0.2, 0.4, 0.3],
            ..Default::default()
        };
        assert!((m.mean_response() - 0.3).abs() < 1e-12);
        assert_eq!(m.max_response(), 0.5);
        assert_eq!(m.percentile_response(0.0), 0.1);
        assert_eq!(m.percentile_response(100.0), 0.5);
        assert_eq!(m.percentile_response(50.0), 0.3);
    }

    #[test]
    fn late_frame_rate_accounting() {
        let m = SystemMetrics {
            ticks: 10,
            late_frames: 3,
            ..Default::default()
        };
        assert!((m.late_frame_rate() - 0.3).abs() < 1e-12);
        assert_eq!(SystemMetrics::default().late_frame_rate(), 0.0);
    }
}
