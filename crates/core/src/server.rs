//! The data server: scene + wavelet index + per-client sessions.
//!
//! §IV: "After retrieving the results for all the sub-queries, the server
//! filters the results to avoid transmitting the data that is already
//! available at the client." Each session remembers which coefficients
//! (and which objects' base meshes) a client has already received; query
//! results are filtered against that set before they are costed.
//!
//! # Concurrency model (DESIGN.md §10)
//!
//! The server is split into two layers so many clients can be served at
//! once (the paper's §III setting — "serving heavy traffic" of continuous
//! window queries):
//!
//! * [`ServerCore`] — the shared **immutable** half: `Arc<SceneIndexData>`
//!   plus `Arc<WaveletIndex>` (which carries the prebuilt `sorted_w`
//!   magnitude distribution inside the data). Every read path takes
//!   `&self` and is lock-free; index searches allocate nothing (the
//!   traversal stack is a thread-local scratch buffer in `mar-rtree`) and
//!   tally I/O through a relaxed atomic.
//! * per-session state, **striped**: sessions are sharded into
//!   [`SESSION_STRIPES`] independent `Mutex<BTreeMap<..>>` shards by
//!   `session_id % SESSION_STRIPES`, so concurrent clients only contend
//!   when they hash to the same stripe — never on one global map.
//!
//! `query`/`fetch_block` therefore take `&self`: a `&Server` can be shared
//! across scoped threads and each client's queries run concurrently.
//! Determinism is preserved because a session's filter state depends only
//! on that session's own query history (pinned by
//! `crates/core/tests/server_concurrent.rs`).

use crate::coeff::{CoeffRef, SceneIndexData};
use crate::index::WaveletIndex;
use mar_geom::Rect2;
use mar_mesh::ResolutionBand;
use mar_workload::Scene;
// mar-lint: allow(D001) — `HashSet` here backs the membership-only session
// filters below; their iteration order is never observed.
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of session shards. A fixed power of two keeps `id % N` cheap and
/// the shard choice deterministic; 16 stripes already make same-stripe
/// contention rare for the client counts the serve harness replays.
pub const SESSION_STRIPES: usize = 16;

/// Typed failure of a per-session server entry point. Unknown or
/// already-disconnected session ids are a *client protocol* condition (a
/// stale token after a crash, a double disconnect), not a server bug, so
/// they surface as values instead of panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The session id is not (or no longer) connected.
    UnknownSession(u64),
    /// The resume token does not name any connected session. The token is
    /// echoed verbatim — the server never reveals which session id (if
    /// any) a rejected token would have mapped to.
    UnknownToken(u64),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownSession(id) => write!(f, "unknown or disconnected session id {id}"),
            Self::UnknownToken(tok) => write!(f, "unknown resume token {tok:#018x}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Tokens are minted strictly above this floor, so a token can never
/// collide with a raw sequential session id (which would need 2^32
/// connects to reach the floor) — `resume` with a session id is
/// structurally guaranteed to fail, not just overwhelmingly likely to.
const TOKEN_FLOOR: u64 = 1 << 32;

/// `splitmix64`'s finalizing mix — the same discipline `mar_link::fault`
/// uses for its fault schedule. Used only to *expand a seed into a
/// SipHash key*, never to mint a token directly: the mix is a public
/// bijection, so a token minted as `mix64(seed ^ mix64(id))` would leak
/// the seed to any client that inverts its own `(id, token)` pair.
fn mix64(x: u64) -> u64 {
    let z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13) ^ v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16) ^ v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21) ^ v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17) ^ v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of one 64-bit word under a 128-bit key — a keyed PRF, not
/// a bijection: a peer holding any number of `(input, output)` pairs
/// cannot recover the key or predict other outputs. This is what makes
/// resume tokens capabilities rather than obfuscated session ids.
fn siphash24(k0: u64, k1: u64, msg: u64) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    // One full 8-byte block.
    v[3] ^= msg;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= msg;
    // Finalisation block: message length (8) in the top byte.
    let b = 8u64 << 56;
    v[3] ^= b;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= b;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// One word of per-process entropy for the default token key. Tokens are
/// security capabilities, not results: they never enter a transcript,
/// fingerprint, or metric, so they are the one place the repo's
/// determinism discipline (DESIGN.md §5) deliberately does not apply.
fn entropy_word(tag: u64) -> u64 {
    use std::hash::{BuildHasher, Hasher};
    // mar-lint: allow(D003) — token-key entropy is nondeterministic on purpose; tokens never enter any result
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u64(tag);
    h.finish()
}

/// What [`Server::resume`] reattached: how much server-side filter state
/// survived the transport drop, i.e. how much data will *not* be re-sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeInfo {
    /// The resumed session id (unchanged — the token named it).
    pub session: u64,
    /// Coefficients the server still knows this client holds.
    pub retained_coeffs: usize,
    /// Objects whose base mesh the server still knows this client holds.
    pub retained_objects: usize,
}

/// One sub-query: a region and the resolution band needed inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRegion {
    /// The spatial window.
    pub region: Rect2,
    /// The coefficient magnitude band.
    pub band: ResolutionBand,
}

/// What one server round trip produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryResult {
    /// Coefficients transmitted (after session filtering).
    pub coeffs: usize,
    /// Objects whose base mesh was transmitted for the first time.
    pub new_objects: usize,
    /// Payload bytes (coefficients + new base meshes).
    pub bytes: f64,
    /// Index node accesses.
    pub io: u64,
}

#[derive(Debug, Default)]
struct Session {
    // Membership-only sets on the per-query hot path: every coefficient hit
    // is tested against them, they are never iterated, so O(1) hashing is
    // safe and worthwhile here.
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent: HashSet<CoeffRef>,
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent_base: HashSet<u32>,
    /// The resume capability minted at connect time; `disconnect` uses it
    /// to release the token-map entry.
    token: u64,
}

impl Session {
    /// Resident filter entries (coefficients + base-mesh markers) — the
    /// state `disconnect` must release.
    fn filter_entries(&self) -> usize {
        self.sent.len() + self.sent_base.len()
    }
}

/// Replays one window's hit list (in index search order) through a
/// session's sent-filter, accumulating the transmission accounting. Both
/// query paths route here so a batched and a scalar execution of the same
/// sub-queries produce bit-identical [`QueryResult`]s.
///
/// Every *newly transmitted* coefficient touches its payload page through
/// the index — a no-op in RAM, a buffer-pool read (and physical-I/O tally
/// on a miss) on the disk-backed backend. The touch never changes the
/// result, so RAM and paged transcripts stay byte-identical.
fn apply_hits(
    sess: &mut Session,
    data: &SceneIndexData,
    index: &WaveletIndex,
    hits: &[CoeffRef],
    out: &mut QueryResult,
) {
    for &id in hits {
        if sess.sent.insert(id) {
            index.touch_payload(id);
            out.coeffs += 1;
            out.bytes += data.coeff_bytes;
            if sess.sent_base.insert(id.object) {
                out.new_objects += 1;
                out.bytes += data.base_bytes[id.object as usize];
            }
        }
    }
}

/// The shared immutable half of the server: scene-derived index data plus
/// the wavelet index, both behind `Arc` so clones are cheap handle copies.
/// Everything here is read-only after construction — safe to share across
/// any number of client threads without locks.
#[derive(Debug, Clone)]
pub struct ServerCore {
    data: Arc<SceneIndexData>,
    index: Arc<WaveletIndex>,
}

impl ServerCore {
    /// Builds the core (support regions + index) from a scene.
    pub fn new(scene: &Scene) -> Self {
        let data = SceneIndexData::build(scene);
        let index = WaveletIndex::build(&data);
        Self {
            data: Arc::new(data),
            index: Arc::new(index),
        }
    }

    /// Wraps pre-built parts (e.g. an index bulk-loaded in parallel via
    /// [`WaveletIndex::build_jobs`]).
    pub fn from_parts(data: Arc<SceneIndexData>, index: Arc<WaveletIndex>) -> Self {
        Self { data, index }
    }

    /// Builds a **disk-backed** core: writes the complete store image
    /// (tree node pages + coefficient records) to `store_path`, then
    /// serves every index read through a buffer pool of `budget_bytes`
    /// with the given eviction policy. Query and fetch answers are
    /// byte-identical to [`ServerCore::new`] over the same scene.
    pub fn new_paged(
        scene: &Scene,
        store_path: &std::path::Path,
        budget_bytes: usize,
        policy: mar_store::CachePolicy,
    ) -> Result<Self, mar_store::StoreError> {
        let data = SceneIndexData::build(scene);
        crate::store::write_store(store_path, &data)?;
        let index = WaveletIndex::open_paged(store_path, budget_bytes, policy)?;
        Ok(Self {
            data: Arc::new(data),
            index: Arc::new(index),
        })
    }

    /// The scene-derived index data.
    pub fn data(&self) -> &SceneIndexData {
        &self.data
    }

    /// A shared handle to the index data. Planning closures that must
    /// outlive a server borrow (e.g. `bytes_per_block` over the prebuilt
    /// `sorted_w`) clone this handle instead of deep-copying the vector.
    pub fn data_arc(&self) -> Arc<SceneIndexData> {
        Arc::clone(&self.data)
    }

    /// The wavelet index.
    pub fn index(&self) -> &WaveletIndex {
        &self.index
    }

    /// A stateless query (no session filtering): the raw index answer.
    pub fn query_stateless(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        self.index.query(region, band)
    }

    /// Stateless byte size of a block at a band (planning/estimation).
    /// Only the hit *count* matters here, so the index counts in place
    /// instead of materialising the hit vector.
    pub fn block_bytes_stateless(&self, block: &Rect2, band: ResolutionBand) -> (f64, u64) {
        let (n, io) = self.index.count_in(block, band);
        (n as f64 * self.data.coeff_bytes, io)
    }
}

/// The server: a shared [`ServerCore`] plus striped per-session state.
/// All entry points take `&self`; a `&Server` is safe to share across
/// client threads.
#[derive(Debug)]
pub struct Server {
    core: ServerCore,
    stripes: [Mutex<BTreeMap<u64, Session>>; SESSION_STRIPES],
    next_session: AtomicU64,
    /// 128-bit SipHash key minting resume tokens. Never derivable from
    /// any number of observed `(session, token)` pairs — SipHash is a
    /// PRF, unlike the invertible splitmix mix a client could run
    /// backwards on its own handshake to recover the seed.
    token_key: (u64, u64),
    /// Monotone nonce feeding the token PRF (not the session id: the
    /// nonce advances past skipped candidates, so tokens are not even a
    /// per-key function of the id).
    token_nonce: AtomicU64,
    /// Live resume capabilities: token → session id. `resume` is a map
    /// lookup, not an inversion — the server stores what it minted.
    tokens: Mutex<BTreeMap<u64, u64>>,
}

impl Server {
    /// Builds the server (support regions + index) from a scene.
    pub fn new(scene: &Scene) -> Self {
        Self::from_core(ServerCore::new(scene))
    }

    /// Builds the session layer over an existing shared core. The resume
    /// token key is drawn from per-process entropy, so every server
    /// instance mints its own unpredictable token stream — there is no
    /// public default a wire peer could use to mint tokens offline.
    pub fn from_core(core: ServerCore) -> Self {
        Self::with_key(core, (entropy_word(1), entropy_word(2)))
    }

    /// Builds the session layer over an existing shared core with a
    /// deterministic resume-token key expanded from `token_seed`
    /// (`mar-served --token-seed`). Tokens are then reproducible across
    /// runs for debugging; they stay unforgeable as long as the seed is
    /// secret, because the PRF key cannot be recovered from observed
    /// tokens. A deployment that does not need reproducible tokens should
    /// prefer [`Server::from_core`]'s entropy key.
    pub fn from_core_seeded(core: ServerCore, token_seed: u64) -> Self {
        let k0 = mix64(token_seed ^ 0x6d61_725f_7365_7276); // "mar_serv"
        let k1 = mix64(token_seed ^ 0x746f_6b65_6e5f_6b31); // "token_k1"
        Self::with_key(core, (k0, k1))
    }

    fn with_key(core: ServerCore, token_key: (u64, u64)) -> Self {
        Self {
            core,
            stripes: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            next_session: AtomicU64::new(0),
            token_key,
            token_nonce: AtomicU64::new(0),
            tokens: Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared immutable core.
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// The scene-derived index data.
    pub fn data(&self) -> &SceneIndexData {
        self.core.data()
    }

    /// The wavelet index.
    pub fn index(&self) -> &WaveletIndex {
        self.core.index()
    }

    /// The stripe holding `session`'s filter state.
    fn stripe(&self, session: u64) -> &Mutex<BTreeMap<u64, Session>> {
        &self.stripes[(session % SESSION_STRIPES as u64) as usize]
    }

    /// Opens a client session; returns its id. Ids are handed out in call
    /// order, so a program that connects sessions deterministically gets
    /// deterministic ids.
    pub fn connect(&self) -> u64 {
        self.connect_with_token().0
    }

    /// Opens a client session; returns `(id, resume token)`. This is what
    /// wire endpoints use: the token is minted and registered atomically
    /// with the session, so there is no window where a connected session
    /// has no capability.
    pub fn connect_with_token(&self) -> (u64, u64) {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let token = {
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            let mut tokens = self.tokens.lock().expect("token map poisoned");
            loop {
                let nonce = self.token_nonce.fetch_add(1, Ordering::Relaxed);
                let candidate = siphash24(self.token_key.0, self.token_key.1, nonce);
                // Skip the (astronomically rare) candidates that could be
                // mistaken for a session id or collide with a live token.
                if candidate < TOKEN_FLOOR || tokens.contains_key(&candidate) {
                    continue;
                }
                tokens.insert(candidate, id);
                break candidate;
            }
        };
        // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
        let mut stripe = self.stripe(id).lock().expect("session stripe poisoned");
        stripe.insert(
            id,
            Session {
                token,
                ..Session::default()
            },
        );
        (id, token)
    }

    /// Drops a session (client disconnected), releasing its sent-filter
    /// state with it — long-running serve workloads must not accumulate
    /// filters for clients that are gone (pinned by
    /// `disconnect_releases_filter_state`). Disconnecting an unknown or
    /// already-disconnected id is a typed error, so a double disconnect
    /// cannot silently pass for a real teardown.
    pub fn disconnect(&self, session: u64) -> Result<(), SessionError> {
        let sess = {
            let mut stripe = self
                .stripe(session)
                .lock()
                // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                .expect("session stripe poisoned");
            stripe
                .remove(&session)
                .ok_or(SessionError::UnknownSession(session))?
        };
        // Retire the capability with the session, so a stale token can
        // never resume a future session that happens to reuse state.
        // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
        let mut tokens = self.tokens.lock().expect("token map poisoned");
        tokens.remove(&sess.token);
        drop(tokens);
        // And its heat contribution: a gone client must not keep pages
        // warm (no-op on the in-RAM backend).
        self.core.index().forget_motion(session);
        Ok(())
    }

    /// The resume token minted for a *connected* session — a lookup of
    /// server-side state, not a derivation. There is no public function
    /// from session ids to tokens: tokens come from a keyed PRF over a
    /// private nonce stream, so observing any number of `(id, token)`
    /// pairs (every client sees its own in `WELCOME`) reveals nothing
    /// about any other session's token. An unknown or disconnected id is
    /// a typed [`SessionError`].
    pub fn session_token(&self, session: u64) -> Result<u64, SessionError> {
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        stripe
            .get(&session)
            .map(|sess| sess.token)
            .ok_or(SessionError::UnknownSession(session))
    }

    /// Reattaches a client to its session after a *transport* drop (the
    /// wireless link died; the server-side session state did not). The
    /// caller presents the resume **token** it was handed at connect time
    /// ([`session_token`]) — *not* the raw session id, which is sequential
    /// and therefore guessable by any other wire peer. The token is looked
    /// up in the server's capability map; if it names a session the server
    /// still holds, the client resumes with its sent-filter intact —
    /// nothing already delivered is ever re-sent — and learns how much
    /// state was retained. Any other token (stale, forged, or a raw
    /// session id — tokens are minted above 2^32, so ids can never alias
    /// them) is a typed [`SessionError`] echoing only the token itself;
    /// the client must [`connect`] fresh and refetch from scratch.
    ///
    /// [`connect`]: Server::connect
    /// [`session_token`]: Server::session_token
    pub fn resume(&self, token: u64) -> Result<ResumeInfo, SessionError> {
        let session = {
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            let tokens = self.tokens.lock().expect("token map poisoned");
            tokens
                .get(&token)
                .copied()
                .ok_or(SessionError::UnknownToken(token))?
        };
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        stripe
            .get(&session)
            .map(|sess| ResumeInfo {
                session,
                retained_coeffs: sess.sent.len(),
                retained_objects: sess.sent_base.len(),
            })
            // A disconnect can race between the two locks; the answer is
            // the same either way — the capability no longer resumes.
            .ok_or(SessionError::UnknownToken(token))
    }

    /// Executes a batch of sub-queries for a session, filtering out data
    /// the client already holds, and returns the transmission accounting.
    ///
    /// The session's sub-queries run as one grouped index descent
    /// ([`WaveletIndex::for_each_batch`]): tree nodes shared by several
    /// sub-query windows are read once physically, while `io` still
    /// reports the per-sub-query *logical* accesses — exactly what the
    /// one-window-at-a-time walk would have counted. The per-window hit
    /// lists are replayed through the session filter in sub-query order,
    /// so the accounting (including the floating-point byte total) is
    /// bit-identical to the scalar path.
    ///
    /// Holds only the session's stripe lock: the index walk itself is a
    /// lock-free `&self` read of the shared core.
    ///
    /// An unknown or disconnected session id is a typed
    /// [`SessionError`] — the server never mints filter state for a
    /// session it did not hand out.
    pub fn query(
        &self,
        session: u64,
        regions: &[QueryRegion],
    ) -> Result<QueryResult, SessionError> {
        let mut stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        let sess = stripe
            .get_mut(&session)
            .ok_or(SessionError::UnknownSession(session))?;
        let index = self.core.index();
        let data = self.core.data();
        // The session's predicted motion (Eq. 2) feeds the buffer pool's
        // heat field: the first sub-query window's centre is the client's
        // position this tick. (No-op on the in-RAM backend; only the
        // stripe → pager lock edge of DESIGN.md §13 is taken.)
        if let Some(q) = regions.first() {
            index.observe_motion(session, q.region.center());
        }
        let queries: Vec<(Rect2, ResolutionBand)> =
            regions.iter().map(|q| (q.region, q.band)).collect();
        let mut hits: Vec<Vec<CoeffRef>> = vec![Vec::new(); queries.len()];
        let accesses = index.for_each_batch(&queries, |w, id| hits[w].push(id));
        let mut result = QueryResult::default();
        for window_hits in &hits {
            apply_hits(sess, data, index, window_hits, &mut result);
        }
        result.io = accesses.logical_total();
        Ok(result)
    }

    /// Executes every session's sub-queries as **one** cross-session group
    /// descent: the windows of all sessions in `batch` descend the index
    /// together, so a tree node needed by several sessions is read once
    /// physically. Returns the per-session results in caller order plus
    /// the number of unique physical node visits the merged descent
    /// performed (the shared-visit metric).
    ///
    /// Each per-session [`QueryResult`] — coefficients, bytes, *and* its
    /// logical `io` count — is bit-identical to what a separate
    /// [`Server::query`] call would have produced: per-window visit order
    /// equals the scalar search order, windows replay through the session
    /// filter in sub-query order, and logical accesses are counted per
    /// window regardless of physical sharing.
    ///
    /// Locking: session stripes are taken one at a time (existence check
    /// up front, filter application afterwards), never nested with each
    /// other or held across the index descent. A session that disconnects
    /// between the two lock windows surfaces as
    /// [`SessionError::UnknownSession`], the same answer a scalar call in
    /// that race would give.
    pub fn query_batch(
        &self,
        batch: &[(u64, &[QueryRegion])],
    ) -> (Vec<Result<QueryResult, SessionError>>, u64) {
        // Admission: one stripe lock at a time, released before the walk.
        let known: Vec<bool> = batch
            .iter()
            .map(|&(session, _)| {
                self.stripe(session)
                    .lock()
                    // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                    .expect("session stripe poisoned")
                    .contains_key(&session)
            })
            .collect();
        // Feed each admitted session's window centre into the pool's heat
        // field before the descent reads any pages (no locks held here).
        for (s, &(session, regions)) in batch.iter().enumerate() {
            if known[s] {
                if let Some(q) = regions.first() {
                    self.core.index().observe_motion(session, q.region.center());
                }
            }
        }
        // One lock-free grouped descent over every admitted session's
        // windows; `ranges[s]` is session slot s's window span.
        let mut queries: Vec<(Rect2, ResolutionBand)> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(batch.len());
        for (s, &(_, regions)) in batch.iter().enumerate() {
            let start = queries.len();
            if known[s] {
                queries.extend(regions.iter().map(|q| (q.region, q.band)));
            }
            ranges.push((start, queries.len()));
        }
        let mut hits: Vec<Vec<CoeffRef>> = vec![Vec::new(); queries.len()];
        let accesses = self
            .core
            .index()
            .for_each_batch(&queries, |w, id| hits[w].push(id));
        // Demultiplex: apply each session's filter in caller order.
        let data = self.core.data();
        let index = self.core.index();
        let mut out = Vec::with_capacity(batch.len());
        for (s, &(session, _)) in batch.iter().enumerate() {
            if !known[s] {
                out.push(Err(SessionError::UnknownSession(session)));
                continue;
            }
            let (start, end) = ranges[s];
            let mut stripe = self
                .stripe(session)
                .lock()
                // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                .expect("session stripe poisoned");
            let Some(sess) = stripe.get_mut(&session) else {
                // Disconnected between admission and apply.
                out.push(Err(SessionError::UnknownSession(session)));
                continue;
            };
            let mut result = QueryResult::default();
            for (h, &io) in hits[start..end]
                .iter()
                .zip(&accesses.per_window[start..end])
            {
                apply_hits(sess, data, index, h, &mut result);
                result.io += io;
            }
            out.push(Ok(result));
        }
        (out, accesses.unique)
    }

    /// A stateless query (no session filtering): the raw index answer.
    pub fn query_stateless(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        self.core.query_stateless(region, band)
    }

    /// Payload bytes of one block-granularity fetch: every coefficient
    /// whose support intersects `block` within `band`, plus base meshes
    /// the session has not yet received. Used by the buffered clients.
    /// Unknown sessions surface as a typed [`SessionError`], like
    /// [`Server::query`].
    pub fn fetch_block(
        &self,
        session: u64,
        block: &Rect2,
        band: ResolutionBand,
    ) -> Result<QueryResult, SessionError> {
        self.query(
            session,
            &[QueryRegion {
                region: *block,
                band,
            }],
        )
    }

    /// Stateless byte size of a block at a band (planning/estimation).
    pub fn block_bytes_stateless(&self, block: &Rect2, band: ResolutionBand) -> (f64, u64) {
        self.core.block_bytes_stateless(block, band)
    }

    /// A sorted snapshot of every coefficient the session has been sent —
    /// the client's resident set as the server knows it. Sorting makes the
    /// snapshot deterministic even though the filter itself is a
    /// membership-only hash set; the chaos harness fingerprints this to
    /// prove faulty runs converge to the fault-free resident set.
    pub fn session_sent_set(&self, session: u64) -> Result<Vec<CoeffRef>, SessionError> {
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        let sess = stripe
            .get(&session)
            .ok_or(SessionError::UnknownSession(session))?;
        let mut refs: Vec<CoeffRef> = sess.sent.iter().copied().collect();
        refs.sort_unstable();
        Ok(refs)
    }

    /// How many coefficients a session has been sent.
    pub fn session_sent(&self, session: u64) -> usize {
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        stripe.get(&session).map(|s| s.sent.len()).unwrap_or(0)
    }

    /// Number of currently connected sessions, across all stripes.
    pub fn session_count(&self) -> usize {
        self.stripes
            .iter()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .map(|s| s.lock().expect("session stripe poisoned").len())
            .sum()
    }

    /// Total resident filter entries (sent coefficients + sent base-mesh
    /// markers) across every connected session — the quantity that must
    /// return to zero when all clients disconnect.
    pub fn resident_filter_entries(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                    .expect("session stripe poisoned")
                    .values()
                    .map(Session::filter_entries)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(5, 21);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    fn whole() -> QueryRegion {
        QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
            band: ResolutionBand::FULL,
        }
    }

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Server>();
        assert_sync_send::<ServerCore>();
    }

    #[test]
    fn repeat_queries_send_nothing_new() {
        let s = server();
        let c = s.connect();
        let r1 = s.query(c, &[whole()]).unwrap();
        assert!(r1.coeffs > 0);
        assert!(r1.bytes > 0.0);
        assert_eq!(r1.new_objects, 5);
        let r2 = s.query(c, &[whole()]).unwrap();
        assert_eq!(r2.coeffs, 0);
        assert_eq!(r2.bytes, 0.0);
        assert_eq!(r2.new_objects, 0);
        assert!(r2.io > 0, "index is still searched");
    }

    #[test]
    fn sessions_are_independent() {
        let s = server();
        let a = s.connect();
        let b = s.connect();
        let ra = s.query(a, &[whole()]).unwrap();
        let rb = s.query(b, &[whole()]).unwrap();
        assert_eq!(ra.coeffs, rb.coeffs);
    }

    #[test]
    fn query_batch_matches_scalar_queries_bit_for_bit() {
        // Two servers over the same scene: one answers session by session,
        // the other answers every session in one grouped descent. Every
        // per-session result — including the f64 byte totals and logical
        // io — must be identical.
        let scalar = server();
        let batched = server();
        let regions: Vec<Vec<QueryRegion>> = (0..5)
            .map(|k| {
                let x = 80.0 * k as f64;
                vec![
                    QueryRegion {
                        region: Rect2::new(
                            Point2::new([x, 100.0]),
                            Point2::new([x + 400.0, 620.0]),
                        ),
                        band: ResolutionBand::FULL,
                    },
                    QueryRegion {
                        region: Rect2::new(
                            Point2::new([x, 100.0]),
                            Point2::new([x + 650.0, 880.0]),
                        ),
                        band: ResolutionBand::new(0.4, 1.0),
                    },
                ]
            })
            .collect();
        let sessions_a: Vec<u64> = (0..5).map(|_| scalar.connect()).collect();
        let sessions_b: Vec<u64> = (0..5).map(|_| batched.connect()).collect();
        for round in 0..3 {
            let want: Vec<QueryResult> = sessions_a
                .iter()
                .enumerate()
                .map(|(k, &c)| scalar.query(c, &regions[(k + round) % 5]).unwrap())
                .collect();
            let batch: Vec<(u64, &[QueryRegion])> = sessions_b
                .iter()
                .enumerate()
                .map(|(k, &c)| (c, regions[(k + round) % 5].as_slice()))
                .collect();
            let (got, unique) = batched.query_batch(&batch);
            let logical: u64 = want.iter().map(|r| r.io).sum();
            assert!(
                unique > 0 && unique <= logical,
                "round {round}: shared descent must not exceed logical io ({unique} vs {logical})"
            );
            for (k, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.as_ref().unwrap(), w, "round {round} session {k}");
            }
        }
    }

    #[test]
    fn query_batch_reports_unknown_sessions() {
        let s = server();
        let c = s.connect();
        let regions = [whole()];
        let batch: Vec<(u64, &[QueryRegion])> =
            vec![(9999, &regions), (c, &regions), (12345, &regions)];
        let (got, _) = s.query_batch(&batch);
        assert!(matches!(got[0], Err(SessionError::UnknownSession(9999))));
        assert!(got[1].as_ref().unwrap().coeffs > 0);
        assert!(matches!(got[2], Err(SessionError::UnknownSession(12345))));
    }

    #[test]
    fn incremental_band_widening_sends_only_the_difference() {
        let s = server();
        let c = s.connect();
        let region = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        let coarse = s
            .query(
                c,
                &[QueryRegion {
                    region,
                    band: ResolutionBand::new(0.5, 1.0),
                }],
            )
            .unwrap();
        let fine = s
            .query(
                c,
                &[QueryRegion {
                    region,
                    band: ResolutionBand::FULL,
                }],
            )
            .unwrap();
        let total_coeffs = s.data().len();
        assert_eq!(coarse.coeffs + fine.coeffs, total_coeffs);
        assert!(coarse.coeffs < fine.coeffs, "most coefficients are small");
    }

    #[test]
    fn base_mesh_charged_exactly_once_per_object() {
        let s = server();
        let c = s.connect();
        let left = QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([500.0, 1000.0])),
            band: ResolutionBand::FULL,
        };
        let all = whole();
        let r1 = s.query(c, &[left]).unwrap();
        let r2 = s.query(c, &[all]).unwrap();
        assert_eq!(r1.new_objects + r2.new_objects, 5);
    }

    #[test]
    fn disconnect_forgets_state() {
        let s = server();
        let c = s.connect();
        s.query(c, &[whole()]).unwrap();
        assert!(s.session_sent(c) > 0);
        s.disconnect(c).unwrap();
        assert_eq!(s.session_sent(c), 0);
    }

    #[test]
    fn disconnect_releases_filter_state() {
        // Long-running serve workloads churn through sessions; the filter
        // footprint must be bounded by the *connected* sessions, not by
        // the total ever served.
        let s = server();
        assert_eq!(s.resident_filter_entries(), 0);
        for round in 0..50 {
            let c = s.connect();
            let r = s.query(c, &[whole()]).unwrap();
            assert!(r.coeffs > 0, "round {round} fetched data");
            assert!(s.resident_filter_entries() > 0);
            s.disconnect(c).unwrap();
            assert_eq!(
                s.resident_filter_entries(),
                0,
                "round {round} left filter state behind"
            );
        }
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn sessions_land_on_distinct_stripes() {
        let s = server();
        let ids: Vec<u64> = (0..SESSION_STRIPES as u64 * 2)
            .map(|_| s.connect())
            .collect();
        // Ids are sequential, so consecutive sessions cover every stripe.
        assert_eq!(ids, (0..SESSION_STRIPES as u64 * 2).collect::<Vec<_>>());
        assert_eq!(s.session_count(), SESSION_STRIPES * 2);
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let s = server();
        assert_eq!(
            s.query(42, &[whole()]),
            Err(SessionError::UnknownSession(42))
        );
        let rect = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([10.0, 10.0]));
        assert_eq!(
            s.fetch_block(42, &rect, ResolutionBand::FULL),
            Err(SessionError::UnknownSession(42))
        );
        assert_eq!(s.disconnect(42), Err(SessionError::UnknownSession(42)));
        assert_eq!(s.resume(42), Err(SessionError::UnknownToken(42)));
        assert_eq!(
            s.session_sent_set(42),
            Err(SessionError::UnknownSession(42))
        );
        // No state was minted along the way.
        assert_eq!(s.session_count(), 0);
        assert_eq!(s.resident_filter_entries(), 0);
    }

    #[test]
    fn resume_retains_the_sent_filter() {
        let s = server();
        let c = s.connect();
        let token = s.session_token(c).unwrap();
        let r = s.query(c, &[whole()]).unwrap();
        assert!(r.coeffs > 0);
        // A transport drop does not touch server state: resuming by token
        // reports the retained filter, and a repeat query still sends
        // nothing new.
        let info = s.resume(token).unwrap();
        assert_eq!(info.session, c);
        assert_eq!(info.retained_coeffs, r.coeffs);
        assert_eq!(info.retained_objects, r.new_objects);
        let again = s.query(c, &[whole()]).unwrap();
        assert_eq!(again.coeffs, 0, "resume must not cause re-sends");
        // After a real disconnect the token is gone for good.
        s.disconnect(c).unwrap();
        assert_eq!(s.resume(token), Err(SessionError::UnknownToken(token)));
        assert_eq!(
            s.session_token(c),
            Err(SessionError::UnknownSession(c)),
            "a disconnected session has no token to look up"
        );
        assert_eq!(
            s.disconnect(c),
            Err(SessionError::UnknownSession(c)),
            "double disconnect is a typed error, not a silent no-op"
        );
    }

    #[test]
    fn resume_rejects_the_raw_session_id() {
        // Regression (ISSUE 6): `resume` used to accept the sequential
        // session id as the token, so any wire peer could resume — and
        // hijack the sent-filter of — any other session by counting.
        let s = server();
        let a = s.connect();
        let b = s.connect();
        s.query(a, &[whole()]).unwrap();
        s.query(b, &[whole()]).unwrap();
        for id in [a, b] {
            assert_eq!(
                s.resume(id),
                Err(SessionError::UnknownToken(id)),
                "a raw session id must not act as a resume token"
            );
        }
        // The real tokens still work, and each names only its own session.
        let ta = s.session_token(a).unwrap();
        let tb = s.session_token(b).unwrap();
        assert_eq!(s.resume(ta).unwrap().session, a);
        assert_eq!(s.resume(tb).unwrap().session, b);
        assert_ne!(ta, tb);
    }

    fn small_core() -> ServerCore {
        ServerCore::new(&{
            let mut cfg = mar_workload::SceneConfig::paper(3, 13);
            cfg.levels = 2;
            cfg.target_bytes = 100_000.0;
            Scene::generate(cfg)
        })
    }

    #[test]
    fn seeded_tokens_are_deterministic_distinct_and_floored() {
        let s1 = Server::from_core_seeded(small_core(), 7);
        let s2 = Server::from_core_seeded(small_core(), 7);
        let s3 = Server::from_core_seeded(small_core(), 8);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..512u64 {
            let (id1, t1) = s1.connect_with_token();
            let (id2, t2) = s2.connect_with_token();
            let (_, t3) = s3.connect_with_token();
            assert_eq!(id1, id2);
            assert_eq!(t1, t2, "same seed + same connect order → same tokens");
            assert_ne!(t1, t3, "different seeds → different token streams");
            assert!(seen.insert(t1), "token collision");
            assert!(
                t1 >= (1u64 << 32),
                "tokens stay above the floor so sequential ids can never alias them"
            );
            assert_ne!(t1, id1, "token must not echo the id");
            assert_eq!(s1.session_token(id1), Ok(t1), "lookup is stable");
        }
    }

    #[test]
    fn token_seed_is_not_recoverable_from_a_clients_own_handshake() {
        // Regression (ISSUE 6 review): tokens used to be
        // `mix64(seed ^ mix64(id))` — a public *bijection*, so any client
        // could invert its own `(id, token)` pair, recover the seed, and
        // mint every other session's token. Re-enact that attack against
        // the PRF-minted tokens and check it now yields garbage.
        const fn inv_mul(m: u64) -> u64 {
            let mut x = m;
            let mut i = 0;
            while i < 6 {
                x = x.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(x)));
                i += 1;
            }
            x
        }
        fn un_xsr(y: u64, s: u32) -> u64 {
            let mut x = y;
            let mut done = 0;
            while done < 64 {
                x = y ^ (x >> s);
                done += s;
            }
            x
        }
        fn unmix64(z: u64) -> u64 {
            let z = un_xsr(z, 31);
            let z = z.wrapping_mul(inv_mul(0x94d0_49bb_1331_11eb));
            let z = un_xsr(z, 27);
            let z = z.wrapping_mul(inv_mul(0xbf58_476d_1ce4_e5b9));
            let z = un_xsr(z, 30);
            z.wrapping_sub(0x9e37_79b9_7f4a_7c15)
        }
        let seed = 0xdead_beef_cafe_f00d;
        let s = Server::from_core_seeded(small_core(), seed);
        let (id0, t0) = s.connect_with_token();
        let (id1, t1) = s.connect_with_token();
        // The old public formula must not mint the token any more…
        assert_ne!(t0, mix64(seed ^ mix64(id0)), "old derivation is dead");
        // …and the old inversion applied to the attacker's own handshake
        // must neither recover the seed nor predict the peer's token.
        let recovered = unmix64(t0) ^ mix64(id0);
        assert_ne!(recovered, seed, "seed recovery attack is dead");
        assert_ne!(
            mix64(recovered ^ mix64(id1)),
            t1,
            "the 'recovered' seed must not mint other sessions' tokens"
        );
    }

    #[test]
    fn default_servers_mint_per_instance_token_streams() {
        // Without an explicit seed the token key comes from per-process
        // entropy: two servers over the same core must not agree on the
        // token for session 0, so there is no public default key a wire
        // peer could use to mint tokens offline.
        let a = Server::from_core(small_core());
        let b = Server::from_core(small_core());
        let (_, ta) = a.connect_with_token();
        let (_, tb) = b.connect_with_token();
        assert_ne!(ta, tb, "default token keys are per-instance entropy");
        assert!(ta >= (1u64 << 32) && tb >= (1u64 << 32));
        // Each server resumes only its own capability.
        assert!(a.resume(ta).is_ok());
        assert_eq!(a.resume(tb), Err(SessionError::UnknownToken(tb)));
    }

    #[test]
    fn session_sent_set_is_a_sorted_snapshot() {
        let s = server();
        let c = s.connect();
        let r = s.query(c, &[whole()]).unwrap();
        let set = s.session_sent_set(c).unwrap();
        assert_eq!(set.len(), r.coeffs);
        assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
    }
}
