//! The data server: scene + wavelet index + per-client sessions.
//!
//! §IV: "After retrieving the results for all the sub-queries, the server
//! filters the results to avoid transmitting the data that is already
//! available at the client." Each session remembers which coefficients
//! (and which objects' base meshes) a client has already received; query
//! results are filtered against that set before they are costed.
//!
//! # Concurrency model (DESIGN.md §10)
//!
//! The server is split into two layers so many clients can be served at
//! once (the paper's §III setting — "serving heavy traffic" of continuous
//! window queries):
//!
//! * [`ServerCore`] — the shared **immutable** half: `Arc<SceneIndexData>`
//!   plus `Arc<WaveletIndex>` (which carries the prebuilt `sorted_w`
//!   magnitude distribution inside the data). Every read path takes
//!   `&self` and is lock-free; index searches allocate nothing (the
//!   traversal stack is a thread-local scratch buffer in `mar-rtree`) and
//!   tally I/O through a relaxed atomic.
//! * per-session state, **striped**: sessions are sharded into
//!   [`SESSION_STRIPES`] independent `Mutex<BTreeMap<..>>` shards by
//!   `session_id % SESSION_STRIPES`, so concurrent clients only contend
//!   when they hash to the same stripe — never on one global map.
//!
//! `query`/`fetch_block` therefore take `&self`: a `&Server` can be shared
//! across scoped threads and each client's queries run concurrently.
//! Determinism is preserved because a session's filter state depends only
//! on that session's own query history (pinned by
//! `crates/core/tests/server_concurrent.rs`).

use crate::coeff::{CoeffRef, SceneIndexData};
use crate::index::WaveletIndex;
use mar_geom::Rect2;
use mar_mesh::ResolutionBand;
use mar_workload::Scene;
// mar-lint: allow(D001) — `HashSet` here backs the membership-only session
// filters below; their iteration order is never observed.
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of session shards. A fixed power of two keeps `id % N` cheap and
/// the shard choice deterministic; 16 stripes already make same-stripe
/// contention rare for the client counts the serve harness replays.
pub const SESSION_STRIPES: usize = 16;

/// One sub-query: a region and the resolution band needed inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRegion {
    /// The spatial window.
    pub region: Rect2,
    /// The coefficient magnitude band.
    pub band: ResolutionBand,
}

/// What one server round trip produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryResult {
    /// Coefficients transmitted (after session filtering).
    pub coeffs: usize,
    /// Objects whose base mesh was transmitted for the first time.
    pub new_objects: usize,
    /// Payload bytes (coefficients + new base meshes).
    pub bytes: f64,
    /// Index node accesses.
    pub io: u64,
}

#[derive(Debug, Default)]
struct Session {
    // Membership-only sets on the per-query hot path: every coefficient hit
    // is tested against them, they are never iterated, so O(1) hashing is
    // safe and worthwhile here.
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent: HashSet<CoeffRef>,
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent_base: HashSet<u32>,
}

impl Session {
    /// Resident filter entries (coefficients + base-mesh markers) — the
    /// state `disconnect` must release.
    fn filter_entries(&self) -> usize {
        self.sent.len() + self.sent_base.len()
    }
}

/// The shared immutable half of the server: scene-derived index data plus
/// the wavelet index, both behind `Arc` so clones are cheap handle copies.
/// Everything here is read-only after construction — safe to share across
/// any number of client threads without locks.
#[derive(Debug, Clone)]
pub struct ServerCore {
    data: Arc<SceneIndexData>,
    index: Arc<WaveletIndex>,
}

impl ServerCore {
    /// Builds the core (support regions + index) from a scene.
    pub fn new(scene: &Scene) -> Self {
        let data = SceneIndexData::build(scene);
        let index = WaveletIndex::build(&data);
        Self {
            data: Arc::new(data),
            index: Arc::new(index),
        }
    }

    /// Wraps pre-built parts (e.g. an index bulk-loaded in parallel via
    /// [`WaveletIndex::build_jobs`]).
    pub fn from_parts(data: Arc<SceneIndexData>, index: Arc<WaveletIndex>) -> Self {
        Self { data, index }
    }

    /// The scene-derived index data.
    pub fn data(&self) -> &SceneIndexData {
        &self.data
    }

    /// A shared handle to the index data. Planning closures that must
    /// outlive a server borrow (e.g. `bytes_per_block` over the prebuilt
    /// `sorted_w`) clone this handle instead of deep-copying the vector.
    pub fn data_arc(&self) -> Arc<SceneIndexData> {
        Arc::clone(&self.data)
    }

    /// The wavelet index.
    pub fn index(&self) -> &WaveletIndex {
        &self.index
    }

    /// A stateless query (no session filtering): the raw index answer.
    pub fn query_stateless(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        self.index.query(region, band)
    }

    /// Stateless byte size of a block at a band (planning/estimation).
    /// Only the hit *count* matters here, so the index counts in place
    /// instead of materialising the hit vector.
    pub fn block_bytes_stateless(&self, block: &Rect2, band: ResolutionBand) -> (f64, u64) {
        let (n, io) = self.index.count_in(block, band);
        (n as f64 * self.data.coeff_bytes, io)
    }
}

/// The server: a shared [`ServerCore`] plus striped per-session state.
/// All entry points take `&self`; a `&Server` is safe to share across
/// client threads.
#[derive(Debug)]
pub struct Server {
    core: ServerCore,
    stripes: [Mutex<BTreeMap<u64, Session>>; SESSION_STRIPES],
    next_session: AtomicU64,
}

impl Server {
    /// Builds the server (support regions + index) from a scene.
    pub fn new(scene: &Scene) -> Self {
        Self::from_core(ServerCore::new(scene))
    }

    /// Builds the session layer over an existing shared core.
    pub fn from_core(core: ServerCore) -> Self {
        Self {
            core,
            stripes: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            next_session: AtomicU64::new(0),
        }
    }

    /// The shared immutable core.
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// The scene-derived index data.
    pub fn data(&self) -> &SceneIndexData {
        self.core.data()
    }

    /// The wavelet index.
    pub fn index(&self) -> &WaveletIndex {
        self.core.index()
    }

    /// The stripe holding `session`'s filter state.
    fn stripe(&self, session: u64) -> &Mutex<BTreeMap<u64, Session>> {
        &self.stripes[(session % SESSION_STRIPES as u64) as usize]
    }

    /// Opens a client session; returns its id. Ids are handed out in call
    /// order, so a program that connects sessions deterministically gets
    /// deterministic ids.
    pub fn connect(&self) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
        let mut stripe = self.stripe(id).lock().expect("session stripe poisoned");
        stripe.insert(id, Session::default());
        id
    }

    /// Drops a session (client disconnected), releasing its sent-filter
    /// state with it — long-running serve workloads must not accumulate
    /// filters for clients that are gone (pinned by
    /// `disconnect_releases_filter_state`).
    pub fn disconnect(&self, session: u64) {
        let mut stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        stripe.remove(&session);
    }

    /// Executes a batch of sub-queries for a session, filtering out data
    /// the client already holds, and returns the transmission accounting.
    ///
    /// Holds only the session's stripe lock: the index walk itself is a
    /// lock-free `&self` read of the shared core, with the session filter
    /// applied inside the tree walk (in index search order) so no
    /// per-sub-query hit vector is ever materialised.
    ///
    /// # Panics
    /// Panics on an unknown session id.
    pub fn query(&self, session: u64, regions: &[QueryRegion]) -> QueryResult {
        let mut stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        // mar-lint: allow(D004) — documented `# Panics` contract, covered by the
        // `unknown_session_panics` test.
        let sess = stripe.get_mut(&session).expect("unknown session id");
        let index = self.core.index();
        let data = self.core.data();
        let mut result = QueryResult::default();
        for q in regions {
            let io = index.for_each(&q.region, q.band, |id| {
                if sess.sent.insert(id) {
                    result.coeffs += 1;
                    result.bytes += data.coeff_bytes;
                    if sess.sent_base.insert(id.object) {
                        result.new_objects += 1;
                        result.bytes += data.base_bytes[id.object as usize];
                    }
                }
            });
            result.io += io;
        }
        result
    }

    /// A stateless query (no session filtering): the raw index answer.
    pub fn query_stateless(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        self.core.query_stateless(region, band)
    }

    /// Payload bytes of one block-granularity fetch: every coefficient
    /// whose support intersects `block` within `band`, plus base meshes
    /// the session has not yet received. Used by the buffered clients.
    pub fn fetch_block(&self, session: u64, block: &Rect2, band: ResolutionBand) -> QueryResult {
        self.query(
            session,
            &[QueryRegion {
                region: *block,
                band,
            }],
        )
    }

    /// Stateless byte size of a block at a band (planning/estimation).
    pub fn block_bytes_stateless(&self, block: &Rect2, band: ResolutionBand) -> (f64, u64) {
        self.core.block_bytes_stateless(block, band)
    }

    /// How many coefficients a session has been sent.
    pub fn session_sent(&self, session: u64) -> usize {
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("session stripe poisoned");
        stripe.get(&session).map(|s| s.sent.len()).unwrap_or(0)
    }

    /// Number of currently connected sessions, across all stripes.
    pub fn session_count(&self) -> usize {
        self.stripes
            .iter()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .map(|s| s.lock().expect("session stripe poisoned").len())
            .sum()
    }

    /// Total resident filter entries (sent coefficients + sent base-mesh
    /// markers) across every connected session — the quantity that must
    /// return to zero when all clients disconnect.
    pub fn resident_filter_entries(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                    .expect("session stripe poisoned")
                    .values()
                    .map(Session::filter_entries)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(5, 21);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    fn whole() -> QueryRegion {
        QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
            band: ResolutionBand::FULL,
        }
    }

    #[test]
    fn server_is_shareable_across_threads() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<Server>();
        assert_sync_send::<ServerCore>();
    }

    #[test]
    fn repeat_queries_send_nothing_new() {
        let s = server();
        let c = s.connect();
        let r1 = s.query(c, &[whole()]);
        assert!(r1.coeffs > 0);
        assert!(r1.bytes > 0.0);
        assert_eq!(r1.new_objects, 5);
        let r2 = s.query(c, &[whole()]);
        assert_eq!(r2.coeffs, 0);
        assert_eq!(r2.bytes, 0.0);
        assert_eq!(r2.new_objects, 0);
        assert!(r2.io > 0, "index is still searched");
    }

    #[test]
    fn sessions_are_independent() {
        let s = server();
        let a = s.connect();
        let b = s.connect();
        let ra = s.query(a, &[whole()]);
        let rb = s.query(b, &[whole()]);
        assert_eq!(ra.coeffs, rb.coeffs);
    }

    #[test]
    fn incremental_band_widening_sends_only_the_difference() {
        let s = server();
        let c = s.connect();
        let region = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        let coarse = s.query(
            c,
            &[QueryRegion {
                region,
                band: ResolutionBand::new(0.5, 1.0),
            }],
        );
        let fine = s.query(
            c,
            &[QueryRegion {
                region,
                band: ResolutionBand::FULL,
            }],
        );
        let total_coeffs = s.data().len();
        assert_eq!(coarse.coeffs + fine.coeffs, total_coeffs);
        assert!(coarse.coeffs < fine.coeffs, "most coefficients are small");
    }

    #[test]
    fn base_mesh_charged_exactly_once_per_object() {
        let s = server();
        let c = s.connect();
        let left = QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([500.0, 1000.0])),
            band: ResolutionBand::FULL,
        };
        let all = whole();
        let r1 = s.query(c, &[left]);
        let r2 = s.query(c, &[all]);
        assert_eq!(r1.new_objects + r2.new_objects, 5);
    }

    #[test]
    fn disconnect_forgets_state() {
        let s = server();
        let c = s.connect();
        s.query(c, &[whole()]);
        assert!(s.session_sent(c) > 0);
        s.disconnect(c);
        assert_eq!(s.session_sent(c), 0);
    }

    #[test]
    fn disconnect_releases_filter_state() {
        // Long-running serve workloads churn through sessions; the filter
        // footprint must be bounded by the *connected* sessions, not by
        // the total ever served.
        let s = server();
        assert_eq!(s.resident_filter_entries(), 0);
        for round in 0..50 {
            let c = s.connect();
            let r = s.query(c, &[whole()]);
            assert!(r.coeffs > 0, "round {round} fetched data");
            assert!(s.resident_filter_entries() > 0);
            s.disconnect(c);
            assert_eq!(
                s.resident_filter_entries(),
                0,
                "round {round} left filter state behind"
            );
        }
        assert_eq!(s.session_count(), 0);
    }

    #[test]
    fn sessions_land_on_distinct_stripes() {
        let s = server();
        let ids: Vec<u64> = (0..SESSION_STRIPES as u64 * 2)
            .map(|_| s.connect())
            .collect();
        // Ids are sequential, so consecutive sessions cover every stripe.
        assert_eq!(ids, (0..SESSION_STRIPES as u64 * 2).collect::<Vec<_>>());
        assert_eq!(s.session_count(), SESSION_STRIPES * 2);
    }

    #[test]
    #[should_panic(expected = "unknown session")]
    fn unknown_session_panics() {
        let s = server();
        s.query(42, &[whole()]);
    }
}
