//! The data server: scene + wavelet index + per-client sessions.
//!
//! §IV: "After retrieving the results for all the sub-queries, the server
//! filters the results to avoid transmitting the data that is already
//! available at the client." Each session remembers which coefficients
//! (and which objects' base meshes) a client has already received; query
//! results are filtered against that set before they are costed.

use crate::coeff::{CoeffRef, SceneIndexData};
use crate::index::WaveletIndex;
use mar_geom::Rect2;
use mar_mesh::ResolutionBand;
use mar_workload::Scene;
// mar-lint: allow(D001) — `HashSet` here backs the membership-only session
// filters below; their iteration order is never observed.
use std::collections::{BTreeMap, HashSet};

/// One sub-query: a region and the resolution band needed inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRegion {
    /// The spatial window.
    pub region: Rect2,
    /// The coefficient magnitude band.
    pub band: ResolutionBand,
}

/// What one server round trip produced.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryResult {
    /// Coefficients transmitted (after session filtering).
    pub coeffs: usize,
    /// Objects whose base mesh was transmitted for the first time.
    pub new_objects: usize,
    /// Payload bytes (coefficients + new base meshes).
    pub bytes: f64,
    /// Index node accesses.
    pub io: u64,
}

#[derive(Debug, Default)]
struct Session {
    // Membership-only sets on the per-query hot path: every coefficient hit
    // is tested against them, they are never iterated, so O(1) hashing is
    // safe and worthwhile here.
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent: HashSet<CoeffRef>,
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent_base: HashSet<u32>,
}

/// The server.
#[derive(Debug)]
pub struct Server {
    data: SceneIndexData,
    index: WaveletIndex,
    sessions: BTreeMap<u64, Session>,
    next_session: u64,
}

impl Server {
    /// Builds the server (support regions + index) from a scene.
    pub fn new(scene: &Scene) -> Self {
        let data = SceneIndexData::build(scene);
        let index = WaveletIndex::build(&data);
        Self {
            data,
            index,
            sessions: BTreeMap::new(),
            next_session: 0,
        }
    }

    /// The scene-derived index data.
    pub fn data(&self) -> &SceneIndexData {
        &self.data
    }

    /// The wavelet index.
    pub fn index(&self) -> &WaveletIndex {
        &self.index
    }

    /// Opens a client session; returns its id.
    pub fn connect(&mut self) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(id, Session::default());
        id
    }

    /// Drops a session (client disconnected).
    pub fn disconnect(&mut self, session: u64) {
        self.sessions.remove(&session);
    }

    /// Executes a batch of sub-queries for a session, filtering out data
    /// the client already holds, and returns the transmission accounting.
    ///
    /// # Panics
    /// Panics on an unknown session id.
    pub fn query(&mut self, session: u64, regions: &[QueryRegion]) -> QueryResult {
        // mar-lint: allow(D004) — documented `# Panics` contract, covered by the
        // `unknown_session_panics` test.
        let sess = self.sessions.get_mut(&session).expect("unknown session id");
        // Split borrows: the visitor mutates the session and the result
        // while the index (a sibling field) runs the search, so no
        // per-sub-query hit vector is ever materialised — the session
        // filter runs inside the tree walk, in index search order.
        let index = &self.index;
        let data = &self.data;
        let mut result = QueryResult::default();
        for q in regions {
            let io = index.for_each(&q.region, q.band, |id| {
                if sess.sent.insert(id) {
                    result.coeffs += 1;
                    result.bytes += data.coeff_bytes;
                    if sess.sent_base.insert(id.object) {
                        result.new_objects += 1;
                        result.bytes += data.base_bytes[id.object as usize];
                    }
                }
            });
            result.io += io;
        }
        result
    }

    /// A stateless query (no session filtering): the raw index answer.
    pub fn query_stateless(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        self.index.query(region, band)
    }

    /// Payload bytes of one block-granularity fetch: every coefficient
    /// whose support intersects `block` within `band`, plus base meshes
    /// the session has not yet received. Used by the buffered clients.
    pub fn fetch_block(
        &mut self,
        session: u64,
        block: &Rect2,
        band: ResolutionBand,
    ) -> QueryResult {
        self.query(
            session,
            &[QueryRegion {
                region: *block,
                band,
            }],
        )
    }

    /// Stateless byte size of a block at a band (planning/estimation).
    /// Only the hit *count* matters here, so the index counts in place
    /// instead of materialising the hit vector.
    pub fn block_bytes_stateless(&self, block: &Rect2, band: ResolutionBand) -> (f64, u64) {
        let (n, io) = self.index.count_in(block, band);
        (n as f64 * self.data.coeff_bytes, io)
    }

    /// How many coefficients a session has been sent.
    pub fn session_sent(&self, session: u64) -> usize {
        self.sessions
            .get(&session)
            .map(|s| s.sent.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(5, 21);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    fn whole() -> QueryRegion {
        QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
            band: ResolutionBand::FULL,
        }
    }

    #[test]
    fn repeat_queries_send_nothing_new() {
        let mut s = server();
        let c = s.connect();
        let r1 = s.query(c, &[whole()]);
        assert!(r1.coeffs > 0);
        assert!(r1.bytes > 0.0);
        assert_eq!(r1.new_objects, 5);
        let r2 = s.query(c, &[whole()]);
        assert_eq!(r2.coeffs, 0);
        assert_eq!(r2.bytes, 0.0);
        assert_eq!(r2.new_objects, 0);
        assert!(r2.io > 0, "index is still searched");
    }

    #[test]
    fn sessions_are_independent() {
        let mut s = server();
        let a = s.connect();
        let b = s.connect();
        let ra = s.query(a, &[whole()]);
        let rb = s.query(b, &[whole()]);
        assert_eq!(ra.coeffs, rb.coeffs);
    }

    #[test]
    fn incremental_band_widening_sends_only_the_difference() {
        let mut s = server();
        let c = s.connect();
        let region = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        let coarse = s.query(
            c,
            &[QueryRegion {
                region,
                band: ResolutionBand::new(0.5, 1.0),
            }],
        );
        let fine = s.query(
            c,
            &[QueryRegion {
                region,
                band: ResolutionBand::FULL,
            }],
        );
        let total_coeffs = s.data().len();
        assert_eq!(coarse.coeffs + fine.coeffs, total_coeffs);
        assert!(coarse.coeffs < fine.coeffs, "most coefficients are small");
    }

    #[test]
    fn base_mesh_charged_exactly_once_per_object() {
        let mut s = server();
        let c = s.connect();
        let left = QueryRegion {
            region: Rect2::new(Point2::new([0.0, 0.0]), Point2::new([500.0, 1000.0])),
            band: ResolutionBand::FULL,
        };
        let all = whole();
        let r1 = s.query(c, &[left]);
        let r2 = s.query(c, &[all]);
        assert_eq!(r1.new_objects + r2.new_objects, 5);
    }

    #[test]
    fn disconnect_forgets_state() {
        let mut s = server();
        let c = s.connect();
        s.query(c, &[whole()]);
        assert!(s.session_sent(c) > 0);
        s.disconnect(c);
        assert_eq!(s.session_sent(c), 0);
    }

    #[test]
    #[should_panic(expected = "unknown session")]
    fn unknown_session_panics() {
        let mut s = server();
        s.query(42, &[whole()]);
    }
}
