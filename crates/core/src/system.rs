//! End-to-end systems (§VII-E, Figs. 14–15).
//!
//! **Motion-aware system**: the full stack — speed→resolution mapping,
//! block cache with motion-aware prefetching at speed-scaled resolutions,
//! the support-region wavelet index, and incremental (session-deduped)
//! retrieval. Cache hits answer locally; misses pay the wireless link.
//! Prefetch traffic flows in the background and does not add to query
//! response time (it does count toward total bytes).
//!
//! **Naive system**: "we always retrieve objects with the highest
//! resolution and we use an R*-tree to index objects without using
//! multiple resolutions. We also use a simple LRU scheme for caching."
//! Whole objects are the retrieval unit; every miss ships a full-resolution
//! object over the link.

use crate::metrics::SystemMetrics;
use crate::server::Server;
use crate::speedmap::{LinearSpeedMap, SpeedResolutionMap};
use mar_buffer::{BlockCache, LruCache, MultiresPolicy, PrefetchContext, Prefetcher};
use mar_geom::{GridSpec, Rect2};
use mar_link::LinkConfig;
use mar_mesh::ResolutionBand;
use mar_motion::{MotionPredictor, PredictorConfig};
use mar_rtree::{RTree, RTreeConfig};
use mar_workload::{frame_at, Scene, Tour};
use std::collections::BTreeSet;

/// Shared system parameters.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Client buffer in bytes.
    pub buffer_bytes: f64,
    /// Query frame fraction (Fig. 14 uses 5 %).
    pub frame_frac: f64,
    /// Grid blocks per axis (motion-aware system).
    pub grid_blocks: u32,
    /// Prediction horizon (motion-aware system).
    pub horizon: u32,
    /// The wireless link.
    pub link: LinkConfig,
    /// Simulated duration of one tick — the frame deadline. Responses
    /// longer than this stall the display (counted as late frames).
    pub tick_seconds: f64,
    /// Drive the direction allocation from the empirical Markov model
    /// instead of the Kalman/RLS block probabilities.
    pub markov_directions: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            buffer_bytes: 64.0 * 1024.0,
            frame_frac: 0.05,
            grid_blocks: 25,
            horizon: 4,
            link: LinkConfig::paper(),
            tick_seconds: 1.0,
            markov_directions: false,
        }
    }
}

/// Runs the motion-aware system over a tour.
pub fn run_motion_aware_system(
    server: &Server,
    scene: &Scene,
    tour: &Tour,
    prefetcher: &mut dyn Prefetcher,
    cfg: &SystemConfig,
) -> SystemMetrics {
    let grid = GridSpec::new(scene.config.space, cfg.grid_blocks, cfg.grid_blocks);
    let session = server.connect();
    let speed_map = LinearSpeedMap;
    let policy = MultiresPolicy::new(cfg.buffer_bytes);
    // Sorted once in `SceneIndexData::build`; the closure shares the `Arc`
    // handle instead of deep-copying the magnitude vector.
    let data = server.core().data_arc();
    let total_coeffs = data.len() as f64;
    let coeff_bytes = data.coeff_bytes;
    let n_blocks = grid.block_count() as f64;
    let bytes_per_block = move |w: f64| -> f64 {
        let sorted_w = &data.sorted_w;
        let idx = sorted_w.partition_point(|&x| x < w);
        let frac = (sorted_w.len() - idx) as f64 / sorted_w.len().max(1) as f64;
        total_coeffs * frac * coeff_bytes / n_blocks
    };

    let mut cache = BlockCache::new(1);
    let mut predictor = MotionPredictor::new(PredictorConfig::default());
    let mut markov = cfg
        .markov_directions
        .then(|| mar_motion::MarkovDirectionModel::new(4, 0.97));
    let mut smooth = crate::speedmap::SmoothedSpeed::default();
    // The buffering policy follows the *cruising* speed: a 3-tick station
    // dwell must not collapse the prefetch resolution to full detail (and
    // the block budget to zero), but a genuine regime change should.
    let mut cruise = crate::speedmap::SmoothedSpeed::with_alphas(0.5, 0.008);
    let mut metrics = SystemMetrics::default();

    // Per-tick scratch, allocated once and reused across the whole tour so
    // the steady-state loop body allocates nothing.
    let mut frame_blocks: Vec<mar_geom::BlockId> = Vec::new();
    let mut misses: Vec<mar_geom::BlockId> = Vec::new();
    let mut predictions: Vec<mar_motion::Prediction> = Vec::new();
    let mut block_probs: std::collections::BTreeMap<mar_geom::BlockId, f64> =
        std::collections::BTreeMap::new();
    let mut markov_probs: Vec<f64> = Vec::new();
    let mut keep: Vec<mar_geom::BlockId> = Vec::new();

    for s in &tour.samples {
        let frame = frame_at(&scene.config.space, &s.pos, cfg.frame_frac);
        grid.blocks_overlapping_into(&frame, &mut frame_blocks);
        let speed = smooth.update(s.speed);
        let cruise_speed = cruise.update(s.speed);
        let needed = speed_map.band_for(speed);
        predictor.observe(s.pos);
        if let Some(m) = markov.as_mut() {
            m.observe(s.pos);
        }

        // Demand: misses pay one link round trip carrying their payload.
        cache.access_into(&frame_blocks, needed.w_min, &mut misses);
        let mut demand_bytes = 0.0;
        for b in &misses {
            let rect = grid.block_rect(b);
            let r = server
                .fetch_block(session, &rect, needed)
                // mar-lint: allow(D004) — the session was minted by connect above and stays live for the whole simulation
                .expect("system session vanished");
            demand_bytes += r.bytes;
            metrics.io += r.io;
        }
        cache.install_demand(&misses, needed.w_min);
        let response = if misses.is_empty() {
            0.0
        } else {
            cfg.link.request_time(demand_bytes, speed)
        };
        metrics.sim_time_s += response.max(cfg.tick_seconds);
        if response > cfg.tick_seconds {
            metrics.late_frames += 1;
        }
        metrics.response_times.push(response);
        metrics.bytes += demand_bytes;
        metrics.ticks += 1;

        // Background prefetch at the speed-scaled resolution, replanned
        // only when the demand path actually missed (the [15] model — no
        // server contact while the client stays inside the buffered
        // region).
        if misses.is_empty() && s.tick > 0 {
            continue;
        }
        let buffer_band = ResolutionBand::new(policy.buffer_w_min(cruise_speed), 1.0);
        // The byte budget is a *prefetch* budget: the frame's own blocks
        // live alongside it (the renderer holds the visible data anyway),
        // so the cache capacity is frame + prefetch budget.
        let budget = policy.block_budget(cruise_speed, &bytes_per_block);
        cache.set_capacity(frame_blocks.len() + budget);
        let horizon = crate::bufsim::adaptive_horizon(cfg.horizon, &grid, &predictor, budget);
        predictor.predict_horizon_into(horizon, &mut predictions);
        mar_motion::probability::gaussian_block_probabilities_into(
            &grid,
            &predictions,
            &mut block_probs,
        );
        let direction_hint = match markov.as_ref() {
            Some(m) => {
                m.probabilities_into(&mut markov_probs);
                Some(&markov_probs[..])
            }
            None => None,
        };
        let ctx = PrefetchContext {
            grid: &grid,
            position: s.pos,
            frame_blocks: &frame_blocks,
            budget,
            block_probs: &block_probs,
            direction_hint,
        };
        let plan = prefetcher.plan(&ctx);
        // Sorted scratch + binary search: same membership test the old
        // `BTreeSet` answered, without rebuilding a tree every replan.
        keep.clear();
        keep.extend(frame_blocks.iter().chain(plan.iter()).copied());
        keep.sort_unstable();
        cache.retain(|b| keep.binary_search(b).is_ok());
        for b in &plan {
            if !cache.contains(b, buffer_band.w_min) {
                let rect = grid.block_rect(b);
                if cache.install_prefetch(*b, buffer_band.w_min) {
                    let r = server
                        .fetch_block(session, &rect, buffer_band)
                        // mar-lint: allow(D004) — same live session as the demand path above
                        .expect("system session vanished");
                    metrics.bytes += r.bytes;
                    metrics.io += r.io;
                }
            }
        }
    }
    server
        .disconnect(session)
        // mar-lint: allow(D004) — disconnecting the session this function connected
        .expect("system session vanished");
    metrics
}

/// The naive system: full-resolution objects, an object-level R*-tree, and
/// an LRU object cache.
pub fn run_naive_system(
    server: &Server,
    scene: &Scene,
    tour: &Tour,
    cfg: &SystemConfig,
) -> SystemMetrics {
    // Object-level index over footprints.
    let items: Vec<(Rect2, u32)> = server
        .data()
        .footprints
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, i as u32))
        .collect();
    let tree: RTree<2, u32> = RTree::bulk_load(RTreeConfig::paper(), items);
    // LRU capacity: how many average full-resolution objects fit the buffer.
    let avg_object: f64 = server.data().object_bytes.iter().sum::<f64>()
        / server.data().object_bytes.len().max(1) as f64;
    let capacity = ((cfg.buffer_bytes / avg_object).floor() as usize).max(1);
    let mut lru: LruCache<u32, ()> = LruCache::new(capacity);
    // Objects currently on screen: the renderer holds them regardless of
    // the cache, so a tiny LRU cannot thrash on the visible set.
    let mut visible: BTreeSet<u32> = BTreeSet::new();
    let mut metrics = SystemMetrics::default();

    for s in &tour.samples {
        let frame = frame_at(&scene.config.space, &s.pos, cfg.frame_frac);
        let (hits, io) = tree.query(&frame);
        metrics.io += io;
        let mut bytes = 0.0;
        let mut now_visible = BTreeSet::new();
        for &obj in hits {
            now_visible.insert(obj);
            if !visible.contains(&obj) && lru.get(&obj).is_none() {
                bytes += server.data().object_bytes[obj as usize];
                lru.put(obj, ());
            }
        }
        visible = now_visible;
        let response = if bytes > 0.0 {
            cfg.link.request_time(bytes, s.speed)
        } else {
            0.0
        };
        metrics.sim_time_s += response.max(cfg.tick_seconds);
        if response > cfg.tick_seconds {
            metrics.late_frames += 1;
        }
        metrics.response_times.push(response);
        metrics.bytes += bytes;
        metrics.ticks += 1;
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_buffer::MotionAwarePrefetcher;
    use mar_workload::{tram_tour, SceneConfig, TourConfig};

    fn scene() -> Scene {
        let mut cfg = SceneConfig::paper(60, 8);
        cfg.levels = 3;
        cfg.target_bytes = 12_000_000.0; // 0.2 MB per object
        Scene::generate(cfg)
    }

    fn tour(speed: f64) -> Tour {
        tram_tour(&TourConfig::new(
            mar_workload::paper_space(),
            300,
            23,
            speed,
        ))
    }

    fn test_cfg() -> SystemConfig {
        SystemConfig {
            frame_frac: 0.15,
            ..Default::default()
        }
    }

    #[test]
    fn motion_aware_system_runs_and_measures() {
        let sc = scene();
        let server = Server::new(&sc);
        let mut p = MotionAwarePrefetcher::new(4);
        let m = run_motion_aware_system(&server, &sc, &tour(0.5), &mut p, &test_cfg());
        assert_eq!(m.ticks, 300);
        assert_eq!(m.response_times.len(), 300);
        assert!(m.bytes > 0.0);
        assert!(m.mean_response() >= 0.0);
    }

    #[test]
    fn naive_system_runs_and_measures() {
        let sc = scene();
        let server = Server::new(&sc);
        let m = run_naive_system(&server, &sc, &tour(0.5), &test_cfg());
        assert_eq!(m.ticks, 300);
        assert!(m.bytes > 0.0);
    }

    #[test]
    fn motion_aware_beats_naive_at_high_speed() {
        let sc = scene();
        let t = tour(1.0);
        let cfg = test_cfg();
        let server = Server::new(&sc);
        let mut p = MotionAwarePrefetcher::new(4);
        let ma = run_motion_aware_system(&server, &sc, &t, &mut p, &cfg);
        let nv = run_naive_system(&server, &sc, &t, &cfg);
        assert!(
            ma.mean_response() < nv.mean_response(),
            "motion-aware {:.3}s must beat naive {:.3}s at speed 1.0",
            ma.mean_response(),
            nv.mean_response()
        );
    }

    #[test]
    fn naive_degrades_with_speed() {
        let sc = scene();
        let server = Server::new(&sc);
        let cfg = test_cfg();
        let slow = run_naive_system(&server, &sc, &tour(0.01), &cfg);
        let fast = run_naive_system(&server, &sc, &tour(1.0), &cfg);
        assert!(
            fast.mean_response() > slow.mean_response(),
            "naive must degrade: slow {:.4}s fast {:.4}s",
            slow.mean_response(),
            fast.mean_response()
        );
    }
}

#[cfg(test)]
mod qos_tests {
    use super::*;
    use mar_buffer::MotionAwarePrefetcher;
    use mar_workload::{tram_tour, SceneConfig, TourConfig};

    #[test]
    fn late_frames_favor_motion_aware_at_speed() {
        let mut cfg = SceneConfig::paper(60, 8);
        cfg.levels = 3;
        cfg.target_bytes = 12_000_000.0;
        let scene = Scene::generate(cfg);
        let tour = tram_tour(&TourConfig::new(mar_workload::paper_space(), 300, 23, 1.0));
        let sys = SystemConfig {
            frame_frac: 0.15,
            ..Default::default()
        };
        let server = Server::new(&scene);
        let mut p = MotionAwarePrefetcher::new(4);
        let ma = run_motion_aware_system(&server, &scene, &tour, &mut p, &sys);
        let nv = run_naive_system(&server, &scene, &tour, &sys);
        // Bookkeeping: sim time is at least ticks × deadline, late frames
        // are bounded by ticks, and the rate is consistent.
        for m in [&ma, &nv] {
            assert!(m.sim_time_s >= m.ticks as f64 * sys.tick_seconds - 1e-9);
            assert!(m.late_frames <= m.ticks);
            assert!((0.0..=1.0).contains(&m.late_frame_rate()));
        }
        // The naive system stalls more at full speed.
        assert!(
            ma.late_frame_rate() <= nv.late_frame_rate(),
            "ma {:.3} vs naive {:.3}",
            ma.late_frame_rate(),
            nv.late_frame_rate()
        );
        // And its simulated tour takes longer in user time.
        assert!(ma.sim_time_s <= nv.sim_time_s);
    }
}
