//! The buffer-management simulation (Figs. 10–11).
//!
//! Drives a tour through the block-cache + prefetcher stack and reports
//! cache hit rate and data utilization. Per tick:
//!
//! 1. the motion predictor observes the client's position and produces
//!    visit probabilities for the surrounding blocks (§V-B);
//! 2. the frame's blocks are looked up in the cache at the resolution the
//!    current speed demands; misses are fetched from the server;
//! 3. the multiresolution policy converts the byte buffer into a block
//!    budget for the current speed, and the prefetcher fills it.
//!
//! The same loop runs with the [`mar_buffer::MotionAwarePrefetcher`] or
//! with the paper's naive equal-probability baseline — that switch is the
//! entire difference behind Fig. 10's gap.

use crate::metrics::BufferMetrics;
use crate::server::Server;
use crate::speedmap::{LinearSpeedMap, SpeedResolutionMap};
use mar_buffer::{BlockCache, MultiresPolicy, PrefetchContext, Prefetcher};
use mar_geom::GridSpec;
use mar_mesh::ResolutionBand;
use mar_motion::{MotionPredictor, PredictorConfig};
use mar_workload::{frame_at, Scene, Tour};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct BufferSimConfig {
    /// Client buffer size in bytes (paper: 16–128 KB).
    pub buffer_bytes: f64,
    /// Query-frame size as a fraction of the space (paper default: 0.1).
    pub frame_frac: f64,
    /// Number of grid blocks per axis.
    pub grid_blocks: u32,
    /// Prediction horizon in ticks.
    pub horizon: u32,
    /// Whether prefetching uses speed-scaled resolutions (§V last ¶).
    pub multires: bool,
    /// Drive the direction allocation from an empirical Markov direction
    /// model (the \[15\]-style estimator) instead of the Kalman/RLS block
    /// probabilities.
    pub markov_directions: bool,
    /// Resolution shift applied by the resilient protocol's graceful
    /// degradation (`degrade_step × level`, see DESIGN.md §11): both the
    /// demand band and the prefetch band are coarsened by this much, so a
    /// congested link trades fidelity for fewer bytes. `0.0` (default)
    /// reproduces the fault-free figures exactly.
    pub degrade_w: f64,
}

impl Default for BufferSimConfig {
    fn default() -> Self {
        Self {
            buffer_bytes: 64.0 * 1024.0,
            frame_frac: 0.1,
            grid_blocks: 25,
            horizon: 4,
            multires: true,
            markov_directions: false,
            degrade_w: 0.0,
        }
    }
}

/// Runs the buffer simulation for one tour with the given prefetcher.
pub fn run_buffer_sim(
    server: &Server,
    scene: &Scene,
    tour: &Tour,
    prefetcher: &mut dyn Prefetcher,
    cfg: &BufferSimConfig,
) -> BufferMetrics {
    let grid = GridSpec::new(scene.config.space, cfg.grid_blocks, cfg.grid_blocks);
    let session = server.connect();
    let speed_map = LinearSpeedMap;
    let policy = if cfg.multires {
        MultiresPolicy::new(cfg.buffer_bytes)
    } else {
        MultiresPolicy::full_resolution(cfg.buffer_bytes)
    };
    // Average block cost at a given resolution floor, from the scene-wide
    // magnitude distribution (planning estimate only; actual fetch bytes
    // come from real index queries). Sorted once in
    // `SceneIndexData::build`; the closure shares the `Arc` handle instead
    // of deep-copying the magnitude vector.
    let data = server.core().data_arc();
    let total_coeffs = data.len() as f64;
    let coeff_bytes = data.coeff_bytes;
    let n_blocks = grid.block_count() as f64;
    let frac_at_least = move |w: f64| -> f64 {
        // Fraction of coefficients with magnitude >= w.
        let sorted_w = &data.sorted_w;
        let idx = sorted_w.partition_point(|&x| x < w);
        (sorted_w.len() - idx) as f64 / sorted_w.len().max(1) as f64
    };
    let bytes_per_block =
        move |w: f64| -> f64 { total_coeffs * frac_at_least(w) * coeff_bytes / n_blocks };

    let mut cache = BlockCache::new(1);
    let mut predictor = MotionPredictor::new(PredictorConfig::default());
    let mut markov = cfg
        .markov_directions
        .then(|| mar_motion::MarkovDirectionModel::new(4, 0.97));
    let mut smooth = crate::speedmap::SmoothedSpeed::default();
    // The buffering policy follows the *cruising* speed: a 3-tick station
    // dwell must not collapse the prefetch resolution to full detail (and
    // the block budget to zero), but a genuine regime change should.
    let mut cruise = crate::speedmap::SmoothedSpeed::with_alphas(0.5, 0.008);
    let mut metrics = BufferMetrics::default();

    // Per-tick scratch, allocated once and reused across the whole tour so
    // the steady-state loop body allocates nothing.
    let mut frame_blocks: Vec<mar_geom::BlockId> = Vec::new();
    let mut misses: Vec<mar_geom::BlockId> = Vec::new();
    let mut predictions: Vec<mar_motion::Prediction> = Vec::new();
    let mut block_probs: std::collections::BTreeMap<mar_geom::BlockId, f64> =
        std::collections::BTreeMap::new();
    let mut markov_probs: Vec<f64> = Vec::new();
    let mut keep: Vec<mar_geom::BlockId> = Vec::new();

    for s in &tour.samples {
        let frame = frame_at(&scene.config.space, &s.pos, cfg.frame_frac);
        grid.blocks_overlapping_into(&frame, &mut frame_blocks);
        let speed = smooth.update(s.speed);
        let cruise_speed = cruise.update(s.speed);
        let demand = speed_map.band_for(speed);
        // Under degradation the demand band coarsens with the same shift
        // as the prefetch band below.
        let needed = ResolutionBand::new(
            (demand.w_min + cfg.degrade_w).min(demand.w_max),
            demand.w_max,
        );

        predictor.observe(s.pos);
        if let Some(m) = markov.as_mut() {
            m.observe(s.pos);
        }

        // Demand path: look up, fetch misses.
        cache.access_into(&frame_blocks, needed.w_min, &mut misses);
        for b in &misses {
            let rect = grid.block_rect(b);
            let r = server
                .fetch_block(session, &rect, needed)
                // mar-lint: allow(D004) — the session was minted by connect above and stays live for the whole simulation
                .expect("bufsim session vanished");
            metrics.demand_bytes += r.bytes;
        }
        cache.install_demand(&misses, needed.w_min);

        // Prefetch path — replanned only on a miss (the [15] model: "the
        // client does not need to contact the server as long as it remains
        // in the buffered region"; the N(j) blocks of Eq. 1 are fetched at
        // the j-th miss). How well the prefetched region is *placed*
        // therefore directly determines the miss frequency — which is the
        // entire Fig. 10 gap between motion-aware and naive.
        if misses.is_empty() && s.tick > 0 {
            continue;
        }
        let mut contact_blocks = misses.len() as u64;
        let buffer_band = ResolutionBand::new(
            policy.buffer_w_min_degraded(cruise_speed, cfg.degrade_w),
            1.0,
        );
        // The byte budget is a *prefetch* budget: the frame's own blocks
        // live alongside it (the renderer holds the visible data anyway),
        // so the cache capacity is frame + prefetch budget.
        let budget = policy.block_budget_degraded(cruise_speed, cfg.degrade_w, &bytes_per_block);
        cache.set_capacity(frame_blocks.len() + budget);
        let horizon = adaptive_horizon(cfg.horizon, &grid, &predictor, budget);
        predictor.predict_horizon_into(horizon, &mut predictions);
        mar_motion::probability::gaussian_block_probabilities_into(
            &grid,
            &predictions,
            &mut block_probs,
        );
        let direction_hint = match markov.as_ref() {
            Some(m) => {
                m.probabilities_into(&mut markov_probs);
                Some(&markov_probs[..])
            }
            None => None,
        };
        let ctx = PrefetchContext {
            grid: &grid,
            position: s.pos,
            frame_blocks: &frame_blocks,
            budget,
            block_probs: &block_probs,
            direction_hint,
        };
        let plan = prefetcher.plan(&ctx);
        // Keep the frame plus the plan; evict the rest. Sorted scratch +
        // binary search: same membership test the old `BTreeSet` answered,
        // without rebuilding a tree every replan.
        keep.clear();
        keep.extend(frame_blocks.iter().chain(plan.iter()).copied());
        keep.sort_unstable();
        cache.retain(|b| keep.binary_search(b).is_ok());
        for b in &plan {
            if !cache.contains(b, buffer_band.w_min) {
                let rect = grid.block_rect(b);
                let (bytes, _) = server.block_bytes_stateless(&rect, buffer_band);
                if cache.install_prefetch(*b, buffer_band.w_min) {
                    metrics.prefetch_bytes += bytes;
                    contact_blocks += 1;
                }
            }
        }
        metrics.blocks_per_miss.push(contact_blocks);
    }
    let s = cache.stats();
    metrics.lookups = s.lookups;
    metrics.hits = s.hits;
    metrics.prefetched = s.prefetched;
    metrics.prefetched_used = s.prefetched_used;
    server
        .disconnect(session)
        // mar-lint: allow(D004) — disconnecting the session this function connected
        .expect("bufsim session vanished");
    metrics
}

/// Prediction horizon adapted to the block-crossing time: the predictor
/// must see a few blocks ahead for the allocation to have anything to
/// place, whether the client crawls (long horizon) or sprints (short).
pub(crate) fn adaptive_horizon(
    base: u32,
    grid: &mar_geom::GridSpec,
    predictor: &MotionPredictor,
    budget: usize,
) -> u32 {
    let step = predictor
        .speed()
        .max(grid.block_w().min(grid.block_h()) / 64.0);
    let reach_blocks = 2.0 + (budget as f64).sqrt() * 0.5;
    let ticks = (reach_blocks * grid.block_w().min(grid.block_h()) / step).ceil() as u32;
    ticks.clamp(base, 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
    use mar_workload::{tram_tour, SceneConfig, TourConfig};

    fn scene() -> Scene {
        let mut cfg = SceneConfig::paper(10, 5);
        cfg.levels = 3;
        cfg.target_bytes = 2_000_000.0;
        Scene::generate(cfg)
    }

    fn tour(speed: f64) -> Tour {
        tram_tour(&TourConfig::new(
            mar_workload::paper_space(),
            250,
            17,
            speed,
        ))
    }

    #[test]
    fn simulation_produces_sane_metrics() {
        let sc = scene();
        let server = Server::new(&sc);
        let mut p = MotionAwarePrefetcher::new(4);
        let m = run_buffer_sim(
            &server,
            &sc,
            &tour(0.5),
            &mut p,
            &BufferSimConfig::default(),
        );
        assert!(m.lookups > 0);
        assert!(m.hits <= m.lookups);
        assert!((0.0..=1.0).contains(&m.hit_rate()));
        assert!((0.0..=1.0).contains(&m.utilization()));
        assert!(m.prefetched > 0, "prefetcher must act");
    }

    #[test]
    fn motion_aware_beats_naive_hit_rate_on_trams() {
        // The paper's buffers are tiny against the dataset (16-128 KB vs
        // 20-80 MB); keep that proportion so prefetch placement matters.
        let sc = scene();
        let cfg = BufferSimConfig {
            buffer_bytes: 2048.0,
            ..Default::default()
        };
        let mut hit_ma = 0.0;
        let mut hit_nv = 0.0;
        for seed in [17u64, 18, 19] {
            let t = tram_tour(&TourConfig::new(
                mar_workload::paper_space(),
                400,
                seed,
                0.5,
            ));
            let server = Server::new(&sc);
            let mut ma = MotionAwarePrefetcher::new(4);
            hit_ma += run_buffer_sim(&server, &sc, &t, &mut ma, &cfg).hit_rate();
            let server2 = Server::new(&sc);
            let mut nv = NaivePrefetcher;
            hit_nv += run_buffer_sim(&server2, &sc, &t, &mut nv, &cfg).hit_rate();
        }
        assert!(
            hit_ma > hit_nv,
            "motion-aware {:.3} must beat naive {:.3} (3-seed sums)",
            hit_ma,
            hit_nv
        );
    }

    #[test]
    fn degradation_trades_bytes_for_fidelity() {
        // The resilient protocol's coarsening shift must actually shrink
        // the traffic when threaded through the buffer stack: same tour,
        // same buffer, fewer bytes on the wire — never zero coverage.
        let sc = scene();
        let t = tour(0.5);
        let run = |degrade_w: f64| {
            let server = Server::new(&sc);
            let mut p = MotionAwarePrefetcher::new(4);
            let cfg = BufferSimConfig {
                degrade_w,
                ..Default::default()
            };
            run_buffer_sim(&server, &sc, &t, &mut p, &cfg)
        };
        let full = run(0.0);
        let degraded = run(0.45);
        let bytes = |m: &BufferMetrics| m.demand_bytes + m.prefetch_bytes;
        assert!(
            bytes(&degraded) < bytes(&full),
            "degraded {} must move fewer bytes than full {}",
            bytes(&degraded),
            bytes(&full)
        );
        assert!(degraded.lookups > 0 && degraded.demand_bytes > 0.0);
        // degrade_w = 0 is exactly the fault-free simulation.
        let zero = run(0.0);
        assert_eq!(bytes(&zero), bytes(&full));
    }

    #[test]
    fn bigger_buffer_does_not_hurt_hit_rate() {
        let sc = scene();
        let t = tour(0.5);
        let mut hit_small = 0.0;
        let mut hit_big = 0.0;
        for (bytes, out) in [
            (16.0 * 1024.0, &mut hit_small),
            (128.0 * 1024.0, &mut hit_big),
        ] {
            let server = Server::new(&sc);
            let mut p = MotionAwarePrefetcher::new(4);
            let cfg = BufferSimConfig {
                buffer_bytes: bytes,
                ..Default::default()
            };
            *out = run_buffer_sim(&server, &sc, &t, &mut p, &cfg).hit_rate();
        }
        assert!(
            hit_big >= hit_small - 0.02,
            "128K {hit_big} vs 16K {hit_small}"
        );
    }
}

#[cfg(test)]
mod eq1_tests {
    use super::*;
    use mar_buffer::{MotionAwarePrefetcher, NaivePrefetcher};
    use mar_link::{LinkConfig, TransferCostModel};
    use mar_workload::{tram_tour, SceneConfig, TourConfig};

    #[test]
    fn eq1_cost_tracks_miss_frequency() {
        // The Eq. 1 cost of a tour must strictly reflect the recorded
        // server contacts: fewer misses (better prefetching) ⇒ lower cost
        // for comparable per-contact block counts.
        let mut cfg = SceneConfig::paper(20, 31);
        cfg.levels = 3;
        cfg.target_bytes = 4_000_000.0;
        let scene = Scene::generate(cfg);
        let tour = tram_tour(&TourConfig::new(mar_workload::paper_space(), 300, 5, 0.5));
        let sim_cfg = BufferSimConfig {
            buffer_bytes: 32.0 * 1024.0,
            ..Default::default()
        };
        let model = TransferCostModel::from_link(&LinkConfig::paper(), 4096.0);
        let server = Server::new(&scene);
        let mut ma = MotionAwarePrefetcher::new(4);
        let m_ma = run_buffer_sim(&server, &scene, &tour, &mut ma, &sim_cfg);
        let server2 = Server::new(&scene);
        let mut nv = NaivePrefetcher;
        let m_nv = run_buffer_sim(&server2, &scene, &tour, &mut nv, &sim_cfg);
        // Both recorded at least one contact, and the cost is positive and
        // composed of exactly miss_count() connection charges.
        for m in [&m_ma, &m_nv] {
            assert!(m.miss_count() >= 1);
            let cost = m.eq1_cost(&model);
            let min_cost = m.miss_count() as f64 * model.connection_cost;
            assert!(cost >= min_cost);
        }
        // Consistency: blocks_per_miss sums to everything fetched.
        let total_blocks: u64 = m_ma.blocks_per_miss.iter().sum();
        assert!(total_blocks >= m_ma.miss_count());
    }
}
