//! Scene-wide coefficient records: the unit of indexing and transmission.

use mar_geom::{Point2, Rect2, Rect3};
use mar_mesh::support::compute_support_regions;
use mar_workload::Scene;

/// Identity of one wavelet coefficient within a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoeffRef {
    /// Object id within the scene.
    pub object: u32,
    /// Index into that object's `coeffs` array.
    pub coeff: u32,
}

/// Everything the server's indexes need to know about one coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoeffRecord {
    /// Which coefficient this is.
    pub id: CoeffRef,
    /// Normalised magnitude `w ∈ [0, 1]`.
    pub w: f64,
    /// Subdivision level.
    pub level: u8,
    /// Ground-plane MBR of the coefficient's support region (§VI-A).
    pub support_xy: Rect2,
    /// Full 3-D MBB of the support region — what the paper's complete
    /// 4-D (`x-y-z-w`) design indexes.
    pub support_xyz: Rect3,
    /// Ground-plane position of the coefficient's vertex (what the naive
    /// point index stores).
    pub vertex_xy: Point2,
    /// Ground-plane MBR of the vertex's 1-ring (the "neighbouring
    /// vertices" the naive access method must chase).
    pub ring_xy: Rect2,
}

/// Per-scene derived data shared by every index and the server: one record
/// per coefficient, plus per-object footprints and byte sizes.
#[derive(Debug, Clone)]
pub struct SceneIndexData {
    /// All coefficient records, ordered by object then coefficient index.
    pub records: Vec<CoeffRecord>,
    /// Ground-plane footprint of each object.
    pub footprints: Vec<Rect2>,
    /// Wire bytes of one coefficient.
    pub coeff_bytes: f64,
    /// Wire bytes of each object's base mesh.
    pub base_bytes: Vec<f64>,
    /// Wire bytes of each object at full resolution.
    pub object_bytes: Vec<f64>,
    /// Every coefficient magnitude, sorted ascending (`total_cmp`).
    /// Computed once at build time so the per-run planning closures in the
    /// system and buffer simulations (`bytes_per_block`) can
    /// `partition_point` directly instead of re-sorting per run.
    pub sorted_w: Vec<f64>,
}

impl SceneIndexData {
    /// Extracts records from a generated scene (support regions are
    /// computed here, once, and shared by all indexes).
    pub fn build(scene: &Scene) -> Self {
        let mut records = Vec::with_capacity(scene.total_coeffs());
        let mut footprints = Vec::with_capacity(scene.objects.len());
        let mut base_bytes = Vec::with_capacity(scene.objects.len());
        let mut object_bytes = Vec::with_capacity(scene.objects.len());
        for obj in &scene.objects {
            let supports = compute_support_regions(&obj.mesh);
            for (ci, (c, s)) in obj.mesh.coeffs.iter().zip(&supports).enumerate() {
                debug_assert_eq!(s.coeff_index, ci);
                let v = obj.mesh.vertex_position(c.vertex);
                // Ring MBR over the support polygon's vertices.
                let mut lo = v;
                let mut hi = v;
                for &rv in &s.ring {
                    let p = obj.mesh.vertex_position(rv);
                    lo = lo.min(&p);
                    hi = hi.max(&p);
                }
                records.push(CoeffRecord {
                    id: CoeffRef {
                        object: obj.id,
                        coeff: ci as u32,
                    },
                    w: c.w,
                    level: c.level,
                    support_xy: s.mbr_xy(),
                    support_xyz: s.mbb,
                    vertex_xy: Point2::new([v[0], v[1]]),
                    ring_xy: Rect2::from_corners(
                        Point2::new([lo[0], lo[1]]),
                        Point2::new([hi[0], hi[1]]),
                    ),
                });
            }
            footprints.push(obj.footprint());
            base_bytes.push(scene.size_model.base_bytes(&obj.mesh));
            object_bytes.push(scene.size_model.object_bytes(&obj.mesh));
        }
        let mut sorted_w: Vec<f64> = records.iter().map(|r| r.w).collect();
        sorted_w.sort_by(f64::total_cmp);
        Self {
            records,
            footprints,
            coeff_bytes: scene.size_model.coeff_bytes,
            base_bytes,
            object_bytes,
            sorted_w,
        }
    }

    /// Number of coefficient records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the scene had no coefficients.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_workload::{Placement, Scene, SceneConfig};

    fn tiny_scene() -> Scene {
        let mut cfg = SceneConfig::paper(4, 11);
        cfg.levels = 2;
        cfg.placement = Placement::Uniform;
        cfg.target_bytes = 100_000.0;
        Scene::generate(cfg)
    }

    #[test]
    fn one_record_per_coefficient() {
        let scene = tiny_scene();
        let data = SceneIndexData::build(&scene);
        assert_eq!(data.len(), scene.total_coeffs());
        assert_eq!(data.footprints.len(), 4);
    }

    #[test]
    fn support_contains_vertex_and_ring_contains_support_vertex() {
        let scene = tiny_scene();
        let data = SceneIndexData::build(&scene);
        for r in &data.records {
            assert!(r.support_xy.contains_point(&r.vertex_xy));
            assert!(r.ring_xy.contains_point(&r.vertex_xy));
        }
    }

    #[test]
    fn supports_inside_object_footprint() {
        let scene = tiny_scene();
        let data = SceneIndexData::build(&scene);
        for r in &data.records {
            let fp = &data.footprints[r.id.object as usize];
            assert!(
                fp.contains_rect(&r.support_xy),
                "support {:?} outside footprint {:?}",
                r.support_xy,
                fp
            );
        }
    }

    #[test]
    fn byte_accounting_consistent() {
        let scene = tiny_scene();
        let data = SceneIndexData::build(&scene);
        let total: f64 = data.object_bytes.iter().sum();
        assert!((total - scene.total_bytes()).abs() < 1.0);
        for (i, ob) in data.object_bytes.iter().enumerate() {
            let coeffs_of_obj = data
                .records
                .iter()
                .filter(|r| r.id.object == i as u32)
                .count();
            let expect = data.base_bytes[i] + data.coeff_bytes * coeffs_of_obj as f64;
            assert!((ob - expect).abs() < 1e-6);
        }
    }
}
