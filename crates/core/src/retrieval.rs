//! Algorithm 1 — `ContinuousDataRetrieval` (§IV).
//!
//! ```text
//! O_t ← Q_t ∩ Q_{t−1}
//! N_t ← Q_t − Q_{t−1}
//! r_t ← MapSpeedToResolution(s_t)
//! if O_t ≠ ∅:
//!     if r_t > r_{t−1}:  R_t ← Retrieve({(O_t, r_{t−1}, r_t), (N_t, 0, r_t)})
//!     else:              R_t ← Retrieve({(N_t, 0, r_t)})
//! else:                  R_t ← Retrieve({(Q_t, 0, r_t)})
//! ```
//!
//! In wavelet-band terms, "resolution `r`" is the band `[w_min(r), 1.0]`,
//! and "`r_t > r_{t−1}`" (more detail) means `w_min(t) < w_min(t−1)`: the
//! overlap region needs exactly the band `[w_min(t), w_min(t−1))` on top of
//! what the client holds. The region difference `N_t` is decomposed into
//! disjoint rectangles by [`mar_geom::Rect::difference`] (the paper's
//! Figure 3 sub-query split), each retrieved at the full band for `r_t`.

use crate::metrics::RetrievalMetrics;
use crate::server::{QueryRegion, QueryResult, Server};
use crate::speedmap::SpeedResolutionMap;
use mar_geom::Rect2;
use mar_mesh::ResolutionBand;

/// The frame-to-frame planning state of Algorithm 1, factored out of the
/// client so both the plain [`IncrementalClient`] and the fault-tolerant
/// [`crate::resilient::ResilientClient`] share one implementation of the
/// overlap/difference decomposition.
#[derive(Debug, Default, Clone, Copy)]
pub struct FramePlanner {
    prev_frame: Option<Rect2>,
    prev_band: Option<ResolutionBand>,
}

impl FramePlanner {
    /// A planner with no history: the next plan queries the whole frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sub-queries Algorithm 1 issues for `frame` at `band`, given the
    /// last *committed* frame. Does not advance the state — a retried or
    /// failed query must not count as delivered.
    pub fn plan(&self, frame: &Rect2, band: ResolutionBand) -> Vec<QueryRegion> {
        let mut regions = Vec::new();
        match self.prev_frame {
            Some(prev) if prev.intersects(frame) => {
                // mar-lint: allow(D004) — guarded by the `intersects` match arm
                let overlap = frame.intersection(&prev).expect("checked intersects");
                // mar-lint: allow(D004) — always set together with `prev_frame`
                let prev_band = self.prev_band.expect("band recorded with frame");
                if band.w_min < prev_band.w_min {
                    // Finer resolution needed: fetch the missing band over
                    // the overlap.
                    regions.push(QueryRegion {
                        region: overlap,
                        band: ResolutionBand::new(band.w_min, prev_band.w_min),
                    });
                }
                for part in frame.difference(&prev) {
                    regions.push(QueryRegion { region: part, band });
                }
            }
            _ => regions.push(QueryRegion {
                region: *frame,
                band,
            }),
        }
        regions
    }

    /// Records that `frame` was retrieved at `band`: the next plan is
    /// incremental against it.
    pub fn commit(&mut self, frame: Rect2, band: ResolutionBand) {
        self.prev_frame = Some(frame);
        self.prev_band = Some(band);
    }

    /// Forgets the history — used when the client had to reconnect with a
    /// fresh (empty-filter) session and must refetch from scratch.
    pub fn reset(&mut self) {
        self.prev_frame = None;
        self.prev_band = None;
    }

    /// The last committed frame, if any.
    pub fn prev_frame(&self) -> Option<Rect2> {
        self.prev_frame
    }
}

/// The incremental motion-aware client of §IV (no buffering — that layer
/// is `mar-buffer` / [`crate::system`]).
#[derive(Debug)]
pub struct IncrementalClient<M: SpeedResolutionMap> {
    session: u64,
    map: M,
    planner: FramePlanner,
    metrics: RetrievalMetrics,
}

impl<M: SpeedResolutionMap> IncrementalClient<M> {
    /// Connects a new client to the server.
    pub fn connect(server: &Server, map: M) -> Self {
        Self {
            session: server.connect(),
            map,
            planner: FramePlanner::new(),
            metrics: RetrievalMetrics::default(),
        }
    }

    /// The sub-queries Algorithm 1 would issue for this frame, without
    /// executing them (used by tests and by the buffered system).
    pub fn plan(&self, frame: &Rect2, speed: f64) -> Vec<QueryRegion> {
        self.planner.plan(frame, self.map.band_for(speed))
    }

    /// Executes one query frame; returns the server's (session-filtered)
    /// result.
    pub fn tick(&mut self, server: &Server, frame: Rect2, speed: f64) -> QueryResult {
        let band = self.map.band_for(speed);
        let regions = self.planner.plan(&frame, band);
        let result = server
            .query(self.session, &regions)
            // mar-lint: allow(D004) — the session was minted by `connect` above and
            // this client never disconnects it; an unknown id here is a bug
            .expect("client session vanished");
        self.planner.commit(frame, band);
        self.metrics.ticks += 1;
        self.metrics.bytes += result.bytes;
        self.metrics.coeffs += result.coeffs;
        self.metrics.io += result.io;
        self.metrics.bytes_per_tick.push(result.bytes);
        result
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &RetrievalMetrics {
        &self.metrics
    }

    /// The session id on the server.
    pub fn session(&self) -> u64 {
        self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedmap::LinearSpeedMap;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(8, 33);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    fn frame(x: f64, y: f64) -> Rect2 {
        Rect2::new(Point2::new([x, y]), Point2::new([x + 200.0, y + 200.0]))
    }

    #[test]
    fn first_tick_queries_whole_frame() {
        let srv = server();
        let client = IncrementalClient::connect(&srv, LinearSpeedMap);
        let plan = client.plan(&frame(100.0, 100.0), 0.5);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].region, frame(100.0, 100.0));
        assert_eq!(plan[0].band.w_min, 0.5);
    }

    #[test]
    fn overlapping_frames_query_only_the_difference() {
        let srv = server();
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        client.tick(&srv, frame(100.0, 100.0), 0.5);
        // Same speed, slight move: plan must not include the overlap.
        let plan = client.plan(&frame(150.0, 100.0), 0.5);
        assert_eq!(plan.len(), 1, "single new slab for a pure x move");
        let part = plan[0].region;
        assert!(
            part.lo[0] >= 300.0 - 1e-9,
            "part {part:?} must start at old hi"
        );
    }

    #[test]
    fn speeding_up_fetches_nothing_for_overlap() {
        let srv = server();
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        client.tick(&srv, frame(100.0, 100.0), 0.2);
        let plan = client.plan(&frame(120.0, 120.0), 0.8);
        // Coarser need (w_min 0.8 > 0.2): overlap already satisfied.
        assert!(plan.iter().all(|q| q.band.w_min == 0.8));
        assert_eq!(plan.len(), 2, "L-shaped difference = two slabs");
    }

    #[test]
    fn slowing_down_fetches_band_delta_over_overlap() {
        let srv = server();
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        client.tick(&srv, frame(100.0, 100.0), 0.8);
        let plan = client.plan(&frame(100.0, 100.0), 0.2);
        // Identical frame, finer need: exactly one overlap band query.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].band.w_min, 0.2);
        assert_eq!(plan[0].band.w_max, 0.8);
    }

    #[test]
    fn disjoint_jump_requeries_everything() {
        let srv = server();
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        client.tick(&srv, frame(0.0, 0.0), 0.3);
        let plan = client.plan(&frame(700.0, 700.0), 0.3);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].region, frame(700.0, 700.0));
    }

    #[test]
    fn stationary_client_retrieves_once() {
        // Anchor the frame on a real object so the first tick has data to
        // fetch no matter where the seeded placement put things.
        let mut cfg = SceneConfig::paper(8, 33);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        let scene = Scene::generate(cfg);
        let c = scene.objects[0].footprint().center();
        let srv = Server::new(&scene);
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        let f = frame(c[0] - 100.0, c[1] - 100.0);
        let r1 = client.tick(&srv, f, 0.0);
        let r2 = client.tick(&srv, f, 0.0);
        let r3 = client.tick(&srv, f, 0.0);
        assert!(r1.bytes > 0.0);
        assert_eq!(r2.bytes + r3.bytes, 0.0, "no motion, no new data");
    }

    #[test]
    fn faster_clients_retrieve_fewer_bytes_over_a_sweep() {
        // Sweep the same path at two speeds; the fast client's per-frame
        // resolution band is narrower so its total bytes are smaller, even
        // though it covers the same ground.
        let total = |speed: f64| {
            let srv = server();
            let mut c = IncrementalClient::connect(&srv, LinearSpeedMap);
            for i in 0..20 {
                c.tick(&srv, frame(40.0 * i as f64, 300.0), speed);
            }
            c.metrics().bytes
        };
        let slow = total(0.01);
        let fast = total(0.9);
        assert!(
            fast < slow * 0.6,
            "fast sweep {fast} must be well below slow sweep {slow}"
        );
    }

    #[test]
    fn incremental_equals_fresh_when_revisiting_is_free() {
        // Running a path twice costs the same as once (server-side dedup).
        let srv = server();
        let mut c = IncrementalClient::connect(&srv, LinearSpeedMap);
        for _round in 0..2 {
            for i in 0..10 {
                c.tick(&srv, frame(50.0 * i as f64, 400.0), 0.3);
            }
        }
        let bytes_two_rounds = c.metrics().bytes;
        let srv2 = server();
        let mut c2 = IncrementalClient::connect(&srv2, LinearSpeedMap);
        for i in 0..10 {
            c2.tick(&srv2, frame(50.0 * i as f64, 400.0), 0.3);
        }
        assert!((bytes_two_rounds - c2.metrics().bytes).abs() < 1e-6);
    }
}

impl<M: SpeedResolutionMap> IncrementalClient<M> {
    /// Executes one query frame defined by a directional view frustum
    /// (§I: retrieval follows "the client's location and view direction").
    ///
    /// The frustum's bounding rectangle drives Algorithm 1 — including the
    /// overlap/difference decomposition against the previous frame — so
    /// turning the head retrieves only newly visible regions. The result
    /// may include data outside the exact fan (the index is rectangular);
    /// a renderer culls it locally, and it stays cached for the next turn.
    pub fn tick_frustum(
        &mut self,
        server: &Server,
        frustum: &mar_geom::Frustum,
        speed: f64,
    ) -> QueryResult {
        self.tick(server, frustum.bounding_rect(), speed)
    }
}

#[cfg(test)]
mod frustum_tests {
    use super::*;
    use crate::speedmap::LinearSpeedMap;
    use mar_geom::{Frustum, Point2};
    use mar_workload::{Scene, SceneConfig};
    use std::f64::consts::FRAC_PI_2;

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(10, 51);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    #[test]
    fn turning_in_place_retrieves_incrementally() {
        let srv = server();
        let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
        let apex = Point2::new([500.0, 500.0]);
        // Look east, then rotate by 90° steps: after a full turn the
        // client has seen (at most) the whole disc once.
        let mut total = 0.0;
        for i in 0..8 {
            let f = Frustum::new(apex, i as f64 * FRAC_PI_2 / 2.0, FRAC_PI_2, 200.0);
            let r = client.tick_frustum(&srv, &f, 0.1);
            total += r.bytes;
        }
        // Second full sweep: everything already cached server-side.
        let mut second = 0.0;
        for i in 0..8 {
            let f = Frustum::new(apex, i as f64 * FRAC_PI_2 / 2.0, FRAC_PI_2, 200.0);
            second += client.tick_frustum(&srv, &f, 0.1).bytes;
        }
        assert!(total > 0.0 || second == 0.0);
        assert_eq!(second, 0.0, "a repeated sweep must be free");
    }

    #[test]
    fn narrow_view_retrieves_less_than_wide_view() {
        let apex = Point2::new([500.0, 500.0]);
        let bytes_for = |fov: f64| {
            let srv = server();
            let mut client = IncrementalClient::connect(&srv, LinearSpeedMap);
            let f = Frustum::new(apex, 0.0, fov, 300.0);
            client.tick_frustum(&srv, &f, 0.2).bytes
        };
        let narrow = bytes_for(0.3);
        let wide = bytes_for(std::f64::consts::TAU);
        assert!(
            narrow <= wide,
            "narrow view ({narrow}) cannot exceed the full disc ({wide})"
        );
    }
}
