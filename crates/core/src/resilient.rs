//! The fault-tolerant retrieval protocol: Algorithm 1 hardened for a
//! hostile wireless link.
//!
//! The plain [`IncrementalClient`](crate::IncrementalClient) assumes every
//! request succeeds. Over a [`mar_link::FaultyLink`] three things go
//! wrong, and this module answers each (DESIGN.md §11):
//!
//! * **Request loss** → *retry with capped exponential backoff*. Losses
//!   happen before the server processes the request, so a retry is
//!   exactly-once safe; each attempt consumes a fresh fault-schedule slot.
//! * **Session drop** → *resume, don't restart*. The transport dies but
//!   the server-side session (and its sent-filter) does not:
//!   [`Server::resume`] reattaches by token and nothing already delivered
//!   is re-sent. Only if the server no longer knows the token does the
//!   client [`Server::connect`] fresh and reset its planner (everything
//!   must be refetched — the new session's filter is empty).
//! * **Sustained congestion** → *graceful degradation*. The client tracks
//!   the ratio of ideal (Eq. 1 fault-free) to actual time over a sliding
//!   window; when it falls below `enter_ratio` the speed→resolution map
//!   shifts one band coarser — trading fidelity for liveness exactly as
//!   §IV's multiresolution design intends — and recovers one level at a
//!   time once the ratio clears `exit_ratio` (hysteresis, so a single good
//!   tick does not flap the resolution back).
//!
//! All time is simulated ([`SimClock`]); the whole protocol is
//! deterministic for a fixed fault seed.

use crate::retrieval::FramePlanner;
use crate::server::{QueryResult, Server, SessionError};
use crate::speedmap::SpeedResolutionMap;
use mar_geom::Rect2;
use mar_link::{splitmix64, u01, FaultyLink, LinkError, SimClock};
use mar_mesh::ResolutionBand;
use std::collections::VecDeque;

/// Retry, resumption and degradation policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientPolicy {
    /// First backoff after a lost request, seconds.
    pub base_backoff_s: f64,
    /// Backoff ceiling, seconds.
    pub max_backoff_s: f64,
    /// Attempts per tick before the client gives up (anti-livelock bound;
    /// at ≤ 20 % loss it is effectively unreachable).
    pub max_attempts: u32,
    /// Sliding-window length (contact ticks) for the goodput estimate.
    pub window: usize,
    /// Degrade one band when `ideal/actual` falls below this.
    pub enter_ratio: f64,
    /// Recover one band when `ideal/actual` rises above this.
    pub exit_ratio: f64,
    /// How much `w_min` rises per degradation level.
    pub degrade_step: f64,
    /// Maximum degradation levels.
    pub max_degrade: u32,
}

impl Default for ResilientPolicy {
    fn default() -> Self {
        Self {
            base_backoff_s: 0.25,
            max_backoff_s: 4.0,
            max_attempts: 64,
            window: 8,
            enter_ratio: 0.5,
            exit_ratio: 0.8,
            degrade_step: 0.15,
            max_degrade: 4,
        }
    }
}

impl ResilientPolicy {
    /// The backoff before retry number `retry` (0-based), capped.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        let exp = retry.min(16); // 2^16 × base already exceeds any sane cap
        (self.base_backoff_s * (1u64 << exp) as f64).min(self.max_backoff_s)
    }

    /// The backoff before retry `retry`, scaled by a deterministic jitter
    /// factor in `[0.5, 1.5)` drawn from [`splitmix64`] over the client's
    /// fault-stream key and its cumulative retry count. Two clients
    /// retrying after the same outage back off at *decorrelated* times —
    /// no synchronized retry storm can hammer a recovering shard — yet
    /// each client's sequence is byte-identical across runs and thread
    /// counts (the jitter is a pure function, never a wall clock). The
    /// result stays capped at `max_backoff_s` like the base schedule.
    pub fn jittered_backoff_s(&self, retry: u32, stream: u64, seq: u64) -> f64 {
        let h = splitmix64(stream ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let factor = 0.5 + u01(h);
        (self.backoff_s(retry) * factor).min(self.max_backoff_s)
    }

    /// `band` coarsened by `level` degradation steps: the sliding
    /// speed→resolution shift of DESIGN.md §11.
    pub fn degraded_band(&self, band: ResolutionBand, level: u32) -> ResolutionBand {
        let w_min = (band.w_min + self.degrade_step * level as f64).min(band.w_max);
        ResolutionBand::new(w_min, band.w_max)
    }
}

/// Why a resilient tick could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// `max_attempts` consecutive failures — the link is effectively down.
    GaveUp {
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// The server rejected the session and a fresh connect also failed to
    /// take (never happens with the in-process server; kept typed for
    /// completeness).
    Session(SessionError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::GaveUp { attempts } => write!(f, "gave up after {attempts} attempts"),
            Self::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// What one resilient tick did, beyond the query result itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientTick {
    /// The (session-filtered) payload the server delivered.
    pub result: QueryResult,
    /// Lost requests retried this tick.
    pub retries: u32,
    /// Transport drops survived this tick.
    pub drops: u32,
    /// Whether any drop was healed by `Server::resume` (filter retained).
    pub resumed: bool,
    /// Degradation level in force when the query was issued.
    pub degrade_level: u32,
    /// The `w_min` actually requested (after degradation).
    pub band_w_min: f64,
    /// Simulated seconds this tick spent on the link (incl. waits).
    pub tick_time_s: f64,
    /// What a fault-free link would have spent on the same payload.
    pub ideal_time_s: f64,
}

/// Cumulative protocol metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceMetrics {
    /// Ticks executed.
    pub ticks: u64,
    /// Ticks that contacted the server at all.
    pub contact_ticks: u64,
    /// Total lost-request retries.
    pub retries: u64,
    /// Total transport drops survived.
    pub drops: u64,
    /// Drops healed by session resumption (vs fresh reconnects).
    pub resumed: u64,
    /// Fresh reconnects (resume failed; filter lost).
    pub reconnects: u64,
    /// Ticks that ran at a degraded resolution.
    pub degraded_ticks: u64,
    /// Highest degradation level reached.
    pub max_level: u32,
    /// Payload bytes delivered.
    pub bytes: f64,
    /// Simulated link time spent, seconds.
    pub link_time_s: f64,
    /// Fault-free (Eq. 1) link time for the same payloads, seconds.
    pub ideal_time_s: f64,
}

/// Algorithm 1 over a faulty link: retry, resume, degrade.
#[derive(Debug)]
pub struct ResilientClient<M: SpeedResolutionMap> {
    session: u64,
    token: u64,
    map: M,
    planner: FramePlanner,
    link: FaultyLink,
    clock: SimClock,
    policy: ResilientPolicy,
    level: u32,
    window: VecDeque<(f64, f64)>, // (ideal_s, actual_s) per contact tick
    metrics: ResilienceMetrics,
}

impl<M: SpeedResolutionMap> ResilientClient<M> {
    /// Connects a new resilient client: a server session plus its own
    /// faulty transport channel.
    pub fn connect(server: &Server, map: M, link: FaultyLink, policy: ResilientPolicy) -> Self {
        let (session, token) = server.connect_with_token();
        Self {
            session,
            token,
            map,
            planner: FramePlanner::new(),
            link,
            clock: SimClock::new(),
            policy,
            level: 0,
            window: VecDeque::new(),
            metrics: ResilienceMetrics::default(),
        }
    }

    /// The current server session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The unguessable resume token for the current session (what the
    /// client presents to [`Server::resume`] after a transport drop).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// The current degradation level (0 = full fidelity for the speed).
    pub fn degrade_level(&self) -> u32 {
        self.level
    }

    /// The simulated clock (advanced by every wait, retry and transfer).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The transport channel's fault statistics.
    pub fn link(&self) -> &FaultyLink {
        &self.link
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &ResilienceMetrics {
        &self.metrics
    }

    /// Executes one query frame through the faulty link, retrying lost
    /// requests, resuming dropped sessions, and updating the degradation
    /// state from the measured goodput.
    pub fn tick(
        &mut self,
        server: &Server,
        frame: Rect2,
        speed: f64,
    ) -> Result<ResilientTick, ProtocolError> {
        let band = self
            .policy
            .degraded_band(self.map.band_for(speed), self.level);
        let outcome = self.execute(server, frame, band, speed)?;
        self.metrics.ticks += 1;
        if outcome.ideal_time_s > 0.0 {
            self.metrics.contact_ticks += 1;
            self.window
                .push_back((outcome.ideal_time_s, outcome.tick_time_s));
            while self.window.len() > self.policy.window {
                self.window.pop_front();
            }
            let ideal: f64 = self.window.iter().map(|w| w.0).sum();
            let actual: f64 = self.window.iter().map(|w| w.1).sum();
            let ratio = if actual > 0.0 { ideal / actual } else { 1.0 };
            if ratio < self.policy.enter_ratio && self.level < self.policy.max_degrade {
                self.level += 1;
            } else if ratio > self.policy.exit_ratio && self.level > 0 {
                self.level -= 1;
            }
        }
        self.metrics.max_level = self.metrics.max_level.max(self.level);
        if outcome.degrade_level > 0 {
            self.metrics.degraded_ticks += 1;
        }
        Ok(outcome)
    }

    /// Drains the degradation state and retrieves `frame` at the full
    /// (undegraded) band for `speed` — the end-of-tour repair pass that
    /// restores full fidelity once the client comes to rest. After it
    /// returns, the session's resident set covers everything a fault-free
    /// client would hold for this frame at this band.
    pub fn finish(
        &mut self,
        server: &Server,
        frame: Rect2,
        speed: f64,
    ) -> Result<ResilientTick, ProtocolError> {
        self.level = 0;
        self.window.clear();
        self.tick(server, frame, speed)
    }

    /// The retry/resume loop for one planned query batch.
    fn execute(
        &mut self,
        server: &Server,
        frame: Rect2,
        band: ResolutionBand,
        speed: f64,
    ) -> Result<ResilientTick, ProtocolError> {
        let mut regions = self.planner.plan(&frame, band);
        let mut outcome = ResilientTick {
            result: QueryResult::default(),
            retries: 0,
            drops: 0,
            resumed: false,
            degrade_level: self.level,
            band_w_min: band.w_min,
            tick_time_s: 0.0,
            ideal_time_s: 0.0,
        };
        if regions.is_empty() {
            // Fully covered by the previous frame at this band: no server
            // contact, no fault exposure.
            self.planner.commit(frame, band);
            return Ok(outcome);
        }
        let t0 = self.clock.now();
        let mut attempts = 0u32;
        let result = loop {
            if attempts >= self.policy.max_attempts {
                return Err(ProtocolError::GaveUp { attempts });
            }
            attempts += 1;
            match self.link.begin() {
                Ok(grant) => {
                    let r = server
                        .query(self.session, &regions)
                        .map_err(ProtocolError::Session)?;
                    let t = self.link.complete(grant, r.bytes, speed);
                    self.clock.advance(t);
                    break r;
                }
                Err(LinkError::Lost { waited_s }) => {
                    self.clock.advance(waited_s);
                    // Seeded jitter keyed by (fault stream, cumulative
                    // retry number): decorrelated across clients, byte-
                    // identical across runs and thread counts.
                    self.clock.advance(self.policy.jittered_backoff_s(
                        outcome.retries,
                        self.link.stream(),
                        self.metrics.retries,
                    ));
                    outcome.retries += 1;
                    self.metrics.retries += 1;
                }
                Err(LinkError::SessionDropped) => {
                    outcome.drops += 1;
                    self.metrics.drops += 1;
                    self.clock.advance(self.link.reconnect_time());
                    match server.resume(self.token) {
                        Ok(_) => {
                            // Filter retained server-side: nothing already
                            // delivered will be re-sent.
                            outcome.resumed = true;
                            self.metrics.resumed += 1;
                        }
                        Err(SessionError::UnknownToken(_) | SessionError::UnknownSession(_)) => {
                            // The server forgot us: start over with an
                            // empty filter, a fresh token and a full
                            // refetch.
                            let (session, token) = server.connect_with_token();
                            self.session = session;
                            self.token = token;
                            self.planner.reset();
                            self.metrics.reconnects += 1;
                            regions = self.planner.plan(&frame, band);
                        }
                    }
                }
            }
        };
        outcome.result = result;
        outcome.tick_time_s = self.clock.now() - t0;
        outcome.ideal_time_s = self.link.config().request_time(result.bytes, speed);
        self.planner.commit(frame, band);
        self.metrics.bytes += result.bytes;
        self.metrics.link_time_s += outcome.tick_time_s;
        self.metrics.ideal_time_s += outcome.ideal_time_s;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedmap::LinearSpeedMap;
    use mar_geom::Point2;
    use mar_link::{FaultConfig, FaultPlan, LinkConfig};
    use mar_workload::{Scene, SceneConfig};

    fn server() -> Server {
        let mut cfg = SceneConfig::paper(8, 33);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        Server::new(&Scene::generate(cfg))
    }

    fn frame(x: f64, y: f64) -> Rect2 {
        Rect2::new(Point2::new([x, y]), Point2::new([x + 200.0, y + 200.0]))
    }

    fn client(server: &Server, fault: FaultConfig, stream: u64) -> ResilientClient<LinearSpeedMap> {
        let link =
            FaultyLink::new(LinkConfig::paper(), FaultPlan::new(fault).unwrap(), stream).unwrap();
        ResilientClient::connect(server, LinearSpeedMap, link, ResilientPolicy::default())
    }

    /// Drives a diagonal sweep and returns the per-tick outcomes.
    fn sweep(
        c: &mut ResilientClient<LinearSpeedMap>,
        srv: &Server,
        n: usize,
    ) -> Vec<ResilientTick> {
        (0..n)
            .map(|i| {
                c.tick(srv, frame(30.0 * i as f64, 25.0 * i as f64), 0.4)
                    .expect("tick must terminate")
            })
            .collect()
    }

    #[test]
    fn fault_free_resilient_equals_plain_incremental() {
        let srv = server();
        let mut res = client(&srv, FaultConfig::none(1), 0);
        let outs = sweep(&mut res, &srv, 12);
        let srv2 = server();
        let mut plain = crate::IncrementalClient::connect(&srv2, LinearSpeedMap);
        for (i, out) in outs.iter().enumerate() {
            let want = plain.tick(&srv2, frame(30.0 * i as f64, 25.0 * i as f64), 0.4);
            assert_eq!(out.result, want, "tick {i}");
            assert_eq!(out.retries, 0);
            assert_eq!(out.drops, 0);
            assert_eq!(out.degrade_level, 0);
            assert!((out.tick_time_s - out.ideal_time_s).abs() < 1e-12);
        }
    }

    #[test]
    fn lossy_link_retries_and_still_delivers_everything() {
        let srv = server();
        let mut res = client(&srv, FaultConfig::hostile(7, 0.2, 0), 3);
        let outs = sweep(&mut res, &srv, 25);
        let m = *res.metrics();
        assert!(m.retries > 0, "20% loss over 25 ticks must retry");
        assert!(m.link_time_s > m.ideal_time_s, "faults cost time");
        // Same coverage as a fault-free client: the sent sets agree.
        let srv2 = server();
        let mut free = client(&srv2, FaultConfig::none(1), 3);
        sweep(&mut free, &srv2, 25);
        assert_eq!(
            srv.session_sent_set(res.session()).unwrap(),
            srv2.session_sent_set(free.session()).unwrap(),
            "request loss must never change what gets delivered"
        );
        let _ = outs;
    }

    #[test]
    fn drops_resume_without_resending() {
        let srv = server();
        let mut res = client(&srv, FaultConfig::hostile(7, 0.0, 4), 0);
        let outs = sweep(&mut res, &srv, 30);
        let m = *res.metrics();
        assert!(m.drops > 0, "drop_every=4 must drop");
        assert_eq!(m.drops, m.resumed, "every drop heals via resume");
        assert_eq!(m.reconnects, 0, "the server never forgets a live session");
        assert!(outs.iter().any(|o| o.resumed));
        // Coverage unchanged vs fault-free.
        let srv2 = server();
        let mut free = client(&srv2, FaultConfig::none(1), 0);
        sweep(&mut free, &srv2, 30);
        assert_eq!(
            srv.session_sent_set(res.session()).unwrap(),
            srv2.session_sent_set(free.session()).unwrap()
        );
    }

    #[test]
    fn resume_failure_falls_back_to_fresh_connect() {
        let srv = server();
        let mut res = client(&srv, FaultConfig::hostile(7, 0.0, 3), 0);
        res.tick(&srv, frame(100.0, 100.0), 0.3).unwrap();
        // Sabotage: disconnect the session behind the client's back, then
        // force enough ticks that a scheduled drop fires.
        srv.disconnect(res.session()).unwrap();
        let before = res.session();
        for i in 0..6 {
            // The first post-sabotage contact either hits the unknown
            // session via a drop (reconnect path) or errors; drive until a
            // drop heals it.
            match res.tick(&srv, frame(100.0 + 40.0 * i as f64, 100.0), 0.3) {
                Ok(_) => {}
                Err(ProtocolError::Session(SessionError::UnknownSession(_))) => continue,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(res.metrics().reconnects > 0, "must have reconnected fresh");
        assert_ne!(res.session(), before, "fresh connect mints a new session");
        // The sweep frames may land in empty scene regions; pull the whole
        // scene to show the fresh session really refetches from scratch.
        let world = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        res.finish(&srv, world, 0.0).expect("finish terminates");
        assert!(srv.session_sent(res.session()) > 0, "refetched after reset");
    }

    #[test]
    fn congestion_degrades_then_recovers() {
        let srv = server();
        // Heavy loss so the early window ratio collapses.
        let mut res = client(&srv, FaultConfig::hostile(11, 0.45, 0), 1);
        let mut saw_degraded = false;
        for i in 0..40 {
            let out = res
                .tick(&srv, frame(20.0 * i as f64, 15.0 * i as f64), 0.3)
                .expect("terminates");
            if out.degrade_level > 0 {
                saw_degraded = true;
                assert!(
                    out.band_w_min > 0.3 - 1e-12,
                    "degraded band must be coarser than the speed band"
                );
            }
        }
        assert!(saw_degraded, "45% loss must trigger degradation");
        assert!(res.metrics().degraded_ticks > 0);
        // A long calm stretch recovers to full fidelity.
        let mut calm = client(&srv, FaultConfig::none(2), 9);
        calm.level = res.level.max(1);
        for i in 0..30 {
            calm.tick(&srv, frame(10.0 * i as f64, 500.0), 0.3).unwrap();
        }
        assert_eq!(calm.degrade_level(), 0, "clean link must recover");
    }

    #[test]
    fn finish_restores_full_fidelity() {
        let srv = server();
        let mut res = client(&srv, FaultConfig::hostile(5, 0.4, 7), 2);
        for i in 0..20 {
            res.tick(&srv, frame(25.0 * i as f64, 20.0 * i as f64), 0.5)
                .expect("terminates");
        }
        let last = frame(25.0 * 19.0, 20.0 * 19.0);
        let out = res.finish(&srv, last, 0.5).expect("finish terminates");
        assert_eq!(out.degrade_level, 0, "finish drains degradation");
        // Every coefficient of the final frame at the undegraded band is
        // resident.
        let band = LinearSpeedMap.band_for(0.5);
        let (want, _) = srv.query_stateless(&last, band);
        let sent = srv.session_sent_set(res.session()).unwrap();
        for id in want {
            assert!(
                sent.binary_search(&id).is_ok(),
                "coefficient {id:?} missing after finish"
            );
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = ResilientPolicy::default();
        assert_eq!(p.backoff_s(0), 0.25);
        assert_eq!(p.backoff_s(1), 0.5);
        assert_eq!(p.backoff_s(2), 1.0);
        assert_eq!(p.backoff_s(10), p.max_backoff_s);
        assert_eq!(p.backoff_s(60), p.max_backoff_s, "shift must not overflow");
    }

    #[test]
    fn jittered_backoff_is_bounded_deterministic_and_decorrelated() {
        let p = ResilientPolicy::default();
        for stream in [0u64, 1, 42] {
            for seq in 0..200u64 {
                for retry in [0u32, 1, 2, 5] {
                    let j = p.jittered_backoff_s(retry, stream, seq);
                    let base = p.backoff_s(retry);
                    assert!(
                        j >= base * 0.5 - 1e-12 && j <= (base * 1.5).min(p.max_backoff_s) + 1e-12,
                        "jitter out of [0.5, 1.5)·base (capped): {j} vs base {base}"
                    );
                    // Pure function: same inputs, same backoff, any run.
                    assert_eq!(j, p.jittered_backoff_s(retry, stream, seq));
                }
            }
        }
        // Two streams retrying in lockstep must not back off in lockstep:
        // that synchrony is exactly the retry storm the jitter breaks.
        let same = (0..64u64)
            .filter(|&s| p.jittered_backoff_s(1, 7, s) == p.jittered_backoff_s(1, 8, s))
            .count();
        assert!(same < 4, "streams 7 and 8 collide on {same}/64 backoffs");
    }

    #[test]
    fn lossy_runs_are_reproducible_with_jitter() {
        // The full protocol over a 20 %-loss link: two identical runs must
        // agree on every simulated timestamp (the jitter is seeded, not
        // sampled), and the delivered data is unchanged by jitter.
        let run = || {
            let srv = server();
            let mut c = client(&srv, FaultConfig::hostile(7, 0.2, 6), 3);
            let outs = sweep(&mut c, &srv, 20);
            let times: Vec<u64> = outs.iter().map(|o| o.tick_time_s.to_bits()).collect();
            (times, c.metrics().retries, c.clock().now().to_bits())
        };
        let (ta, ra, ca) = run();
        let (tb, rb, cb) = run();
        assert!(ra > 0, "20% loss over 20 ticks must retry");
        assert_eq!(ra, rb);
        assert_eq!(ta, tb, "per-tick times must be byte-identical across runs");
        assert_eq!(ca, cb, "final clocks must agree to the bit");
    }

    #[test]
    fn degraded_band_shifts_and_saturates() {
        let p = ResilientPolicy::default();
        let b = ResolutionBand::new(0.2, 1.0);
        assert_eq!(p.degraded_band(b, 0), b);
        let d1 = p.degraded_band(b, 1);
        assert!((d1.w_min - 0.35).abs() < 1e-12);
        let dmax = p.degraded_band(b, 100);
        assert_eq!(dmax.w_min, 1.0, "degradation saturates at the band top");
    }
}
