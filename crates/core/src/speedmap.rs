//! `MapSpeedToResolution` (Algorithm 1, line 1.3).
//!
//! "This function is application dependent and … should be adjusted by the
//! vendor." The paper's experiments use the identity map: at normalised
//! speed `s` the client retrieves the coefficients with `w ∈ [s, 1.0]`
//! (§VII-A). The trait makes the map pluggable; two implementations are
//! provided.

use mar_mesh::ResolutionBand;

/// A map from normalised client speed to the resolution band to retrieve.
pub trait SpeedResolutionMap {
    /// The band of coefficient magnitudes needed at `speed ∈ [0, 1]`.
    /// Faster ⇒ narrower band (higher `w_min`).
    fn band_for(&self, speed: f64) -> ResolutionBand;
}

/// The paper's map: `w_min = speed` ("the speed is expected to be
/// inversely proportional to the value of the wavelet coefficients
/// retrieved").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinearSpeedMap;

impl SpeedResolutionMap for LinearSpeedMap {
    fn band_for(&self, speed: f64) -> ResolutionBand {
        ResolutionBand::new(speed.clamp(0.0, 1.0), 1.0)
    }
}

/// A quantised map: speeds are bucketed into `steps` levels so small speed
/// fluctuations do not trigger resolution churn (a QoS-style vendor
/// adjustment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteppedSpeedMap {
    /// Number of distinct resolution levels (≥ 1).
    pub steps: u32,
}

impl SteppedSpeedMap {
    /// Creates the map.
    pub fn new(steps: u32) -> Self {
        assert!(steps >= 1);
        Self { steps }
    }
}

impl SpeedResolutionMap for SteppedSpeedMap {
    fn band_for(&self, speed: f64) -> ResolutionBand {
        let s = speed.clamp(0.0, 1.0);
        let q = (s * self.steps as f64).floor() / self.steps as f64;
        ResolutionBand::new(q.min(1.0), 1.0)
    }
}

/// Asymmetric speed smoothing for the resolution map.
///
/// The paper leaves `MapSpeedToResolution` "application dependent …
/// adjusted by the vendor". One adjustment matters in practice: a tram
/// pausing at a station for two ticks should not trigger a full-resolution
/// fill of the whole frame, but a client that genuinely stops should get
/// full detail. `SmoothedSpeed` therefore follows speed *increases* fast
/// (coarsening is cheap and instantly safe) and speed *decreases* slowly
/// (refinement is expensive; wait until the slowdown is sustained).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothedSpeed {
    /// Blend factor when speed rises (fast adaptation).
    pub alpha_up: f64,
    /// Blend factor when speed falls (slow adaptation).
    pub alpha_down: f64,
    state: Option<f64>,
}

impl Default for SmoothedSpeed {
    fn default() -> Self {
        Self {
            alpha_up: 0.6,
            alpha_down: 0.06,
            state: None,
        }
    }
}

impl SmoothedSpeed {
    /// Creates a smoother with explicit blend factors.
    pub fn with_alphas(alpha_up: f64, alpha_down: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha_up) && (0.0..=1.0).contains(&alpha_down));
        Self {
            alpha_up,
            alpha_down,
            state: None,
        }
    }

    /// Feeds the instantaneous speed, returning the smoothed value.
    pub fn update(&mut self, speed: f64) -> f64 {
        let s = speed.clamp(0.0, 1.0);
        let prev = self.state.unwrap_or(s);
        let alpha = if s >= prev {
            self.alpha_up
        } else {
            self.alpha_down
        };
        let next = prev + alpha * (s - prev);
        self.state = Some(next);
        next
    }

    /// The current smoothed speed (last update's result).
    pub fn current(&self) -> Option<f64> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_map_matches_paper_examples() {
        let m = LinearSpeedMap;
        // "when the speed is very low (s ≈ 0) … all the coefficients whose
        // values range from 0.0 to 1.0"
        let slow = m.band_for(0.001);
        assert!(slow.w_min < 0.01);
        assert_eq!(slow.w_max, 1.0);
        // "when the speed is higher, say s = 0.5 … coefficients whose
        // values range from 0.5 to 1.0"
        let mid = m.band_for(0.5);
        assert_eq!(mid.w_min, 0.5);
        // Out-of-range speeds clamp.
        assert_eq!(m.band_for(7.0).w_min, 1.0);
        assert_eq!(m.band_for(-1.0).w_min, 0.0);
    }

    #[test]
    fn faster_is_never_finer() {
        let m = LinearSpeedMap;
        let mut last = -1.0;
        for i in 0..=10 {
            let w = m.band_for(i as f64 / 10.0).w_min;
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    fn smoothing_ignores_brief_stops_but_honors_real_ones() {
        let mut sm = SmoothedSpeed::default();
        for _ in 0..50 {
            sm.update(0.5);
        }
        // A 4-tick station dwell barely moves the smoothed speed...
        let mut during = 1.0;
        for _ in 0..4 {
            during = sm.update(0.0);
        }
        assert!(
            during > 0.35,
            "brief stop must not collapse speed: {during}"
        );
        // ...but a sustained stop converges to 0 (full resolution).
        for _ in 0..200 {
            during = sm.update(0.0);
        }
        assert!(during < 0.01, "sustained stop must refine: {during}");
        // Speeding up is adopted quickly.
        let up = sm.update(0.9);
        assert!(up > 0.5, "speedup must coarsen fast: {up}");
    }

    #[test]
    fn smoothing_first_sample_passes_through() {
        let mut sm = SmoothedSpeed::default();
        assert!(sm.current().is_none());
        assert_eq!(sm.update(0.7), 0.7);
        assert_eq!(sm.current(), Some(0.7));
    }

    #[test]
    fn stepped_map_quantizes() {
        let m = SteppedSpeedMap::new(4);
        assert_eq!(m.band_for(0.0).w_min, 0.0);
        assert_eq!(m.band_for(0.26).w_min, 0.25);
        assert_eq!(m.band_for(0.49).w_min, 0.25);
        assert_eq!(m.band_for(0.5).w_min, 0.5);
        assert_eq!(m.band_for(1.0).w_min, 1.0);
    }
}
