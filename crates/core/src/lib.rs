//! # mar-core — motion-aware continuous retrieval of 3D objects
//!
//! The paper's system, assembled from the workspace substrates:
//!
//! * [`coeff`] — scene-wide coefficient records: every wavelet coefficient
//!   of every object, with its support-region MBR, magnitude and wire size.
//! * [`speedmap`] — `MapSpeedToResolution` (Algorithm 1 line 1.3): the
//!   pluggable map from client speed to the resolution band to retrieve.
//! * [`index`] — the **efficient wavelet index** of §VI-B: a 3-D
//!   (`x-y-w`) R*-tree over support-region MBRs, answering
//!   `Q(R, w_max, w_min)` in a single pass.
//! * [`naive_index`] — the §VI straw man: a point R-tree over coefficient
//!   positions that must compute the neighbours' bounding region and
//!   re-query the extension.
//! * [`store`] / [`paged`] — the out-of-core backend: the index's node
//!   pages and coefficient records serialized into one checksummed page
//!   file, read back through `mar-store`'s motion-aware buffer pool with
//!   byte-identical query answers (DESIGN.md §15).
//! * [`server`] — the data server: scene + index + per-client sessions
//!   that filter out already-transmitted data (§IV's server-side filter).
//! * [`retrieval`] — Algorithm 1, the incremental motion-aware client
//!   (Figs. 8–9).
//! * [`resilient`] — Algorithm 1 hardened for a faulty link: retry with
//!   capped backoff, session resumption, graceful resolution degradation
//!   (DESIGN.md §11).
//! * [`bufsim`] — the block-buffer simulation comparing motion-aware and
//!   naive prefetching (Figs. 10–11).
//! * [`system`] — the end-to-end systems of §VII-E: the full motion-aware
//!   stack vs. the naive full-resolution + LRU + object-R*-tree baseline
//!   (Figs. 14–15).
//! * [`fleet`] — the sharded serving tier: spatial partitioning of the
//!   scene over independent shard cores, a stateless scatter-gather
//!   router, and shard failover (replica promotion / degraded neighbour
//!   service) under a health bitmask (DESIGN.md §16).
//! * [`metrics`] — the measured quantities every experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufsim;
pub mod coeff;
pub mod fleet;
pub mod index;
pub mod metrics;
pub mod naive_index;
pub mod paged;
pub mod resilient;
pub mod retrieval;
pub mod server;
pub mod speedmap;
pub mod store;
pub mod system;

pub use coeff::{CoeffRecord, CoeffRef, SceneIndexData};
pub use fleet::{
    FleetBackend, FleetConfig, FleetError, FleetHealth, FleetQueryResult, FleetServer, RoutePlan,
    Router, ShardMap, ShardRole, ShardTask,
};
pub use index::{WaveletIndex, WaveletIndex4};
pub use mar_rtree::{BatchAccesses, IoSnapshot};
pub use mar_store::{CachePolicy, PageCacheStats, StoreError};
pub use metrics::{BufferMetrics, RetrievalMetrics, SystemMetrics};
pub use naive_index::NaivePointIndex;
pub use paged::PagedIndex;
pub use resilient::{
    ProtocolError, ResilienceMetrics, ResilientClient, ResilientPolicy, ResilientTick,
};
pub use retrieval::{FramePlanner, IncrementalClient};
pub use server::{
    QueryRegion, QueryResult, ResumeInfo, Server, ServerCore, SessionError, SESSION_STRIPES,
};
pub use speedmap::{LinearSpeedMap, SmoothedSpeed, SpeedResolutionMap, SteppedSpeedMap};
pub use store::{open_store, write_store, write_store_with, StoreMeta, StoredRecord};
