//! The sharded serving tier: spatial partitioning, scatter-gather
//! routing, and shard failover (DESIGN.md §16; ROADMAP item 2).
//!
//! Voyager-style city-scale serving partitions the ground plane into a
//! grid of **shards**, each an independent [`ServerCore`] holding exactly
//! the coefficients whose support regions touch its tile. A stateless
//! [`Router`] decomposes every window query into per-shard sub-rectangles
//! with [`GridSpec::partition_rect`] (the same disjoint-rect machinery
//! Algorithm 1 uses for frame differences), scatter-gathers the shard
//! answers, and merges them **deterministically in ascending shard-id
//! order** — so a fleet transcript is byte-identical at any worker count.
//!
//! # Halo replication makes routing exact
//!
//! A coefficient lives on *every* shard whose (epsilon-inflated) tile its
//! `support_xy` intersects, not just the one holding its centre. For any
//! query window `Q`: a support intersects `Q ∩ space` iff it intersects
//! one of the per-shard sub-rects, and the owning shard holds the
//! coefficient because the sub-rect lies inside that shard's inflated
//! tile. The union of per-shard answers is therefore **exactly** the
//! unsharded answer; cross-shard halo duplicates are suppressed by the
//! per-session sent-filter, which replays shard answers in shard order.
//! The halo is also what makes *degraded* service real: a dead tile's
//! boundary coefficients genuinely exist on its neighbours.
//!
//! # Failover state machine
//!
//! Health is a value, not a state: callers pass a [`FleetHealth`] bitmask
//! (derived from a pure `mar_link::ShardOutagePlan` schedule in the
//! harness) into every query, keeping the router stateless with respect
//! to time. Per sub-rect:
//!
//! 1. shard up → **primary** serves it at the requested band;
//! 2. shard down, replica configured → **replica promotion**: the replica
//!    core serves the same sub-rect at the same band (the shared session
//!    filter makes this transparently identical to the fault-free run);
//! 3. shard down, no replica → **degraded synthesis**: every live ring-1
//!    neighbour is queried with the dead sub-rect at a coarsened band;
//!    the halo coefficients they hold cover the tile's border region, and
//!    the answer is marked incomplete so clients refetch after recovery;
//! 4. shard down, no replica, all neighbours down → the sub-rect goes
//!    unserved this tick (counted, never an error).
//!
//! Recovery is re-admission by value: the next tick whose health mask has
//! the bit clear routes to the primary again — nothing to rebuild,
//! because shard state is immutable and session filters live in the
//! fleet, not the shard.

use crate::coeff::{CoeffRef, SceneIndexData};
use crate::index::WaveletIndex;
use crate::server::{QueryResult, ServerCore, SESSION_STRIPES};
use mar_geom::{BlockId, GridSpec, Point2, Rect2};
use mar_mesh::ResolutionBand;
// mar-lint: allow(D001) — `HashSet` here backs the membership-only fleet
// session filters below; their iteration order is never observed.
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Typed failure of the fleet tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The shard grid must have between 1 and 64 shards (health is a
    /// 64-bit mask; a bigger fleet would need a wider word).
    BadShardGrid {
        /// Requested shard columns.
        nx: u32,
        /// Requested shard rows.
        ny: u32,
    },
    /// The session id is not (or no longer) connected to the fleet.
    UnknownSession(u64),
    /// Building a paged shard backend failed (store I/O).
    Store(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadShardGrid { nx, ny } => {
                write!(f, "shard grid {nx}x{ny} must have 1..=64 shards")
            }
            Self::UnknownSession(id) => write!(f, "unknown or disconnected fleet session {id}"),
            Self::Store(e) => write!(f, "shard store backend: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// The fleet's ground-plane partition: a [`GridSpec`] whose blocks are
/// shards, with the row-major block↔shard-id bijection pinned here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMap {
    grid: GridSpec,
}

impl ShardMap {
    /// Partitions `space` into `nx × ny` shard tiles.
    pub fn new(space: Rect2, nx: u32, ny: u32) -> Result<Self, FleetError> {
        let count = u64::from(nx) * u64::from(ny);
        if count == 0 || count > 64 {
            return Err(FleetError::BadShardGrid { nx, ny });
        }
        Ok(Self {
            grid: GridSpec::new(space, nx, ny),
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        (self.grid.block_count()) as u32
    }

    /// The shard owning grid block `b` (row-major id).
    pub fn shard_of_block(&self, b: &BlockId) -> u32 {
        (b.iy * i64::from(self.grid.nx) + b.ix) as u32
    }

    /// The grid block of shard `s`.
    pub fn block_of_shard(&self, s: u32) -> BlockId {
        BlockId::new(i64::from(s % self.grid.nx), i64::from(s / self.grid.nx))
    }

    /// Shard `s`'s exact tile.
    pub fn tile(&self, s: u32) -> Rect2 {
        self.grid.block_rect(&self.block_of_shard(s))
    }

    /// Shard `s`'s tile inflated by the partition epsilon. Data placement
    /// uses this: sub-rect edges and tile edges agree only to within one
    /// ulp (`partition_rect` computes `lo + i·w`, `block_rect` computes
    /// `(lo + i·w) + w`), so assigning supports against the *inflated*
    /// tile guarantees every sub-rect's coefficients are on its shard.
    pub fn inflated_tile(&self, s: u32) -> Rect2 {
        let t = self.tile(s);
        let eps = 1e-9 * (self.grid.block_w() + self.grid.block_h());
        Rect2::new(
            Point2::new([t.lo[0] - eps, t.lo[1] - eps]),
            Point2::new([t.hi[0] + eps, t.hi[1] + eps]),
        )
    }

    /// Decomposes a window into `(shard, sub-rect)` pairs, ascending by
    /// shard id (row-major partition order *is* shard-id order).
    pub fn route(&self, window: &Rect2) -> Vec<(u32, Rect2)> {
        self.grid
            .partition_rect(window)
            .into_iter()
            .map(|(b, r)| (self.shard_of_block(&b), r))
            .collect()
    }

    /// Shard `s`'s live ring-1 neighbours, ascending by shard id.
    pub fn neighbors(&self, s: u32) -> Vec<u32> {
        let c = self.block_of_shard(s);
        self.grid
            .blocks_within_ring(&c, 1)
            .into_iter()
            .filter(|b| *b != c)
            .map(|b| self.shard_of_block(&b))
            .collect()
    }
}

/// Fleet health as a value: bit `s` set means shard `s` is **down**.
/// Queries take a health word instead of the fleet mutating state, so the
/// router stays a pure function of `(health, window, band)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetHealth(u64);

impl FleetHealth {
    /// Every shard up.
    pub fn all_up() -> Self {
        Self(0)
    }

    /// Health from a down-shard bitmask (e.g.
    /// `mar_link::ShardOutagePlan::down_mask`).
    pub fn from_down_mask(mask: u64) -> Self {
        Self(mask)
    }

    /// The raw down bitmask.
    pub fn down_mask(&self) -> u64 {
        self.0
    }

    /// True when shard `s` is down.
    pub fn is_down(&self, s: u32) -> bool {
        s < 64 && (self.0 >> s) & 1 == 1
    }

    /// Number of down shards.
    pub fn down_count(&self) -> u32 {
        self.0.count_ones()
    }

    /// This health with shard `s` additionally down.
    pub fn with_down(self, s: u32) -> Self {
        Self(self.0 | (1u64 << (s % 64)))
    }
}

/// Who answers one routed sub-rect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// The shard is up: its primary core serves the sub-rect.
    Primary,
    /// The shard is down but has a replica: the replica serves the same
    /// sub-rect at the same band (transparent failover).
    Replica,
    /// The shard is down with no replica: a live neighbour serves the
    /// dead sub-rect from its halo coverage at a coarsened band.
    NeighborDegraded,
}

/// One scheduled sub-query of a routed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardTask {
    /// The shard whose core executes the task (for `NeighborDegraded`
    /// this is the *neighbour*, not the dead owner).
    pub shard: u32,
    /// The dead or live owner of the sub-rect.
    pub owner: u32,
    /// The clipped sub-rectangle to answer.
    pub window: Rect2,
    /// The band to answer it at (coarsened for degraded tasks).
    pub band: ResolutionBand,
    /// Why this shard got the task.
    pub role: ShardRole,
}

/// A routed window query: the deterministic task list plus the
/// availability accounting of what could not be fully served.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutePlan {
    /// Tasks in execution order: ascending owner shard id, primaries and
    /// replicas one task each, degraded sub-rects one task per live
    /// neighbour (ascending neighbour id).
    pub tasks: Vec<ShardTask>,
    /// Sub-rects served at full fidelity (primary or promoted replica).
    pub complete_subqueries: u32,
    /// Sub-rects served only by neighbour halo coverage at a coarsened
    /// band.
    pub degraded_subqueries: u32,
    /// Sub-rects nobody could serve (owner and all neighbours down).
    pub unserved_subqueries: u32,
}

impl RoutePlan {
    /// True when every sub-rect was served at full fidelity — the answer
    /// equals the unsharded one and the client may commit its frame.
    pub fn complete(&self) -> bool {
        self.degraded_subqueries == 0 && self.unserved_subqueries == 0
    }
}

/// The stateless router: a pure view over the fleet's shard map and
/// replica configuration. Holds no session state and no clock — the same
/// `(health, window, band)` always produces the same [`RoutePlan`].
#[derive(Debug, Clone, Copy)]
pub struct Router<'a> {
    map: &'a ShardMap,
    has_core: &'a [bool],
    has_replica: &'a [bool],
    degrade_step: f64,
}

impl Router<'_> {
    /// Routes one window at one band under the given health word.
    pub fn plan(&self, health: FleetHealth, window: &Rect2, band: ResolutionBand) -> RoutePlan {
        let mut plan = RoutePlan {
            tasks: Vec::new(),
            complete_subqueries: 0,
            degraded_subqueries: 0,
            unserved_subqueries: 0,
        };
        for (owner, sub) in self.map.route(window) {
            if !self.has_core[owner as usize] {
                // An empty tile serves every sub-rect vacuously — dead or
                // alive, there is nothing to lose.
                plan.complete_subqueries += 1;
            } else if !health.is_down(owner) {
                plan.complete_subqueries += 1;
                plan.tasks.push(ShardTask {
                    shard: owner,
                    owner,
                    window: sub,
                    band,
                    role: ShardRole::Primary,
                });
            } else if self.has_replica[owner as usize] {
                plan.complete_subqueries += 1;
                plan.tasks.push(ShardTask {
                    shard: owner,
                    owner,
                    window: sub,
                    band,
                    role: ShardRole::Replica,
                });
            } else {
                let degraded = ResolutionBand::new(
                    (band.w_min + self.degrade_step).min(band.w_max),
                    band.w_max,
                );
                let mut served = false;
                for n in self.map.neighbors(owner) {
                    if health.is_down(n) {
                        continue;
                    }
                    served = true;
                    plan.tasks.push(ShardTask {
                        shard: n,
                        owner,
                        window: sub,
                        band: degraded,
                        role: ShardRole::NeighborDegraded,
                    });
                }
                if served {
                    plan.degraded_subqueries += 1;
                } else {
                    plan.unserved_subqueries += 1;
                }
            }
        }
        plan
    }
}

/// Where each shard's [`ServerCore`] reads its index from.
#[derive(Debug, Clone)]
pub enum FleetBackend {
    /// Every shard index in RAM.
    Ram,
    /// Every shard serves a page file `shard-<id>.pages` under `dir`
    /// through its own buffer pool (DESIGN.md §15) — per-shard stores,
    /// the follow-on ROADMAP item 1 named.
    Paged {
        /// Directory for the per-shard page files.
        dir: std::path::PathBuf,
        /// Buffer-pool byte budget *per shard*.
        budget_bytes: usize,
        /// Eviction policy for every shard pool.
        policy: mar_store::CachePolicy,
    },
}

/// Fleet construction parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard columns.
    pub nx: u32,
    /// Shard rows.
    pub ny: u32,
    /// Whether every shard gets a promotable replica core.
    pub replicas: bool,
    /// How much `w_min` rises for neighbour-degraded answers.
    pub degrade_step: f64,
    /// Shard index backend.
    pub backend: FleetBackend,
}

impl FleetConfig {
    /// An in-RAM `nx × ny` fleet.
    pub fn ram(nx: u32, ny: u32, replicas: bool) -> Self {
        Self {
            nx,
            ny,
            replicas,
            degrade_step: 0.15,
            backend: FleetBackend::Ram,
        }
    }
}

/// One shard: the primary core (absent when no coefficient touches the
/// tile), the optional promotable replica, and the tile's record count.
#[derive(Debug)]
struct Shard {
    core: Option<ServerCore>,
    replica: Option<ServerCore>,
    coeffs: usize,
}

#[derive(Debug, Default)]
struct FleetSession {
    // Membership-only sets (same discipline as `server::Session`): tested
    // per hit, never iterated — this one filter is shared by primary,
    // replica and neighbour answers, which is exactly why failover never
    // re-sends and why cross-shard halo duplicates collapse.
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent: HashSet<CoeffRef>,
    // mar-lint: allow(D001) — membership-only; iteration order never observed
    sent_base: HashSet<u32>,
}

impl FleetSession {
    fn filter_entries(&self) -> usize {
        self.sent.len() + self.sent_base.len()
    }
}

/// What one fleet window query produced, beyond the payload accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQueryResult {
    /// Merged, session-filtered payload accounting (deterministic: tasks
    /// apply in ascending owner/neighbour order).
    pub result: QueryResult,
    /// Shard tasks executed.
    pub tasks: u32,
    /// Sub-rects a promoted replica served.
    pub replica_promotions: u32,
    /// Sub-rects served only via neighbour halo coverage.
    pub degraded_subqueries: u32,
    /// Sub-rects nobody could serve.
    pub unserved_subqueries: u32,
    /// True when every sub-rect was served at full fidelity; a client
    /// commits its frame coverage only on complete answers, so degraded
    /// regions are refetched after recovery.
    pub complete: bool,
}

/// The sharded serving tier: shard cores + the fleet's own striped
/// session layer. All entry points take `&self` (DESIGN.md §10); the
/// per-session filter lives here — above the shards — so failover between
/// primary, replica and neighbours is invisible to dedup accounting.
#[derive(Debug)]
pub struct FleetServer {
    map: ShardMap,
    shards: Vec<Shard>,
    has_core: Vec<bool>,
    has_replica: Vec<bool>,
    degrade_step: f64,
    /// Fleet session filters, striped like `Server`'s sessions. The field
    /// name is load-bearing for the D006 lock-order graph: `fleet_stripes`
    /// sits between the bench sims and the pager leaf (DESIGN.md §13.1)
    /// and must never be confused with `Server::stripes`.
    fleet_stripes: [Mutex<BTreeMap<u64, FleetSession>>; SESSION_STRIPES],
    next_session: AtomicU64,
}

impl FleetServer {
    /// Builds the fleet over shared scene data: every shard gets the
    /// coefficients whose supports intersect its inflated tile (halo
    /// replication), its own [`WaveletIndex`], and — when configured — a
    /// replica core sharing the same immutable storage (in-process the
    /// replica is an `Arc` alias; the point is the promotion *routing*,
    /// which a multi-host deployment would back with a real copy).
    pub fn build(
        data: &Arc<SceneIndexData>,
        space: Rect2,
        cfg: &FleetConfig,
    ) -> Result<Self, FleetError> {
        let map = ShardMap::new(space, cfg.nx, cfg.ny)?;
        let mut shards = Vec::with_capacity(map.shard_count() as usize);
        for s in 0..map.shard_count() {
            let tile = map.inflated_tile(s);
            let records: Vec<_> = data
                .records
                .iter()
                .filter(|r| r.support_xy.intersects(&tile))
                .copied()
                .collect();
            let coeffs = records.len();
            if coeffs == 0 {
                shards.push(Shard {
                    core: None,
                    replica: None,
                    coeffs,
                });
                continue;
            }
            let mut sorted_w: Vec<f64> = records.iter().map(|r| r.w).collect();
            sorted_w.sort_by(f64::total_cmp);
            let shard_data = Arc::new(SceneIndexData {
                records,
                footprints: data.footprints.clone(),
                coeff_bytes: data.coeff_bytes,
                base_bytes: data.base_bytes.clone(),
                object_bytes: data.object_bytes.clone(),
                sorted_w,
            });
            let index = WaveletIndex::build(&shard_data);
            let core = match &cfg.backend {
                FleetBackend::Ram => ServerCore::from_parts(shard_data, Arc::new(index)),
                FleetBackend::Paged {
                    dir,
                    budget_bytes,
                    policy,
                } => {
                    let path = dir.join(format!("shard-{s}.pages"));
                    crate::store::write_store_with(&path, &shard_data, &index)
                        .map_err(|e| FleetError::Store(e.to_string()))?;
                    let paged = WaveletIndex::open_paged(&path, *budget_bytes, *policy)
                        .map_err(|e| FleetError::Store(e.to_string()))?;
                    ServerCore::from_parts(shard_data, Arc::new(paged))
                }
            };
            let replica = cfg.replicas.then(|| core.clone());
            shards.push(Shard {
                core: Some(core),
                replica,
                coeffs,
            });
        }
        let has_core = shards.iter().map(|s| s.core.is_some()).collect();
        let has_replica = shards.iter().map(|s| s.replica.is_some()).collect();
        Ok(Self {
            map,
            shards,
            has_core,
            has_replica,
            degrade_step: cfg.degrade_step,
            fleet_stripes: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            next_session: AtomicU64::new(0),
        })
    }

    /// The shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.map.shard_count()
    }

    /// Coefficients resident on shard `s` (halo included).
    pub fn shard_coeffs(&self, s: u32) -> usize {
        self.shards[s as usize].coeffs
    }

    /// True when shard `s` has a promotable replica.
    pub fn has_replica(&self, s: u32) -> bool {
        self.has_replica[s as usize]
    }

    /// The stateless router over this fleet's topology.
    pub fn router(&self) -> Router<'_> {
        Router {
            map: &self.map,
            has_core: &self.has_core,
            has_replica: &self.has_replica,
            degrade_step: self.degrade_step,
        }
    }

    fn stripe(&self, session: u64) -> &Mutex<BTreeMap<u64, FleetSession>> {
        &self.fleet_stripes[(session % SESSION_STRIPES as u64) as usize]
    }

    /// Opens a fleet session (ids are handed out in call order).
    pub fn connect(&self) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.stripe(id)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("fleet stripe poisoned")
            .insert(id, FleetSession::default());
        id
    }

    /// Drops a fleet session, releasing its filter state and its heat
    /// contribution on every shard pager.
    pub fn disconnect(&self, session: u64) -> Result<(), FleetError> {
        {
            let mut stripe = self
                .stripe(session)
                .lock()
                // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                .expect("fleet stripe poisoned");
            stripe
                .remove(&session)
                .ok_or(FleetError::UnknownSession(session))?;
        }
        for shard in &self.shards {
            if let Some(core) = &shard.core {
                core.index().forget_motion(session);
            }
        }
        Ok(())
    }

    /// Executes one window query for a session under the given health
    /// word: route → scatter over shard cores → gather through the
    /// session filter in task order. Merging is deterministic because the
    /// task list is (owner, neighbour)-ordered and the filter replay is
    /// sequential — concurrency lives *across* sessions, exactly as in
    /// the unsharded server.
    pub fn query(
        &self,
        session: u64,
        health: FleetHealth,
        window: &Rect2,
        band: ResolutionBand,
    ) -> Result<FleetQueryResult, FleetError> {
        let plan = self.router().plan(health, window, band);
        let mut stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("fleet stripe poisoned");
        let sess = stripe
            .get_mut(&session)
            .ok_or(FleetError::UnknownSession(session))?;
        let mut result = QueryResult::default();
        let mut replica_promotions = 0u32;
        for task in &plan.tasks {
            let Some(shard) = self.shards.get(task.shard as usize) else {
                continue;
            };
            let core = match task.role {
                ShardRole::Replica => shard.replica.as_ref(),
                ShardRole::Primary | ShardRole::NeighborDegraded => shard.core.as_ref(),
            };
            let Some(core) = core else {
                // An empty tile serves every query vacuously.
                if task.role == ShardRole::Replica {
                    replica_promotions += 1;
                }
                continue;
            };
            if task.role == ShardRole::Replica {
                replica_promotions += 1;
            }
            // Feed the shard pager's heat field (no-op in RAM).
            core.index().observe_motion(session, task.window.center());
            let (hits, io) = core.query_stateless(&task.window, task.band);
            result.io += io;
            for id in hits {
                if sess.sent.insert(id) {
                    core.index().touch_payload(id);
                    result.coeffs += 1;
                    result.bytes += core.data().coeff_bytes;
                    if sess.sent_base.insert(id.object) {
                        result.new_objects += 1;
                        result.bytes += core.data().base_bytes[id.object as usize];
                    }
                }
            }
        }
        Ok(FleetQueryResult {
            result,
            tasks: plan.tasks.len() as u32,
            replica_promotions,
            degraded_subqueries: plan.degraded_subqueries,
            unserved_subqueries: plan.unserved_subqueries,
            complete: plan.complete(),
        })
    }

    /// The raw (session-free) fleet answer for a window: the union of the
    /// per-shard answers under all-up health, deduplicated and sorted.
    /// Equals the unsharded index's answer set — the exactness the
    /// routing invariants pin.
    pub fn query_stateless(&self, window: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        let mut ids: Vec<CoeffRef> = Vec::new();
        let mut io = 0u64;
        for (shard, sub) in self.map.route(window) {
            if let Some(core) = &self.shards[shard as usize].core {
                let (hits, i) = core.query_stateless(&sub, band);
                ids.extend(hits);
                io += i;
            }
        }
        ids.sort_unstable();
        ids.dedup();
        (ids, io)
    }

    /// A sorted snapshot of every coefficient the fleet session has been
    /// sent (the chaos/fleet fingerprint object).
    pub fn session_sent_set(&self, session: u64) -> Result<Vec<CoeffRef>, FleetError> {
        let stripe = self
            .stripe(session)
            .lock()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .expect("fleet stripe poisoned");
        let sess = stripe
            .get(&session)
            .ok_or(FleetError::UnknownSession(session))?;
        let mut refs: Vec<CoeffRef> = sess.sent.iter().copied().collect();
        refs.sort_unstable();
        Ok(refs)
    }

    /// Number of connected fleet sessions.
    pub fn session_count(&self) -> usize {
        self.fleet_stripes
            .iter()
            // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
            .map(|s| s.lock().expect("fleet stripe poisoned").len())
            .sum()
    }

    /// Total resident filter entries across connected sessions — must
    /// return to zero at teardown.
    pub fn resident_filter_entries(&self) -> usize {
        self.fleet_stripes
            .iter()
            .map(|s| {
                s.lock()
                    // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
                    .expect("fleet stripe poisoned")
                    .values()
                    .map(FleetSession::filter_entries)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_workload::{Placement, Scene, SceneConfig};

    fn scene() -> Scene {
        let mut cfg = SceneConfig::paper(12, 77);
        cfg.levels = 3;
        cfg.placement = Placement::Uniform;
        cfg.target_bytes = 1_000_000.0;
        Scene::generate(cfg)
    }

    fn fleet(nx: u32, ny: u32, replicas: bool) -> (FleetServer, Arc<SceneIndexData>, Rect2) {
        let sc = scene();
        let space = sc.config.space;
        let data = Arc::new(SceneIndexData::build(&sc));
        let f = FleetServer::build(&data, space, &FleetConfig::ram(nx, ny, replicas))
            .expect("fleet builds");
        (f, data, space)
    }

    fn windows(space: &Rect2) -> Vec<Rect2> {
        let w = space.extent(0);
        let h = space.extent(1);
        (0..12)
            .map(|i| {
                let fx = 0.07 * i as f64;
                let fy = 0.05 * i as f64;
                Rect2::new(
                    Point2::new([space.lo[0] + fx * w, space.lo[1] + fy * h]),
                    Point2::new([space.lo[0] + (fx + 0.22) * w, space.lo[1] + (fy + 0.17) * h]),
                )
            })
            .collect()
    }

    #[test]
    fn halo_replication_makes_stateless_answers_exact() {
        let (f, data, space) = fleet(4, 2, false);
        let reference = WaveletIndex::build(&data);
        for (i, q) in windows(&space).iter().enumerate() {
            for band in [ResolutionBand::FULL, ResolutionBand::new(0.3, 1.0)] {
                let (mut want, _) = reference.query(q, band);
                want.sort_unstable();
                want.dedup();
                let (got, _) = f.query_stateless(q, band);
                assert_eq!(got, want, "window {i} band {band:?} diverged");
            }
        }
    }

    #[test]
    fn every_coefficient_lands_on_at_least_one_shard() {
        let (f, data, _) = fleet(4, 4, false);
        let total: usize = (0..f.shard_count()).map(|s| f.shard_coeffs(s)).sum();
        assert!(
            total >= data.records.len(),
            "halo replication can only add copies ({total} < {})",
            data.records.len()
        );
        assert!(
            total > data.records.len(),
            "straddling supports must be replicated onto neighbours"
        );
    }

    #[test]
    fn fleet_session_matches_unsharded_server_counts() {
        let (f, data, space) = fleet(4, 2, false);
        let server = crate::Server::from_core(ServerCore::from_parts(
            Arc::clone(&data),
            Arc::new(WaveletIndex::build(&data)),
        ));
        let fs = f.connect();
        let ss = server.connect();
        for q in windows(&space) {
            let band = ResolutionBand::new(0.2, 1.0);
            let fr = f.query(fs, FleetHealth::all_up(), &q, band).unwrap();
            let sr = server
                .query(ss, &[crate::QueryRegion { region: q, band }])
                .unwrap();
            assert!(fr.complete);
            assert_eq!(fr.result.coeffs, sr.coeffs, "dedup across shards failed");
            assert_eq!(fr.result.new_objects, sr.new_objects);
            // Byte totals are sums in different orders; equal to rounding.
            assert!((fr.result.bytes - sr.bytes).abs() < 1e-6 * sr.bytes.max(1.0));
        }
        assert_eq!(
            f.session_sent_set(fs).unwrap(),
            server.session_sent_set(ss).unwrap(),
            "resident sets must be identical"
        );
        f.disconnect(fs).unwrap();
        server.disconnect(ss).unwrap();
        assert_eq!(f.session_count(), 0);
        assert_eq!(f.resident_filter_entries(), 0);
    }

    #[test]
    fn replica_promotion_is_transparent() {
        let (f, _, space) = fleet(4, 2, true);
        let (g, _, _) = fleet(4, 2, true);
        let a = f.connect();
        let b = g.connect();
        let band = ResolutionBand::FULL;
        for (i, q) in windows(&space).iter().enumerate() {
            // Run `a` fault-free; run `b` with a rotating dead shard.
            let down = FleetHealth::all_up().with_down((i % 8) as u32);
            let ra = f.query(a, FleetHealth::all_up(), q, band).unwrap();
            let rb = g.query(b, down, q, band).unwrap();
            assert!(rb.complete, "replicas keep answers complete");
            assert_eq!(rb.degraded_subqueries, 0);
            assert_eq!(rb.unserved_subqueries, 0);
            assert_eq!(ra.result.coeffs, rb.result.coeffs, "window {i}");
        }
        assert_eq!(
            f.session_sent_set(a).unwrap(),
            g.session_sent_set(b).unwrap(),
            "promoted replicas must serve the exact fault-free sets"
        );
    }

    #[test]
    fn degraded_answers_then_recovery_converges() {
        let (f, _, space) = fleet(4, 2, false);
        let (g, _, _) = fleet(4, 2, false);
        let a = f.connect(); // fault-free reference
        let b = g.connect(); // suffers an outage mid-sequence
        let band = ResolutionBand::new(0.1, 1.0);
        let qs = windows(&space);
        let mut saw_degraded = false;
        for (i, q) in qs.iter().enumerate() {
            f.query(a, FleetHealth::all_up(), q, band).unwrap();
            // Shards 0..4 rotate dead during the middle of the tour.
            let health = if (3..9).contains(&i) {
                FleetHealth::all_up().with_down((i % 4) as u32)
            } else {
                FleetHealth::all_up()
            };
            let r = g.query(b, health, q, band).unwrap();
            if !r.complete {
                saw_degraded = true;
                assert!(
                    r.degraded_subqueries > 0 || r.unserved_subqueries > 0,
                    "incomplete must be accounted"
                );
            }
        }
        assert!(saw_degraded, "the outage must actually bite a window");
        // Recovery: refetch every window under all-up health (what the
        // client's uncommitted planner coverage forces), then compare.
        for q in &qs {
            let r = g.query(b, FleetHealth::all_up(), q, band).unwrap();
            assert!(r.complete);
        }
        assert_eq!(
            f.session_sent_set(a).unwrap(),
            g.session_sent_set(b).unwrap(),
            "post-recovery resident set must equal the fault-free run"
        );
    }

    #[test]
    fn degraded_service_comes_from_neighbour_halos() {
        let (f, _, space) = fleet(4, 2, false);
        let s = f.connect();
        // Query exactly one interior tile at full band with its owner
        // dead: the answer must be non-empty (halo coverage) but smaller
        // than the fault-free answer (the tile interior is lost).
        let owner = 1u32;
        let tile = f.map().tile(owner);
        let health = FleetHealth::all_up().with_down(owner);
        let r = f.query(s, health, &tile, ResolutionBand::FULL).unwrap();
        assert!(!r.complete);
        assert_eq!(r.degraded_subqueries, 1);
        assert!(
            r.result.coeffs > 0,
            "neighbour halos must cover the tile border"
        );
        let (want, _) = f.query_stateless(&tile, ResolutionBand::FULL);
        assert!(
            r.result.coeffs < want.len(),
            "a dead tile cannot be fully served from halos ({} vs {})",
            r.result.coeffs,
            want.len()
        );
        let _ = space;
    }

    #[test]
    fn router_is_deterministic_and_orders_tasks() {
        let (f, _, space) = fleet(4, 4, false);
        let router = f.router();
        let q = windows(&space)[3];
        let health = FleetHealth::from_down_mask(0b0110);
        let p1 = router.plan(health, &q, ResolutionBand::FULL);
        let p2 = router.plan(health, &q, ResolutionBand::FULL);
        assert_eq!(p1, p2, "the router is a pure function");
        // Owners ascend; within a dead owner, neighbours ascend.
        let owners: Vec<u32> = p1.tasks.iter().map(|t| t.owner).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_eq!(owners, sorted, "merge order must be shard-id order");
        for w in p1.tasks.windows(2) {
            if w[0].owner == w[1].owner {
                assert!(w[0].shard < w[1].shard, "neighbour tasks must ascend");
            }
        }
    }

    #[test]
    fn typed_errors_and_grid_bounds() {
        let sc = scene();
        let data = Arc::new(SceneIndexData::build(&sc));
        assert_eq!(
            FleetServer::build(&data, sc.config.space, &FleetConfig::ram(9, 8, false)).err(),
            Some(FleetError::BadShardGrid { nx: 9, ny: 8 })
        );
        assert!(matches!(
            ShardMap::new(sc.config.space, 0, 4),
            Err(FleetError::BadShardGrid { .. })
        ));
        let (f, _, space) = fleet(2, 2, false);
        let q = windows(&space)[0];
        assert_eq!(
            f.query(99, FleetHealth::all_up(), &q, ResolutionBand::FULL)
                .err(),
            Some(FleetError::UnknownSession(99))
        );
        assert_eq!(f.disconnect(99), Err(FleetError::UnknownSession(99)));
        assert_eq!(
            f.session_sent_set(99).err(),
            Some(FleetError::UnknownSession(99))
        );
        assert_eq!(f.session_count(), 0);
    }

    #[test]
    fn paged_shards_answer_identically_to_ram() {
        let sc = scene();
        let space = sc.config.space;
        let data = Arc::new(SceneIndexData::build(&sc));
        let dir = std::env::temp_dir().join(format!("mar-core-fleet-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create shard store dir");
        let ram =
            FleetServer::build(&data, space, &FleetConfig::ram(2, 2, false)).expect("ram fleet");
        let paged = FleetServer::build(
            &data,
            space,
            &FleetConfig {
                nx: 2,
                ny: 2,
                replicas: false,
                degrade_step: 0.15,
                backend: FleetBackend::Paged {
                    dir: dir.clone(),
                    budget_bytes: 64 * 1024,
                    policy: mar_store::CachePolicy::MotionAware,
                },
            },
        )
        .expect("paged fleet");
        let a = ram.connect();
        let b = paged.connect();
        for q in windows(&space) {
            let band = ResolutionBand::new(0.1, 1.0);
            let ra = ram.query(a, FleetHealth::all_up(), &q, band).unwrap();
            let rb = paged.query(b, FleetHealth::all_up(), &q, band).unwrap();
            assert_eq!(ra.result.coeffs, rb.result.coeffs);
            assert_eq!(ra.result.new_objects, rb.result.new_objects);
        }
        assert_eq!(
            ram.session_sent_set(a).unwrap(),
            paged.session_sent_set(b).unwrap(),
            "paged shard answers must be byte-identical to RAM"
        );
        ram.disconnect(a).unwrap();
        paged.disconnect(b).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_mask_round_trips() {
        let h = FleetHealth::from_down_mask(0b1010);
        assert!(h.is_down(1) && h.is_down(3));
        assert!(!h.is_down(0) && !h.is_down(2) && !h.is_down(63));
        assert_eq!(h.down_count(), 2);
        assert_eq!(h.with_down(0).down_mask(), 0b1011);
        assert_eq!(FleetHealth::all_up().down_count(), 0);
    }
}
