//! On-disk image of the server's index data (DESIGN.md §15).
//!
//! One `mar-store` page file holds everything the out-of-core query path
//! needs: the R*-tree node pages (the fixed-stride images of
//! [`mar_rtree::RTree::export_pages`], breadth-first, root = page 0),
//! the coefficient records themselves (the payload a hit transmits),
//! and enough metadata to reconstruct the mapping from [`CoeffRef`] to
//! record page — all little-endian, all checksummed by the page layer.
//!
//! File layout (page ids):
//!
//! ```text
//! [0 .. node_pages)             tree node pages, BFS order, root = 0
//! [.. + coeff_pages)            coefficient records, 56 B each
//! [.. + meta_pages)             metadata stream (see below)
//! [last]                        superblock, magic "MARMETA1"
//! ```
//!
//! The metadata stream is `n_objects` × u32 object record offsets
//! followed by one ground-plane MBR (4 × f64) per *data* page (node and
//! coefficient pages alike) — the geometry the motion-aware cache maps
//! to Eq. 2 heat. The superblock sits in the **last** page so
//! [`open_store`] can bootstrap from the page count alone; everything
//! else is recomputed from the file, never from the scene.
//!
//! A coefficient record is 56 bytes: object id (u32), coefficient index
//! (u32), magnitude `w` (f64), subdivision level (u8 + 7 pad bytes) and
//! the support-region MBR (4 × f64). [`PAGE_PAYLOAD`]/56 = 73 records
//! fit one page. Because [`SceneIndexData::build`] orders records by
//! object then coefficient index, `CoeffRef → record index` is just
//! `obj_offsets[object] + coeff` — no per-record directory needed.

use crate::coeff::{CoeffRecord, CoeffRef, SceneIndexData};
use crate::index::WaveletIndex;
use mar_geom::{Point2, Rect2};
use mar_store::{PageFile, StoreError, PAGE_PAYLOAD, PAGE_SIZE};
use std::path::Path;

/// Superblock magic (last page of the file).
pub const SUPERBLOCK_MAGIC: [u8; 8] = *b"MARMETA1";

/// Encoded size of one coefficient record.
pub const RECORD_SIZE: usize = 56;

/// Records per coefficient page.
pub const RECORDS_PER_PAGE: usize = PAGE_PAYLOAD / RECORD_SIZE;

/// Encoded size of one leaf item (a [`CoeffRef`]: object + coeff, u32 LE).
pub const REF_SIZE: usize = 8;

/// Everything [`open_store`] reconstructs from the file besides the raw
/// pages: the section layout, the `CoeffRef → record` mapping and the
/// per-page ground-plane regions the heat function ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// Tree node pages (ids `[0, node_pages)`).
    pub node_pages: u32,
    /// Coefficient record pages (ids `[node_pages, node_pages + coeff_pages)`).
    pub coeff_pages: u32,
    /// Records per coefficient page the file was written with.
    pub records_per_page: u32,
    /// Total coefficient records.
    pub n_records: u32,
    /// First record index of each object (records are grouped by object).
    pub obj_offsets: Vec<u32>,
    /// Ground-plane MBR of each data page (node pages then coefficient
    /// pages) — what the motion-aware cache maps to Eq. 2 heat.
    pub regions: Vec<Rect2>,
}

impl StoreMeta {
    /// Node plus coefficient pages — the pages queries ever fault.
    pub fn data_pages(&self) -> u32 {
        self.node_pages + self.coeff_pages
    }

    /// Dense record index of `id`, or `None` for an unknown object.
    pub fn record_index(&self, id: CoeffRef) -> Option<u32> {
        self.obj_offsets
            .get(id.object as usize)
            .map(|&o| o + id.coeff)
    }

    /// Page id and byte offset of record `rec`.
    pub fn record_page(&self, rec: u32) -> (u32, usize) {
        let per = self.records_per_page.max(1);
        (
            self.node_pages + rec / per,
            (rec % per) as usize * RECORD_SIZE,
        )
    }
}

/// One coefficient record decoded back out of the page file — the subset
/// of [`CoeffRecord`] the store persists (what a transmission needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredRecord {
    /// Which coefficient this is.
    pub id: CoeffRef,
    /// Normalised magnitude.
    pub w: f64,
    /// Subdivision level.
    pub level: u8,
    /// Ground-plane MBR of the support region.
    pub support_xy: Rect2,
}

fn invalid(msg: &str) -> StoreError {
    StoreError::from(std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
}

fn encode_record(r: &CoeffRecord, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&r.id.object.to_le_bytes());
    buf.extend_from_slice(&r.id.coeff.to_le_bytes());
    buf.extend_from_slice(&r.w.to_le_bytes());
    buf.push(r.level);
    buf.extend_from_slice(&[0u8; 7]);
    for d in 0..2 {
        buf.extend_from_slice(&r.support_xy.lo[d].to_le_bytes());
    }
    for d in 0..2 {
        buf.extend_from_slice(&r.support_xy.hi[d].to_le_bytes());
    }
}

fn read_u32(b: &[u8], o: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[o..o + 4]);
    u32::from_le_bytes(a)
}

fn read_f64(b: &[u8], o: usize) -> f64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[o..o + 8]);
    f64::from_le_bytes(a)
}

/// Decodes one 56-byte record image.
pub fn decode_record(b: &[u8]) -> StoredRecord {
    StoredRecord {
        id: CoeffRef {
            object: read_u32(b, 0),
            coeff: read_u32(b, 4),
        },
        w: read_f64(b, 8),
        level: b[16],
        support_xy: Rect2::from_corners(
            Point2::new([read_f64(b, 24), read_f64(b, 32)]),
            Point2::new([read_f64(b, 40), read_f64(b, 48)]),
        ),
    }
}

/// Builds the paper-geometry index over `data` and writes the complete
/// store image to `path`. Returns the metadata the file encodes.
pub fn write_store(path: &Path, data: &SceneIndexData) -> Result<StoreMeta, StoreError> {
    write_store_with(path, data, &WaveletIndex::build(data))
}

/// Writes the store image for an already-built (in-RAM) `index` — the
/// tree shape on disk is exactly the shape in memory, which is what makes
/// the paged descent byte-identical to the RAM one.
pub fn write_store_with(
    path: &Path,
    data: &SceneIndexData,
    index: &WaveletIndex,
) -> Result<StoreMeta, StoreError> {
    let tree = index
        .ram_tree()
        .ok_or_else(|| invalid("cannot export a paged index"))?;
    let export = tree.export_pages(REF_SIZE, |id: &CoeffRef, buf| {
        buf.extend_from_slice(&id.object.to_le_bytes());
        buf.extend_from_slice(&id.coeff.to_le_bytes());
    });
    let node_pages = export.pages.len() as u32;
    let mut pages: Vec<Vec<u8>> = export.pages;
    // Data-page regions: node subtree MBRs projected to the ground plane,
    // then one MBR per coefficient page.
    let mut regions: Vec<Rect2> = export
        .regions
        .iter()
        .map(|r| {
            Rect2::from_corners(
                Point2::new([r.lo[0], r.lo[1]]),
                Point2::new([r.hi[0], r.hi[1]]),
            )
        })
        .collect();
    let mut coeff_pages = 0u32;
    for chunk in data.records.chunks(RECORDS_PER_PAGE) {
        let mut buf = Vec::with_capacity(chunk.len() * RECORD_SIZE);
        let mut lo = [f64::INFINITY; 2];
        let mut hi = [f64::NEG_INFINITY; 2];
        for r in chunk {
            encode_record(r, &mut buf);
            for d in 0..2 {
                lo[d] = lo[d].min(r.support_xy.lo[d]);
                hi[d] = hi[d].max(r.support_xy.hi[d]);
            }
        }
        regions.push(Rect2::from_corners(Point2::new(lo), Point2::new(hi)));
        pages.push(buf);
        coeff_pages += 1;
    }
    // Object record offsets: records are grouped by object in id order.
    let n_objects = data.footprints.len();
    let mut counts = vec![0u32; n_objects];
    for r in &data.records {
        if let Some(c) = counts.get_mut(r.id.object as usize) {
            *c += 1;
        }
    }
    let mut obj_offsets = vec![0u32; n_objects];
    let mut acc = 0u32;
    for (o, &c) in counts.iter().enumerate() {
        obj_offsets[o] = acc;
        acc += c;
    }
    // Metadata stream → pages.
    let mut stream = Vec::with_capacity(n_objects * 4 + regions.len() * 32);
    for &o in &obj_offsets {
        stream.extend_from_slice(&o.to_le_bytes());
    }
    for r in &regions {
        for d in 0..2 {
            stream.extend_from_slice(&r.lo[d].to_le_bytes());
        }
        for d in 0..2 {
            stream.extend_from_slice(&r.hi[d].to_le_bytes());
        }
    }
    let mut meta_pages = 0u32;
    for chunk in stream.chunks(PAGE_PAYLOAD) {
        pages.push(chunk.to_vec());
        meta_pages += 1;
    }
    // Superblock, last page.
    let meta = StoreMeta {
        node_pages,
        coeff_pages,
        records_per_page: RECORDS_PER_PAGE as u32,
        n_records: data.records.len() as u32,
        obj_offsets,
        regions,
    };
    let mut sb = Vec::with_capacity(32);
    sb.extend_from_slice(&SUPERBLOCK_MAGIC);
    sb.extend_from_slice(&meta.node_pages.to_le_bytes());
    sb.extend_from_slice(&meta.coeff_pages.to_le_bytes());
    sb.extend_from_slice(&meta_pages.to_le_bytes());
    sb.extend_from_slice(&meta.records_per_page.to_le_bytes());
    sb.extend_from_slice(&(n_objects as u32).to_le_bytes());
    sb.extend_from_slice(&meta.n_records.to_le_bytes());
    pages.push(sb);
    PageFile::create(path, &pages)?;
    Ok(meta)
}

/// Opens a store image, validating the superblock and reconstructing the
/// metadata from the file alone.
pub fn open_store(path: &Path) -> Result<(PageFile, StoreMeta), StoreError> {
    let mut file = PageFile::open(path)?;
    let n = file.page_count();
    if n == 0 {
        return Err(invalid("store has no superblock page"));
    }
    let sb = file.read_page_vec(n - 1)?;
    if sb[..8] != SUPERBLOCK_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let node_pages = read_u32(&sb, 8);
    let coeff_pages = read_u32(&sb, 12);
    let meta_pages = read_u32(&sb, 16);
    let records_per_page = read_u32(&sb, 20);
    let n_objects = read_u32(&sb, 24) as usize;
    let n_records = read_u32(&sb, 28);
    let data_pages = node_pages as u64 + coeff_pages as u64;
    if data_pages + meta_pages as u64 + 1 != n as u64 {
        return Err(invalid("superblock page layout disagrees with file size"));
    }
    if records_per_page == 0 && n_records > 0 {
        return Err(invalid("superblock claims records but zero per page"));
    }
    let mut stream = Vec::with_capacity(meta_pages as usize * PAGE_PAYLOAD);
    for p in 0..meta_pages {
        stream.extend_from_slice(&file.read_page_vec(data_pages as u32 + p)?);
    }
    let need = n_objects * 4 + data_pages as usize * 32;
    if stream.len() < need {
        return Err(invalid(
            "metadata stream shorter than the superblock claims",
        ));
    }
    let mut obj_offsets = Vec::with_capacity(n_objects);
    for o in 0..n_objects {
        obj_offsets.push(read_u32(&stream, o * 4));
    }
    let mut regions = Vec::with_capacity(data_pages as usize);
    let base = n_objects * 4;
    for p in 0..data_pages as usize {
        let o = base + p * 32;
        let lo = Point2::new([read_f64(&stream, o), read_f64(&stream, o + 8)]);
        let hi = Point2::new([read_f64(&stream, o + 16), read_f64(&stream, o + 24)]);
        // NaN coordinates are malformed too, so demand an explicit
        // `lo <= hi` ordering rather than rejecting only `lo > hi`.
        let ordered = |d: usize| {
            matches!(
                lo[d].partial_cmp(&hi[d]),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        };
        if !(0..2).all(ordered) {
            return Err(invalid("malformed page region in metadata stream"));
        }
        regions.push(Rect2::from_corners(lo, hi));
    }
    Ok((
        file,
        StoreMeta {
            node_pages,
            coeff_pages,
            records_per_page,
            n_records,
            obj_offsets,
            regions,
        },
    ))
}

/// Size of a store file in bytes given its page count (every page,
/// superblock included, is [`PAGE_SIZE`] plus its share of the header).
pub fn store_file_bytes(page_count: u32) -> u64 {
    // Header page + data pages, as laid out by `PageFile`.
    (page_count as u64 + 1) * PAGE_SIZE as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_workload::{Scene, SceneConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mar-core-store-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(format!(
            "{}-{}-{name}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn data() -> SceneIndexData {
        let mut cfg = SceneConfig::paper(6, 3);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        SceneIndexData::build(&Scene::generate(cfg))
    }

    #[test]
    fn store_round_trips_meta_and_records() {
        let d = data();
        let path = tmp("roundtrip.pages");
        let written = write_store(&path, &d).expect("write");
        let (mut file, meta) = open_store(&path).expect("open");
        assert_eq!(written, meta);
        assert_eq!(meta.n_records as usize, d.records.len());
        assert_eq!(
            meta.regions.len(),
            meta.node_pages as usize + meta.coeff_pages as usize
        );
        // Every record decodes back to what the scene data holds.
        for r in &d.records {
            let rec = meta.record_index(r.id).expect("known object");
            let (page, off) = meta.record_page(rec);
            let bytes = file.read_page_vec(page).expect("record page");
            let got = decode_record(&bytes[off..off + RECORD_SIZE]);
            assert_eq!(got.id, r.id);
            assert_eq!(got.w, r.w);
            assert_eq!(got.level, r.level);
            assert_eq!(got.support_xy, r.support_xy);
        }
    }

    #[test]
    fn record_mapping_is_dense_and_in_file_order() {
        let d = data();
        let path = tmp("mapping.pages");
        let meta = write_store(&path, &d).expect("write");
        for (i, r) in d.records.iter().enumerate() {
            assert_eq!(meta.record_index(r.id), Some(i as u32));
        }
        assert_eq!(
            meta.record_index(CoeffRef {
                object: meta.obj_offsets.len() as u32,
                coeff: 0
            }),
            None
        );
    }

    #[test]
    fn open_rejects_a_wrong_superblock() {
        let d = data();
        let path = tmp("badmagic.pages");
        write_store(&path, &d).expect("write");
        // Rebuild the file with the superblock magic flipped: keep every
        // page image but corrupt the last payload, checksums recomputed.
        let (mut file, meta) = open_store(&path).expect("open");
        let n = file.page_count();
        let mut pages: Vec<Vec<u8>> = (0..n)
            .map(|p| file.read_page_vec(p).expect("page"))
            .collect();
        pages[n as usize - 1][0] ^= 0xff;
        let path2 = tmp("badmagic2.pages");
        PageFile::create(&path2, &pages).expect("rewrite");
        assert!(matches!(open_store(&path2), Err(StoreError::BadMagic)));
        drop(meta);
    }

    #[test]
    fn open_rejects_a_truncated_layout() {
        let d = data();
        let path = tmp("layout.pages");
        write_store(&path, &d).expect("write");
        let (mut file, _) = open_store(&path).expect("open");
        let n = file.page_count();
        // Drop one data page but keep the superblock: layout mismatch.
        let mut pages: Vec<Vec<u8>> = (0..n)
            .map(|p| file.read_page_vec(p).expect("page"))
            .collect();
        pages.remove(0);
        let path2 = tmp("layout2.pages");
        PageFile::create(&path2, &pages).expect("rewrite");
        assert!(open_store(&path2).is_err());
    }
}
