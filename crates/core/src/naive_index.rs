//! The §VI straw-man access method.
//!
//! "An R-tree can be used to index the positions of wavelet coefficients
//! and the associated values … For this, all the coefficients (vertices)
//! that fall inside the query rectangle are retrieved first. However,
//! these coefficients are not sufficient … Therefore, after retrieving
//! initial sets of coefficients, we compute a bounding region that encloses
//! all the neighbouring vertices and re-execute the query for the extended
//! region."
//!
//! That is exactly what [`NaivePointIndex::query`] does, and why it loses:
//! it pays two passes, the second over a grown window, and it must store
//! the neighbour bounding box with every vertex.

use crate::coeff::{CoeffRef, SceneIndexData};
use mar_geom::{Rect2, Rect3};
use mar_mesh::ResolutionBand;
use mar_rtree::{RTree, RTreeConfig};

/// Per-entry payload: the coefficient plus its stored neighbour box.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PointEntry {
    id: CoeffRef,
    ring_xy: Rect2,
}

/// The naive point index over `(x, y, w)` coefficient positions.
#[derive(Debug)]
pub struct NaivePointIndex {
    tree: RTree<3, PointEntry>,
}

impl NaivePointIndex {
    /// Bulk-loads with the paper's page geometry.
    pub fn build(data: &SceneIndexData) -> Self {
        Self::build_with(data, RTreeConfig::paper())
    }

    /// Bulk-loads with a custom configuration.
    pub fn build_with(data: &SceneIndexData, config: RTreeConfig) -> Self {
        let items: Vec<(Rect3, PointEntry)> = data
            .records
            .iter()
            .map(|r| {
                (
                    Rect2::point(r.vertex_xy).lift(r.w, r.w),
                    PointEntry {
                        id: r.id,
                        ring_xy: r.ring_xy,
                    },
                )
            })
            .collect();
        Self {
            tree: RTree::bulk_load(config, items),
        }
    }

    /// Number of indexed coefficients.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Executes `Q(R, w_max, w_min)` the straw-man way:
    /// 1. fetch the coefficients whose *vertex* lies in `R`;
    /// 2. union their stored neighbour boxes into an extended region;
    /// 3. re-execute over the extended region;
    /// 4. keep the phase-2 hits that are relevant to `R` (vertex inside, or
    ///    neighbour box touching `R`).
    ///
    /// Returns the hits and the total node accesses of both passes.
    pub fn query(&self, region: &Rect2, band: ResolutionBand) -> (Vec<CoeffRef>, u64) {
        let window: Rect3 = region.lift(band.w_min, band.w_max);
        let mut phase1: Vec<PointEntry> = Vec::new();
        let io1 = self.tree.search(&window, |_, e| phase1.push(*e));
        if phase1.is_empty() {
            return (Vec::new(), io1);
        }
        // Extended region: covers every neighbour of a phase-1 vertex.
        let mut extended = *region;
        for e in &phase1 {
            extended = extended.union(&e.ring_xy);
        }
        let ext_window: Rect3 = extended.lift(band.w_min, band.w_max);
        let mut hits: Vec<CoeffRef> = Vec::new();
        let io2 = self.tree.search(&ext_window, |rect, e| {
            // Keep vertices inside R, plus neighbours that contribute to R
            // (their ring reaches into R).
            let vertex_inside =
                region.contains_point(&mar_geom::Point2::new([rect.lo[0], rect.lo[1]]));
            if vertex_inside || e.ring_xy.intersects(region) {
                hits.push(e.id);
            }
        });
        (hits, io1 + io2)
    }

    /// Cumulative I/O across queries.
    pub fn io_count(&self) -> u64 {
        self.tree.io_count()
    }

    /// Resets the cumulative I/O counter.
    pub fn reset_io(&self) {
        self.tree.reset_io();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::WaveletIndex;
    use mar_geom::Point2;
    use mar_workload::{Scene, SceneConfig};

    fn data() -> SceneIndexData {
        let mut cfg = SceneConfig::paper(6, 3);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        SceneIndexData::build(&Scene::generate(cfg))
    }

    #[test]
    fn naive_query_covers_vertices_in_region() {
        let d = data();
        let idx = NaivePointIndex::build(&d);
        let w = Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0]));
        let (got, io) = idx.query(&w, ResolutionBand::FULL);
        assert!(io >= 2, "two passes expected");
        // Every coefficient whose vertex is inside must be present.
        for r in &d.records {
            if w.contains_point(&r.vertex_xy) {
                assert!(got.contains(&r.id));
            }
        }
    }

    #[test]
    fn naive_costs_more_io_than_support_index() {
        let d = data();
        let naive = NaivePointIndex::build(&d);
        let good = WaveletIndex::build(&d);
        let mut io_naive = 0;
        let mut io_good = 0;
        for (x, y) in [
            (100.0, 100.0),
            (300.0, 500.0),
            (600.0, 200.0),
            (700.0, 700.0),
        ] {
            let w = Rect2::new(Point2::new([x, y]), Point2::new([x + 150.0, y + 150.0]));
            io_naive += naive.query(&w, ResolutionBand::FULL).1;
            io_good += good.query(&w, ResolutionBand::FULL).1;
        }
        assert!(
            io_naive > io_good,
            "naive {io_naive} must exceed support-region {io_good}"
        );
    }

    #[test]
    fn naive_and_support_agree_on_core_coefficients() {
        // Both methods must deliver every coefficient whose support
        // overlaps the window (the naive one may fetch a superset shape
        // but must not lose anything the reconstruction needs: vertices in
        // R and neighbours reaching into R).
        let d = data();
        let naive = NaivePointIndex::build(&d);
        let good = WaveletIndex::build(&d);
        let w = Rect2::new(Point2::new([200.0, 200.0]), Point2::new([450.0, 400.0]));
        let (mut a, _) = naive.query(&w, ResolutionBand::FULL);
        let (mut b, _) = good.query(&w, ResolutionBand::FULL);
        a.sort_unstable();
        b.sort_unstable();
        // Vertices strictly inside R appear in both.
        for r in &d.records {
            if w.contains_point(&r.vertex_xy) {
                assert!(a.binary_search(&r.id).is_ok(), "naive missing {:?}", r.id);
                assert!(b.binary_search(&r.id).is_ok(), "support missing {:?}", r.id);
            }
        }
    }

    #[test]
    fn empty_region_single_pass() {
        let d = data();
        let idx = NaivePointIndex::build(&d);
        let w = Rect2::new(Point2::new([-100.0, -100.0]), Point2::new([-50.0, -50.0]));
        let (got, io) = idx.query(&w, ResolutionBand::FULL);
        assert!(got.is_empty());
        // Phase 2 must be skipped when phase 1 found nothing.
        assert!(io <= idx.tree.node_count() as u64);
    }
}
