//! The out-of-core query backend: the store image of [`crate::store`]
//! read through a motion-aware buffer pool (DESIGN.md §15).
//!
//! [`PagedIndex`] answers exactly the queries the in-RAM
//! [`crate::index::WaveletIndex`] answers, with byte-identical results:
//! the scalar descent mirrors [`mar_rtree::RTree::search`] (per-entry
//! closed-interval tests, children pushed in ascending entry order, LIFO
//! pops) and the grouped descent mirrors
//! [`mar_rtree::RTree::search_batch`] loop for loop — same `(node,
//! window-bitmask)` stack, same per-set-bit logical attribution, same
//! 64-wide child-mask transpose. Hit sets, visit order and access counts
//! cannot drift from the RAM path because the algorithms are the same;
//! only the node fetch differs (a [`PageCache`] read instead of an arena
//! index).
//!
//! I/O accounting extends the paper's metric with one new axis: logical
//! and unique node accesses tally exactly as in RAM, and every pool
//! *miss* — a real trip to the page file, for node and payload pages
//! alike — counts as a **physical** access ([`mar_rtree::IoKind`]).
//!
//! # Locking (DESIGN.md §13)
//!
//! The pager mutex (pool + heat field) is a **leaf** lock: no code
//! holding it acquires any other lock, so the `session stripe → pager`
//! edge the server adds keeps the global lock-order graph acyclic. Each
//! page fetch locks and releases the pager — page payloads come back as
//! shared `Arc`s, so decoding happens outside the critical section.

use crate::coeff::CoeffRef;
use crate::store::{decode_record, open_store, StoreMeta, StoredRecord, RECORD_SIZE, REF_SIZE};
use mar_buffer::MotionHeat;
use mar_geom::{Point2, Rect3};
use mar_rtree::{BatchAccesses, IoCounters, IoKind, IoSnapshot, NodePage, PagedNodeKind};
use mar_store::{CachePolicy, PageCache, PageCacheStats, StoreError};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The mutable half of the backend: the bounded pool plus the Eq. 2 heat
/// field its victim ranking consults.
#[derive(Debug)]
struct Pager {
    cache: PageCache,
    heat: MotionHeat,
}

/// The disk-backed wavelet index backend.
#[derive(Debug)]
pub struct PagedIndex {
    pager: Mutex<Pager>,
    meta: StoreMeta,
    file_pages: u32,
    io: IoCounters,
}

impl PagedIndex {
    /// Opens a store image under a buffer pool of `budget_bytes` with the
    /// given eviction policy.
    pub fn open(path: &Path, budget_bytes: usize, policy: CachePolicy) -> Result<Self, StoreError> {
        let (file, meta) = open_store(path)?;
        let file_pages = file.page_count();
        let cache = PageCache::new(file, budget_bytes, policy);
        // Heat half-distance: an eighth of the scene's mean extent (the
        // root page region spans the whole indexed scene).
        let scale = meta
            .regions
            .first()
            .map(|r| ((r.hi[0] - r.lo[0]) + (r.hi[1] - r.lo[1])) / 8.0)
            .filter(|s| *s > 0.0 && s.is_finite())
            .unwrap_or(1.0);
        let heat = MotionHeat::server_default(scale);
        Ok(Self {
            pager: Mutex::new(Pager { cache, heat }),
            meta,
            file_pages,
            io: IoCounters::new(),
        })
    }

    /// The store layout metadata.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Indexed coefficients.
    pub fn len(&self) -> usize {
        self.meta.n_records as usize
    }

    /// True when the store indexes nothing.
    pub fn is_empty(&self) -> bool {
        self.meta.n_records == 0
    }

    /// Tree node pages in the store.
    pub fn node_count(&self) -> usize {
        self.meta.node_pages as usize
    }

    /// On-disk size of the backing store file in bytes.
    pub fn file_bytes(&self) -> u64 {
        crate::store::store_file_bytes(self.file_pages)
    }

    /// The pool's eviction policy.
    pub fn policy(&self) -> CachePolicy {
        self.lock_pager().cache.policy()
    }

    /// Buffer-pool counters (hits, faults, evictions, bypasses).
    pub fn cache_stats(&self) -> PageCacheStats {
        self.lock_pager().cache.stats()
    }

    /// Zeroes the buffer-pool counters.
    pub fn reset_cache_stats(&self) {
        self.lock_pager().cache.reset_stats();
    }

    /// Cumulative node-access counters (logical / unique / physical).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.io.snapshot()
    }

    /// Cumulative logical node accesses (the paper's metric).
    pub fn io_count(&self) -> u64 {
        self.io.get(IoKind::Logical)
    }

    /// Resets the cumulative node-access counters.
    pub fn reset_io(&self) {
        self.io.reset();
    }

    /// Records that `session`'s window is now centred at `pos`; the heat
    /// field turns the per-session movement history into the Eq. 2
    /// k-direction allocation the pool's victim ranking consults.
    pub fn observe_motion(&self, session: u64, pos: Point2) {
        self.lock_pager().heat.observe(session, pos);
    }

    /// Drops `session`'s contribution to the heat field.
    pub fn forget_motion(&self, session: u64) {
        self.lock_pager().heat.forget(session);
    }

    /// Sessions currently contributing heat.
    pub fn motion_sessions(&self) -> usize {
        self.lock_pager().heat.session_count()
    }

    fn lock_pager(&self) -> std::sync::MutexGuard<'_, Pager> {
        // mar-lint: allow(D004) — poisoning implies another client thread panicked; propagate
        self.pager.lock().expect("pager poisoned")
    }

    /// Fetches one page through the pool, tallying a physical access on
    /// a miss. The heat of a candidate page is the Eq. 2 heat at the
    /// centre of its ground-plane region.
    fn page(&self, page: u32) -> Arc<Vec<u8>> {
        let mut pager = self.lock_pager();
        let Pager { cache, heat } = &mut *pager;
        let regions = &self.meta.regions;
        // A page is as hot as the hottest predicted point its region
        // covers: root and upper internal pages contain every session and
        // stay resident; leaf and coefficient pages rank directionally.
        // The page being faulted is serving a live query, so it ranks
        // maximally — admission can displace the coldest resident but a
        // mid-run payload page is never served without being cached.
        let rank = move |p: u32| {
            if p == page {
                return f64::INFINITY;
            }
            regions.get(p as usize).map_or(0.0, |r| heat.heat_rect(r))
        };
        let (data, hit) = cache
            .read_with_heat(page, &rank)
            // mar-lint: allow(D004) — the store was validated at open; a failed page read here is unrecoverable corruption
            .expect("store page read failed");
        if !hit {
            self.io.add(IoKind::Physical, 1);
        }
        data
    }

    fn decode_ref(b: &[u8]) -> CoeffRef {
        CoeffRef {
            object: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            coeff: u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }

    /// Scalar window search, mirroring [`mar_rtree::RTree::search`]:
    /// identical visit order and access count. Returns the node accesses.
    pub fn for_each(&self, window: &Rect3, mut visit: impl FnMut(CoeffRef)) -> u64 {
        let mut stack = vec![0u32];
        let mut accesses = 0u64;
        while let Some(id) = stack.pop() {
            accesses += 1;
            let bytes = self.page(id);
            let node = NodePage::<3>::parse(&bytes, REF_SIZE)
                // mar-lint: allow(D004) — the store was validated at open; a malformed node image is unrecoverable corruption
                .expect("malformed node page");
            match node.kind() {
                PagedNodeKind::Leaf => {
                    for i in 0..node.len() {
                        if node.rect(i).intersects(window) {
                            visit(Self::decode_ref(node.item_bytes(i)));
                        }
                    }
                }
                PagedNodeKind::Internal => {
                    for i in 0..node.len() {
                        if node.rect(i).intersects(window) {
                            stack.push(node.child(i));
                        }
                    }
                }
            }
        }
        self.io.add(IoKind::Logical, accesses);
        self.io.add(IoKind::Unique, accesses);
        accesses
    }

    /// Grouped multi-window search, mirroring
    /// [`mar_rtree::RTree::search_batch`]: per-window hit sets, visit
    /// order and logical accesses equal the scalar path; nodes shared by
    /// several windows of a 64-wide group are fetched once.
    pub fn for_each_batch(
        &self,
        windows: &[Rect3],
        mut visit: impl FnMut(usize, CoeffRef),
    ) -> BatchAccesses {
        let mut per_window = vec![0u64; windows.len()];
        let mut unique = 0u64;
        for (chunk_idx, chunk) in windows.chunks(64).enumerate() {
            unique += self.search_group(chunk, chunk_idx * 64, &mut per_window, &mut visit);
        }
        let total: u64 = per_window.iter().sum();
        self.io.add(IoKind::Logical, total);
        self.io.add(IoKind::Unique, unique);
        BatchAccesses { per_window, unique }
    }

    /// One ≤64-window group descent; returns the physical node visits.
    fn search_group(
        &self,
        windows: &[Rect3],
        base: usize,
        per_window: &mut [u64],
        visit: &mut impl FnMut(usize, CoeffRef),
    ) -> u64 {
        if windows.is_empty() {
            return 0;
        }
        let all = if windows.len() == 64 {
            u64::MAX
        } else {
            (1u64 << windows.len()) - 1
        };
        let mut stack: Vec<(u32, u64)> = vec![(0, all)];
        let mut unique = 0u64;
        while let Some((id, group)) = stack.pop() {
            unique += 1;
            let mut g = group;
            while g != 0 {
                let w = g.trailing_zeros() as usize;
                g &= g - 1;
                per_window[base + w] += 1;
            }
            let bytes = self.page(id);
            let node = NodePage::<3>::parse(&bytes, REF_SIZE)
                // mar-lint: allow(D004) — the store was validated at open; a malformed node image is unrecoverable corruption
                .expect("malformed node page");
            match node.kind() {
                PagedNodeKind::Leaf => {
                    let mut g = group;
                    while g != 0 {
                        let w = g.trailing_zeros() as usize;
                        g &= g - 1;
                        let window = &windows[w];
                        for i in 0..node.len() {
                            if node.rect(i).intersects(window) {
                                visit(base + w, Self::decode_ref(node.item_bytes(i)));
                            }
                        }
                    }
                }
                PagedNodeKind::Internal => {
                    let mut start = 0;
                    while start < node.len() {
                        let n = (node.len() - start).min(64);
                        let mut child_masks = [0u64; 64];
                        let mut g = group;
                        while g != 0 {
                            let w = g.trailing_zeros() as usize;
                            g &= g - 1;
                            let window = &windows[w];
                            for (j, cm) in child_masks[..n].iter_mut().enumerate() {
                                if node.rect(start + j).intersects(window) {
                                    *cm |= 1u64 << w;
                                }
                            }
                        }
                        for (j, &cm) in child_masks[..n].iter().enumerate() {
                            if cm != 0 {
                                stack.push((node.child(start + j), cm));
                            }
                        }
                        start += n;
                    }
                }
            }
        }
        unique
    }

    /// Counts items intersecting `window`. Totals (count and accesses)
    /// equal [`mar_rtree::RTree::count_in`]'s, which itself matches the
    /// scalar search.
    pub fn count_in(&self, window: &Rect3) -> (usize, u64) {
        let mut hits = 0usize;
        let io = self.for_each(window, |_| hits += 1);
        (hits, io)
    }

    /// Touches the payload page holding `id`'s coefficient record — the
    /// disk trip a transmission performs. Counts a physical access on a
    /// pool miss; unknown ids are ignored.
    pub fn touch_payload(&self, id: CoeffRef) {
        if let Some(rec) = self.meta.record_index(id) {
            if rec < self.meta.n_records {
                let (page, _) = self.meta.record_page(rec);
                let _ = self.page(page);
            }
        }
    }

    /// Reads `id`'s coefficient record back from the store (through the
    /// pool). `None` for ids outside the stored scene.
    pub fn read_record(&self, id: CoeffRef) -> Option<StoredRecord> {
        let rec = self.meta.record_index(id)?;
        if rec >= self.meta.n_records {
            return None;
        }
        let (page, off) = self.meta.record_page(rec);
        let bytes = self.page(page);
        Some(decode_record(&bytes[off..off + RECORD_SIZE]))
    }

    /// Structural sanity of the open store (the deep validation happened
    /// at open: superblock, layout and per-page checksums).
    pub fn validate(&self) -> Result<(), String> {
        if self.meta.data_pages() > self.file_pages {
            return Err("metadata claims more data pages than the file holds".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::SceneIndexData;
    use crate::index::WaveletIndex;
    use crate::store::write_store;
    use mar_geom::{Point2, Rect2};
    use mar_mesh::ResolutionBand;
    use mar_workload::{Scene, SceneConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mar-core-paged-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(format!(
            "{}-{}-{name}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn data() -> SceneIndexData {
        let mut cfg = SceneConfig::paper(6, 3);
        cfg.levels = 3;
        cfg.target_bytes = 1_000_000.0;
        SceneIndexData::build(&Scene::generate(cfg))
    }

    fn windows() -> Vec<Rect3> {
        let rects = [
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([1000.0, 1000.0])),
            Rect2::new(Point2::new([100.0, 100.0]), Point2::new([400.0, 350.0])),
            Rect2::new(Point2::new([700.0, 600.0]), Point2::new([760.0, 690.0])),
            Rect2::new(Point2::new([-50.0, -50.0]), Point2::new([-10.0, -10.0])),
        ];
        let bands = [
            ResolutionBand::FULL,
            ResolutionBand::new(0.5, 1.0),
            ResolutionBand::new(0.2, 0.7),
        ];
        let mut out = Vec::new();
        for r in &rects {
            for b in &bands {
                out.push(r.lift(b.w_min, b.w_max));
            }
        }
        out
    }

    fn open_small(
        name: &str,
        budget_pages: usize,
        policy: CachePolicy,
    ) -> (PagedIndex, WaveletIndex, SceneIndexData) {
        let d = data();
        let ram = WaveletIndex::build(&d);
        let path = tmp(name);
        write_store(&path, &d).expect("write");
        let paged =
            PagedIndex::open(&path, budget_pages * mar_store::PAGE_SIZE, policy).expect("open");
        (paged, ram, d)
    }

    #[test]
    fn scalar_descent_matches_ram_order_and_io() {
        let (paged, ram, _) = open_small("scalar.pages", 4, CachePolicy::Lru);
        for (k, w) in windows().iter().enumerate() {
            let mut ram_hits = Vec::new();
            let ram_io = ram
                .ram_tree()
                .expect("ram")
                .search(w, |_, id| ram_hits.push(*id));
            let mut paged_hits = Vec::new();
            let paged_io = paged.for_each(w, |id| paged_hits.push(id));
            // Order-sensitive equality: the descent is the same algorithm.
            assert_eq!(paged_hits, ram_hits, "window {k} hit order");
            assert_eq!(paged_io, ram_io, "window {k} accesses");
        }
        let snap = paged.io_snapshot();
        assert_eq!(snap.logical, snap.unique);
        assert!(snap.physical > 0, "a 4-page pool must fault");
        assert!(
            snap.physical <= snap.unique,
            "physical reads cannot exceed unique node visits"
        );
    }

    #[test]
    fn batch_descent_matches_ram_bit_for_bit() {
        let (paged, ram, _) = open_small("batch.pages", 6, CachePolicy::MotionAware);
        let ws = windows();
        let mut ram_hits: Vec<Vec<CoeffRef>> = vec![Vec::new(); ws.len()];
        let ram_acc = ram
            .ram_tree()
            .expect("ram")
            .search_batch(&ws, |q, _, id| ram_hits[q].push(*id));
        let mut paged_hits: Vec<Vec<CoeffRef>> = vec![Vec::new(); ws.len()];
        let paged_acc = paged.for_each_batch(&ws, |q, id| paged_hits[q].push(id));
        assert_eq!(paged_hits, ram_hits, "per-window hit order");
        assert_eq!(paged_acc, ram_acc, "per-window logical + unique accesses");
    }

    #[test]
    fn count_in_matches_ram_totals() {
        let (paged, ram, _) = open_small("count.pages", 4, CachePolicy::Lru);
        for (k, w) in windows().iter().enumerate() {
            let (ram_n, ram_io) = ram.ram_tree().expect("ram").count_in(w);
            let (paged_n, paged_io) = paged.count_in(w);
            assert_eq!(paged_n, ram_n, "window {k} count");
            assert_eq!(paged_io, ram_io, "window {k} accesses");
        }
    }

    #[test]
    fn payload_touches_fault_then_hit() {
        let (paged, _, d) = open_small("payload.pages", 32, CachePolicy::Lru);
        let id = d.records[0].id;
        paged.reset_cache_stats();
        paged.touch_payload(id);
        paged.touch_payload(id);
        let s = paged.cache_stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.faults, 1);
        assert_eq!(s.hits, 1);
        let got = paged.read_record(id).expect("record");
        assert_eq!(got.id, id);
        assert_eq!(got.w, d.records[0].w);
        assert_eq!(got.support_xy, d.records[0].support_xy);
        assert_eq!(
            paged.read_record(CoeffRef {
                object: u32::MAX,
                coeff: 0
            }),
            None
        );
    }

    #[test]
    fn motion_observations_feed_the_heat_field() {
        let (paged, _, _) = open_small("motion.pages", 4, CachePolicy::MotionAware);
        assert_eq!(paged.motion_sessions(), 0);
        for i in 0..5 {
            paged.observe_motion(7, Point2::new([100.0 + 10.0 * i as f64, 500.0]));
        }
        assert_eq!(paged.motion_sessions(), 1);
        paged.forget_motion(7);
        assert_eq!(paged.motion_sessions(), 0);
        assert!(paged.validate().is_ok());
    }
}
