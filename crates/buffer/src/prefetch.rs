//! Prefetch planning: which blocks should be in the buffer next.
//!
//! §V-B, summarised by the paper as: "(i) estimate the client's path and
//! probabilities of surrounding cell blocks to be visited, (ii) select the
//! list of blocks to be put into the buffer from each of the directions,
//! (iii) retrieve objects from the server for the predicted blocks which
//! are currently not in the client's buffer."
//!
//! [`MotionAwarePrefetcher`] implements exactly that pipeline on top of
//! `mar-motion` (block visit probabilities) and [`crate::alloc`]
//! (per-direction buffer allocation). [`NaivePrefetcher`] is the paper's
//! baseline "where all the surrounding regions of a query frame are
//! buffered with equal probabilities".

use crate::alloc::{allocate_directions, best_ordering_allocation};
use mar_geom::{BlockId, GridSpec, Point2, SectorPartition};
use mar_motion::probability::direction_probabilities;
use std::collections::{BTreeMap, BTreeSet};

/// Everything a prefetcher may look at when planning.
#[derive(Debug)]
pub struct PrefetchContext<'a> {
    /// The block grid.
    pub grid: &'a GridSpec,
    /// The client's current position.
    pub position: Point2,
    /// Blocks covered by the current query frame (always kept buffered).
    pub frame_blocks: &'a [BlockId],
    /// How many blocks beyond the frame the buffer can hold.
    pub budget: usize,
    /// Visit probabilities of surrounding blocks (from the motion
    /// predictor); may be empty for a cold predictor.
    pub block_probs: &'a BTreeMap<BlockId, f64>,
    /// Optional externally supplied direction probabilities (length `k`),
    /// e.g. from a [`mar_motion::MarkovDirectionModel`]. When set, the
    /// prefetcher uses these for the budget allocation instead of folding
    /// `block_probs` into sectors.
    pub direction_hint: Option<&'a [f64]>,
}

/// A prefetch planner.
pub trait Prefetcher {
    /// Returns the blocks (beyond the current frame's) that should be in
    /// the buffer, at most `ctx.budget` of them, most valuable first.
    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> Vec<BlockId>;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// How the buffer budget is distributed across direction sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationStrategy {
    /// The paper's recursive Eq. 2 halving (§V-A).
    #[default]
    Recursive,
    /// Even split regardless of probabilities (ablation baseline).
    Even,
    /// Exhaustive ordering search scored by simulated residence time —
    /// the paper's `k!` step it concluded "can be omitted".
    BestOrdering,
}

/// The paper's motion-aware prefetcher.
#[derive(Debug, Clone)]
pub struct MotionAwarePrefetcher {
    partition: SectorPartition,
    strategy: AllocationStrategy,
}

impl MotionAwarePrefetcher {
    /// Creates the prefetcher with `k` direction sectors (paper's figure
    /// uses 4) and the recursive Eq. 2 allocation.
    pub fn new(k: usize) -> Self {
        Self {
            partition: SectorPartition::axis_centered(k),
            strategy: AllocationStrategy::Recursive,
        }
    }

    /// Creates the prefetcher with an explicit allocation strategy.
    pub fn with_strategy(k: usize, strategy: AllocationStrategy) -> Self {
        Self {
            partition: SectorPartition::axis_centered(k),
            strategy,
        }
    }

    fn allocate(&self, budget: usize, dir_probs: &[f64]) -> Vec<usize> {
        match self.strategy {
            AllocationStrategy::Recursive => allocate_directions(budget, dir_probs),
            AllocationStrategy::Even => {
                let k = dir_probs.len();
                let mut out = vec![budget / k; k];
                for slot in out.iter_mut().take(budget % k) {
                    *slot += 1;
                }
                out
            }
            AllocationStrategy::BestOrdering => best_ordering_allocation(budget, dir_probs).0,
        }
    }
}

impl Prefetcher for MotionAwarePrefetcher {
    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> Vec<BlockId> {
        if ctx.budget == 0 {
            return Vec::new();
        }
        let k = self.partition.k();
        // (i) direction probabilities: an explicit hint (alternative
        // estimators, e.g. the Markov model) or folded block probabilities.
        let dir_probs = match ctx.direction_hint {
            Some(h) if h.len() == k => h.to_vec(),
            _ => direction_probabilities(ctx.grid, &ctx.position, ctx.block_probs, &self.partition),
        };
        // (ii) split the budget across directions with Eq. 2 recursion.
        let alloc = self.allocate(ctx.budget, &dir_probs);
        // (iii) within each direction pick the highest-probability blocks,
        // topping up with proximity when the predictor offered too few.
        let exclude: BTreeSet<BlockId> = ctx.frame_blocks.iter().copied().collect();
        let center_block = ctx.grid.block_of(&ctx.position);
        // Already in key order (BTreeMap), so the bucket fill below is
        // deterministic.
        let candidates: Vec<BlockId> = ctx
            .block_probs
            .keys()
            .copied()
            .filter(|b| !exclude.contains(b))
            .collect();
        let assignment = self
            .partition
            .assign_blocks(ctx.grid, &ctx.position, &candidates, 1e-9);
        // Bucket candidates per direction, best probability first.
        let mut buckets: Vec<Vec<BlockId>> = vec![Vec::new(); k];
        for b in &candidates {
            if let Some(&sector) = assignment.get(b) {
                buckets[sector].push(*b);
            }
        }
        for bucket in &mut buckets {
            bucket.sort_by(|a, b| {
                let pa = ctx.block_probs.get(a).copied().unwrap_or(0.0);
                let pb = ctx.block_probs.get(b).copied().unwrap_or(0.0);
                pb.total_cmp(&pa).then_with(|| {
                    center_block
                        .ring_distance(a)
                        .cmp(&center_block.ring_distance(b))
                })
            });
        }
        let mut picked: Vec<BlockId> = Vec::with_capacity(ctx.budget);
        let mut picked_set: BTreeSet<BlockId> = BTreeSet::new();
        for (sector, want) in alloc.iter().enumerate() {
            let mut got = 0usize;
            for b in &buckets[sector] {
                if got == *want {
                    break;
                }
                if picked_set.insert(*b) {
                    picked.push(*b);
                    got += 1;
                }
            }
            if got < *want {
                // Fill with nearest in-sector ring blocks.
                let ring_max = ((ctx.budget as f64).sqrt() as i64 + 3).max(3);
                'fill: for radius in 1..=ring_max {
                    for b in ctx.grid.blocks_within_ring(&center_block, radius) {
                        if got == *want {
                            break 'fill;
                        }
                        if exclude.contains(&b) || picked_set.contains(&b) {
                            continue;
                        }
                        let v = ctx.grid.block_center(&b) - ctx.position;
                        if self.partition.sector_of(&v) == Some(sector) {
                            picked_set.insert(b);
                            picked.push(b);
                            got += 1;
                        }
                    }
                }
            }
        }
        picked
    }

    fn name(&self) -> &'static str {
        "motion-aware"
    }
}

/// The naive baseline: all surrounding blocks are equally likely, so the
/// buffer is filled ring by ring around the current block.
#[derive(Debug, Clone, Default)]
pub struct NaivePrefetcher;

impl Prefetcher for NaivePrefetcher {
    fn plan(&mut self, ctx: &PrefetchContext<'_>) -> Vec<BlockId> {
        let exclude: BTreeSet<BlockId> = ctx.frame_blocks.iter().copied().collect();
        let center = ctx.grid.block_of(&ctx.position);
        let mut picked = Vec::with_capacity(ctx.budget);
        let ring_max = ((ctx.budget as f64).sqrt() as i64 + 3).max(3);
        for radius in 1..=ring_max {
            for b in ctx.grid.blocks_within_ring(&center, radius) {
                if picked.len() == ctx.budget {
                    return picked;
                }
                if b.ring_distance(&center) == radius
                    && !exclude.contains(&b)
                    && !picked.contains(&b)
                {
                    picked.push(b);
                }
            }
        }
        picked
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mar_geom::Rect2;

    fn grid() -> GridSpec {
        GridSpec::new(
            Rect2::new(Point2::new([0.0, 0.0]), Point2::new([100.0, 100.0])),
            10,
            10,
        )
    }

    fn probs_east(_grid: &GridSpec) -> BTreeMap<BlockId, f64> {
        // Mass concentrated east of the centre block (5,5).
        let mut m = BTreeMap::new();
        for d in 1..4i64 {
            m.insert(BlockId::new(5 + d, 5), 0.5 / d as f64);
            m.insert(BlockId::new(5 + d, 6), 0.1 / d as f64);
            m.insert(BlockId::new(5 + d, 4), 0.1 / d as f64);
        }
        m
    }

    #[test]
    fn motion_aware_prefers_predicted_blocks() {
        let g = grid();
        let probs = probs_east(&g);
        let frame = [BlockId::new(5, 5)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([55.0, 55.0]),
            frame_blocks: &frame,
            budget: 6,
            block_probs: &probs,
            direction_hint: None,
        };
        let mut p = MotionAwarePrefetcher::new(4);
        let picked = p.plan(&ctx);
        assert_eq!(picked.len(), 6);
        // Most of the picks must be east of the client.
        let east = picked.iter().filter(|b| b.ix > 5).count();
        assert!(east >= 4, "picked {picked:?}");
        // The single most likely block is always in the plan.
        assert!(picked.contains(&BlockId::new(6, 5)));
    }

    #[test]
    fn motion_aware_never_duplicates_or_includes_frame() {
        let g = grid();
        let probs = probs_east(&g);
        let frame = [BlockId::new(5, 5), BlockId::new(6, 5)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([55.0, 55.0]),
            frame_blocks: &frame,
            budget: 10,
            block_probs: &probs,
            direction_hint: None,
        };
        let mut p = MotionAwarePrefetcher::new(4);
        let picked = p.plan(&ctx);
        let set: BTreeSet<_> = picked.iter().collect();
        assert_eq!(set.len(), picked.len(), "duplicates in {picked:?}");
        for b in &frame {
            assert!(!picked.contains(b));
        }
    }

    #[test]
    fn cold_predictor_still_fills_budget() {
        let g = grid();
        let probs = BTreeMap::new();
        let frame = [BlockId::new(5, 5)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([55.0, 55.0]),
            frame_blocks: &frame,
            budget: 8,
            block_probs: &probs,
            direction_hint: None,
        };
        let mut p = MotionAwarePrefetcher::new(4);
        assert_eq!(p.plan(&ctx).len(), 8);
    }

    #[test]
    fn naive_fills_rings_symmetrically() {
        let g = grid();
        let probs = BTreeMap::new();
        let frame = [BlockId::new(5, 5)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([55.0, 55.0]),
            frame_blocks: &frame,
            budget: 8,
            block_probs: &probs,
            direction_hint: None,
        };
        let mut n = NaivePrefetcher;
        let picked = n.plan(&ctx);
        assert_eq!(picked.len(), 8);
        // All of ring 1 (8 blocks around the centre).
        for b in &picked {
            assert_eq!(b.ring_distance(&BlockId::new(5, 5)), 1);
        }
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let g = grid();
        let probs = probs_east(&g);
        let frame = [BlockId::new(5, 5)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([55.0, 55.0]),
            frame_blocks: &frame,
            budget: 0,
            block_probs: &probs,
            direction_hint: None,
        };
        assert!(MotionAwarePrefetcher::new(4).plan(&ctx).is_empty());
        assert!(NaivePrefetcher.plan(&ctx).is_empty());
    }

    #[test]
    fn edge_of_space_budget_truncates_gracefully() {
        let g = grid();
        let probs = BTreeMap::new();
        let frame = [BlockId::new(0, 0)];
        let ctx = PrefetchContext {
            grid: &g,
            position: Point2::new([5.0, 5.0]),
            frame_blocks: &frame,
            budget: 200, // bigger than the whole grid
            block_probs: &probs,
            direction_hint: None,
        };
        let picked = NaivePrefetcher.plan(&ctx);
        // Cannot exceed the number of existing non-frame blocks.
        assert!(picked.len() <= 99);
        let set: BTreeSet<_> = picked.iter().collect();
        assert_eq!(set.len(), picked.len());
    }
}
