//! A plain least-recently-used cache — the §VII-E naive system's caching
//! policy ("we also use a simple Least Recently Used (LRU) scheme").

use mar_store::RecencyIndex;
use std::borrow::Borrow;
use std::collections::BTreeMap;

/// A capacity-bounded LRU map.
///
/// Recency lives in the workspace-shared [`RecencyIndex`] (unique
/// monotone stamps over a `BTreeMap`), so eviction order is a pure
/// function of the call sequence and the victim pops off the index in
/// O(log n) instead of a full-map stamp scan.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: BTreeMap<K, (u64, V)>,
    recency: RecencyIndex<K>,
    hits: u64,
    lookups: u64,
}

impl<K: Ord + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        Self {
            capacity,
            map: BTreeMap::new(),
            recency: RecencyIndex::new(),
            hits: 0,
            lookups: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `k`, refreshing its recency on a hit.
    pub fn get<Q>(&mut self, k: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.lookups += 1;
        // The clock advances on misses too, matching the original
        // recency-counter behaviour stamp for stamp.
        let stamp = self.recency.tick();
        match self.map.remove_entry(k) {
            Some((key, (old, v))) => {
                self.recency.remove(old);
                self.recency.insert(stamp, key.clone());
                self.hits += 1;
                let slot = self.map.entry(key).or_insert((stamp, v));
                Some(&slot.1)
            }
            None => None,
        }
    }

    /// True when `k` is cached; does *not* refresh recency or count as a
    /// lookup.
    pub fn peek<Q>(&self, k: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(k)
    }

    /// Inserts `k → v`, evicting the least recently used entry if full.
    pub fn put(&mut self, k: K, v: V) {
        let stamp = self.recency.tick();
        match self.map.get(&k) {
            Some((old, _)) => {
                self.recency.remove(*old);
            }
            None => {
                if self.map.len() == self.capacity {
                    if let Some((_, victim)) = self.recency.pop_lru() {
                        self.map.remove(&victim);
                    }
                }
            }
        }
        self.recency.insert(stamp, k.clone());
        self.map.insert(k, (stamp, v));
    }

    /// Hit rate over all `get` calls so far (1.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_put_round_trip() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        assert_eq!(c.get("a"), Some(&1));
        assert_eq!(c.get("b"), None);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.get("a"); // refresh a; b is now LRU
        c.put("c", 3);
        assert!(c.peek("a"));
        assert!(!c.peek("b"));
        assert!(c.peek("c"));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(&10));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // "a" is now the most recent entry
        c.put("c", 3); // so "b" is the victim
        assert!(c.peek("a"));
        assert!(!c.peek("b"));
        assert!(c.peek("c"));
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = LruCache::new(4);
        c.put("x", 0);
        c.get("x");
        c.get("y");
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        c.put(1, "one");
        c.put(2, "two");
        assert!(!c.peek(&1));
        assert!(c.peek(&2));
    }
}
