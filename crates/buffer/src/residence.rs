//! The 1-D pre-fetching model (\[15\], §V-A) and Eq. 2.
//!
//! A client in a 1-D block row moves left with probability `p_l` and right
//! with `p_r`. With buffered blocks forming the interval `(0, a)` and the
//! client starting at position `n`, the time until it first steps outside
//! the buffered interval is the classic gambler's-ruin absorption time.
//! The buffer manager wants the start position (≡ the left/right split of
//! its blocks) that maximises that time; the paper's Eq. 2 gives it in
//! closed form:
//!
//! ```text
//! n_opt = log( ((p_l/p_r)^a − 1) / (a·log(p_l/p_r)) ) / log(p_l/p_r)
//! ```

/// Expected number of steps before a ±1 random walk starting at `n`
/// (with `0 < n < a`) is absorbed at `0` or `a`, stepping left with
/// probability `p_l` and right with `p_r` (normalised internally).
///
/// For the symmetric walk this is `n·(a−n)`; otherwise the standard
/// asymmetric absorption time.
pub fn expected_residence(a: u32, n: u32, p_l: f64, p_r: f64) -> f64 {
    assert!(a >= 2, "need an interval of at least two steps");
    assert!(n >= 1 && n < a, "start must be strictly inside (0, a)");
    assert!(p_l >= 0.0 && p_r >= 0.0 && p_l + p_r > 0.0);
    let p = p_r / (p_l + p_r); // probability of stepping right (+1)
    let q = 1.0 - p;
    let a_f = a as f64;
    let z = n as f64;
    if (p - q).abs() < 1e-12 {
        return z * (a_f - z);
    }
    if p <= 1e-15 {
        // Pure left drift: absorbed at 0 after exactly n steps.
        return z;
    }
    if q <= 1e-15 {
        return a_f - z;
    }
    let r: f64 = q / p; // = p_l / p_r
    (z - a_f * (1.0 - r.powf(z)) / (1.0 - r.powf(a_f))) / (q - p)
}

/// Eq. 2: the real-valued start position maximising
/// [`expected_residence`] over the interval `(0, a)`.
pub fn n_opt(a: u32, p_l: f64, p_r: f64) -> f64 {
    assert!(a >= 2);
    assert!(p_l >= 0.0 && p_r >= 0.0 && p_l + p_r > 0.0);
    let a_f = a as f64;
    if p_l <= 1e-15 {
        // Client always moves right: keep it as far left as possible.
        return 1.0;
    }
    if p_r <= 1e-15 {
        return a_f - 1.0;
    }
    let r = p_l / p_r;
    if (r - 1.0).abs() < 1e-9 {
        return a_f / 2.0;
    }
    let ln_r = r.ln();
    let z = ((r.powf(a_f) - 1.0) / (a_f * ln_r)).ln() / ln_r;
    z.clamp(1.0, a_f - 1.0)
}

/// Splits `total` buffer blocks between a left group (probability `p_l`)
/// and a right group (`p_r`), maximising residence time: returns
/// `(left, right)` with `left + right == total`.
///
/// Mapping to Eq. 2: the client occupies its own position and the
/// absorbing boundaries sit one step beyond the buffered blocks on each
/// side, so the interval length is `a = total + 2` and a start position
/// `n` leaves `n − 1` blocks on the left and `a − n − 1 = total − (n−1)`
/// on the right.
pub fn optimal_split(total: usize, p_l: f64, p_r: f64) -> (usize, usize) {
    if total == 0 {
        return (0, 0);
    }
    let a = (total + 2) as u32;
    let z = n_opt(a, p_l, p_r);
    let left = ((z.round() as i64) - 1).clamp(0, total as i64) as usize;
    (left, total - left)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_residence_is_parabola() {
        assert_eq!(expected_residence(10, 5, 0.5, 0.5), 25.0);
        assert_eq!(expected_residence(10, 1, 0.5, 0.5), 9.0);
        assert_eq!(expected_residence(10, 9, 0.5, 0.5), 9.0);
    }

    #[test]
    fn drifting_walk_exits_faster_from_the_wrong_side() {
        // Strong right drift: starting near the right edge exits quickly.
        let near_right = expected_residence(10, 9, 0.1, 0.9);
        let near_left = expected_residence(10, 1, 0.1, 0.9);
        assert!(near_left > near_right);
    }

    #[test]
    fn n_opt_symmetric_is_center() {
        assert_eq!(n_opt(10, 0.5, 0.5), 5.0);
        assert_eq!(n_opt(7, 0.3, 0.3), 3.5);
    }

    #[test]
    fn n_opt_shifts_away_from_drift_direction() {
        // Drift to the right ⇒ start left of centre to maximise residence.
        let z = n_opt(20, 0.2, 0.8);
        assert!(z < 10.0, "z = {z}");
        let z2 = n_opt(20, 0.8, 0.2);
        assert!(z2 > 10.0, "z2 = {z2}");
        // Mirror symmetry.
        assert!((z + z2 - 20.0).abs() < 1e-6);
    }

    #[test]
    fn n_opt_maximizes_expected_residence() {
        // Eq. 2 must agree with brute force over integer positions.
        for (pl, pr) in [
            (0.5, 0.5),
            (0.3, 0.7),
            (0.75, 0.25),
            (0.9, 0.1),
            (0.45, 0.55),
        ] {
            for a in [5u32, 10, 17, 40] {
                let z = n_opt(a, pl, pr);
                let best_int = (1..a)
                    .max_by(|&x, &y| {
                        expected_residence(a, x, pl, pr)
                            .total_cmp(&expected_residence(a, y, pl, pr))
                    })
                    .unwrap();
                assert!(
                    (z - best_int as f64).abs() <= 1.0,
                    "a={a} pl={pl} pr={pr}: analytic {z} vs brute {best_int}"
                );
                // And the rounded analytic optimum is within 1% of the best.
                let zr = (z.round() as u32).clamp(1, a - 1);
                let t_analytic = expected_residence(a, zr, pl, pr);
                let t_best = expected_residence(a, best_int, pl, pr);
                assert!(t_analytic >= 0.99 * t_best);
            }
        }
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(n_opt(10, 0.0, 1.0), 1.0);
        assert_eq!(n_opt(10, 1.0, 0.0), 9.0);
        assert!(expected_residence(10, 3, 0.0, 1.0).is_finite());
    }

    #[test]
    fn optimal_split_partitions_total() {
        for total in [0usize, 1, 5, 20, 63] {
            for (pl, pr) in [(0.5, 0.5), (0.9, 0.1), (0.2, 0.8)] {
                let (l, r) = optimal_split(total, pl, pr);
                assert_eq!(l + r, total);
            }
        }
    }

    #[test]
    fn optimal_split_favors_likelier_side() {
        let (l, r) = optimal_split(20, 0.8, 0.2);
        assert!(
            l > r,
            "left-heavy drift must buffer more on the left: {l} vs {r}"
        );
        let (l2, r2) = optimal_split(20, 0.1, 0.9);
        assert!(r2 > l2);
    }

    #[test]
    fn optimal_split_small_budget_follows_strong_drift() {
        // A 2-block budget with overwhelming eastward probability must put
        // both blocks east — the regression that motivated the a = total+2
        // mapping (a naive a = total+1 splits 1/1 here).
        let (l, r) = optimal_split(2, 0.95, 0.05);
        assert_eq!((l, r), (2, 0));
        let (l, r) = optimal_split(3, 0.02, 0.98);
        assert_eq!(l, 0);
        assert_eq!(r, 3);
    }
}
